"""The IPC-facing file-system server and its client library.

Matches the paper's microkernel FS architecture (§5.3): applications
talk to the **FS server**, which talks to the **block-device server**,
both across IPC.  One implementation runs on every kernel personality;
on an XPC transport the read path uses relay-window handover
(block-device DMA straight into the *client's* window, zero copies
end-to-end) and the write path absorbs data into the log once and
hands block images onward.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import repro.obs as obs
from repro.aio.pool import WorkerPool
from repro.ipc.transport import Payload, RelayPayload, Transport
from repro.runtime.supervisor import GrantOnRestart
from repro.services.fs.blockdev import (BlockClient, BlockDeviceError,
                                        BlockServer, RamDisk)
from repro.services.fs.cache import BufferCache
from repro.services.fs.log import LogFullError
from repro.services.fs.xv6fs import FSError, T_DIR, T_FILE, Xv6FS

#: Per-request and per-block server-side logic costs (path resolution,
#: inode locking, request validation).
FS_LOGIC_CYCLES = 180
FS_PER_BLOCK_CYCLES = 400

OP_CREATE = "create"
OP_MKDIR = "mkdir"
OP_READ = "read"
OP_WRITE = "write"
OP_UNLINK = "unlink"
OP_STAT = "stat"
OP_LIST = "list"
OP_TRUNC = "trunc"
OP_FSYNC = "fsync"
OP_RENAME = "rename"


class FSServer:
    """xv6fs behind an IPC boundary, over a block-device *client*."""

    def __init__(self, transport: Transport, disk_client: BlockClient,
                 server_process, server_thread, name: str = "fs",
                 format_disk: bool = True) -> None:
        self.transport = transport
        self.disk_client = disk_client
        cache = BufferCache(disk_client)
        if format_disk:
            self.fs = Xv6FS.mkfs(cache)
        else:
            self.fs = Xv6FS(cache)
        cache.no_cache_from = self.fs.sb.datastart
        self.cache = cache
        self.params = transport.kernel.params
        self.sid = transport.register(
            name, self._handle, server_process, server_thread)

    @property
    def core(self):
        """The core running FS logic right now: the transport's home
        core synchronously, the worker's core inside a ring drain."""
        return self.transport.current_core

    # -- async front-end -----------------------------------------------
    def serve_async(self, cores: Sequence, name: str = "fs-aio",
                    **pool_kwargs) -> WorkerPool:
        """Batched front-end: a ring-drain worker pool over the same
        handler (XPC transports only).  Every worker thread — including
        supervisor-restarted generations — is granted the onward
        xcall-cap for the block device, so the zero-copy nested read
        path keeps working from inside a drain."""
        pool_kwargs.setdefault("serve_context", self.transport.serving)
        pool = WorkerPool(self.transport.kernel, self._handle, cores,
                          name=name, **pool_kwargs)
        blk_sid = self.disk_client.sid
        for worker in pool.workers:
            self.transport.grant_to_thread(
                blk_sid, worker.supervisor.thread(worker.service_name))
            worker.supervisor.on_restart.append(
                GrantOnRestart(self.transport, blk_sid,
                               worker.supervisor))
        return pool

    # ------------------------------------------------------------------
    def _handle(self, meta: tuple, payload: Payload):
        op = meta[0]
        if obs.ACTIVE is None:
            return self._dispatch(op, meta, payload)
        span = obs.ACTIVE.spans.begin(self.core, f"fs:{op}",
                                      cat="service")
        start = self.core.cycles
        try:
            return self._dispatch(op, meta, payload)
        finally:
            obs.ACTIVE.registry.histogram(f"fs.op_cycles.{op}").observe(
                self.core.cycles - start, cycle=self.core.cycles)
            obs.ACTIVE.spans.end(self.core, span)

    def _dispatch(self, op, meta: tuple, payload: Payload):
        self.core.tick(FS_LOGIC_CYCLES)
        try:
            if op == OP_CREATE:
                return (0, self.fs.create(meta[1], T_FILE)), None
            if op == OP_MKDIR:
                return (0, self.fs.create(meta[1], T_DIR)), None
            if op == OP_READ:
                return self._read(meta[1], meta[2], meta[3], payload)
            if op == OP_WRITE:
                data = payload.read(meta[3])
                self.core.tick(
                    FS_PER_BLOCK_CYCLES
                    * (1 + len(data) // self.fs.bsize))
                n = self.fs.write(meta[1], data, meta[2])
                return (0, n), None
            if op == OP_UNLINK:
                self.fs.unlink(meta[1])
                return (0,), None
            if op == OP_STAT:
                return (0,) + self.fs.stat(meta[1]), None
            if op == OP_LIST:
                names = self.fs.listdir(meta[1])
                blob = "\x00".join(names).encode()
                return (0, len(blob)), blob
            if op == OP_TRUNC:
                self.fs.truncate(meta[1])
                return (0,), None
            if op == OP_FSYNC:
                self.cache.flush()
                return (0,), None
            if op == OP_RENAME:
                self.fs.rename(meta[1], meta[2])
                return (0,), None
            return (-1, f"unknown fs op {op!r}"), None
        except (FSError, BlockDeviceError, LogFullError) as exc:
            # Device failures (including injected ones) are contained
            # at the server boundary: the client gets an error reply and
            # the write-ahead log retries its commit on the next op.
            return (-1, str(exc)), None

    # -- the read fast path ---------------------------------------------------
    def _read(self, path: str, off: int, n: int, payload: Payload):
        fs = self.fs
        ino = fs._namei(path)
        if n < 0:
            n = max(ino.size - off, 0)
        n = min(n, max(ino.size - off, 0))
        if n == 0:
            return (0, 0), b""
        self.core.tick(FS_PER_BLOCK_CYCLES * (1 + n // fs.bsize))
        if not isinstance(payload, RelayPayload):
            # Baseline: assemble reply bytes; the transport copies them.
            fs.log.begin_op()
            try:
                return (0, n), fs._readi(ino, off, n)
            finally:
                fs.log.end_op()
        # XPC: place every aligned block straight into the client's
        # window via relay handover; copy only the ragged edges.
        fs.log.begin_op()
        try:
            pos = off
            remaining = n
            while remaining > 0:
                bn = pos // fs.bsize
                boff = pos % fs.bsize
                chunk = min(remaining, fs.bsize - boff)
                dst = pos - off
                addr = fs._bmap(ino, bn, alloc=False)
                pending = fs.log._pending.get(addr)
                if (boff == 0 and chunk == fs.bsize and addr != 0
                        and pending is None and dst % fs.bsize == 0):
                    # Device writes the block into the window (zero-copy).
                    # window_slice translates the payload-relative dst
                    # into active-window coordinates — identical on the
                    # sync path, offset by the arena slot when batched.
                    self.fs.dev.dev.bread_into(
                        addr, payload.window_slice(dst, fs.bsize))
                else:
                    data = (b"\x00" * chunk if addr == 0 else
                            (pending or fs.dev.bread(addr)
                             )[boff:boff + chunk])
                    payload.write(data, dst)
                    self.core.tick(self.params.copy_cycles(len(data)))
                pos += chunk
                remaining -= chunk
        finally:
            fs.log.end_op()
        return (0, n), n  # reply is already in place


class FSClient:
    """Application-side stub for the FS server."""

    def __init__(self, transport: Transport, sid: Optional[int] = None,
                 name: str = "fs") -> None:
        self.transport = transport
        self.sid = sid if sid is not None else transport.lookup(name)

    def _call(self, meta, payload: bytes = b"", reply_capacity: int = 0
              ) -> Tuple[tuple, bytes]:
        reply_meta, data = self.transport.call(
            self.sid, meta, payload, reply_capacity=reply_capacity)
        if reply_meta[0] != 0:
            raise FSError(reply_meta[1] if len(reply_meta) > 1
                          else "fs error")
        return reply_meta, data

    def create(self, path: str) -> int:
        return self._call((OP_CREATE, path))[0][1]

    def mkdir(self, path: str) -> int:
        return self._call((OP_MKDIR, path))[0][1]

    def read(self, path: str, off: int = 0, n: int = -1) -> bytes:
        if n < 0:
            n = self.stat(path)[2] - off
        meta, data = self._call((OP_READ, path, off, n),
                                reply_capacity=n)
        return data[:meta[1]] if data else b""

    def write(self, path: str, data: bytes, off: int = 0) -> int:
        return self._call((OP_WRITE, path, off, len(data)), data)[0][1]

    def unlink(self, path: str) -> None:
        self._call((OP_UNLINK, path))

    def stat(self, path: str) -> Tuple[int, int, int]:
        meta = self._call((OP_STAT, path))[0]
        return meta[1], meta[2], meta[3]

    def listdir(self, path: str = "/") -> list:
        meta, blob = self._call((OP_LIST, path), reply_capacity=8192)
        blob = blob[:meta[1]]
        return blob.decode().split("\x00") if blob else []

    def truncate(self, path: str) -> None:
        self._call((OP_TRUNC, path))

    def fsync(self) -> None:
        self._call((OP_FSYNC,))

    def rename(self, old: str, new: str) -> None:
        self._call((OP_RENAME, old, new))

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except FSError:
            return False


def build_fs_stack(transport: Transport, kernel, disk_blocks: int = 4096,
                   ) -> Tuple[FSServer, FSClient, RamDisk]:
    """Wire the full two-server FS stack on *transport*.

    Creates the block-device server process and the FS server process,
    registers both services, grants the FS server the right to call the
    block device (server→server chain), formats the disk, and returns
    ``(fs_server, fs_client, ramdisk)``.
    """
    blk_proc = kernel.create_process("blockdev")
    blk_thread = kernel.create_thread(blk_proc)
    fs_proc = kernel.create_process("fsserver")
    fs_thread = kernel.create_thread(fs_proc)
    disk = RamDisk(disk_blocks)
    blk_server = BlockServer(transport, disk, blk_proc, blk_thread)
    transport.grant_to_thread(blk_server.sid, fs_thread)
    disk_client = BlockClient(transport, blk_server.sid)
    fs_server = FSServer(transport, disk_client, fs_proc, fs_thread)
    return fs_server, FSClient(transport, fs_server.sid), disk
