"""The xv6fs write-ahead log (paper §5.3: "a log-based file system
named xv6fs from fscq").

Transactions follow the classic xv6 protocol:

1. ``begin_op`` / ``end_op`` bracket a system call; dirty blocks are
   absorbed in memory via ``log_write``;
2. commit copies every dirty block into the on-disk log area, then
   writes the log header (the commit point), then installs the blocks
   to their home locations, then clears the header.

A crash before the header write loses the transaction but never
corrupts the file system; a crash after it is repaired by
:meth:`Log.recover` on the next mount.  The property tests in
``tests/services/test_log_crash.py`` exercise exactly this invariant
with fault injection at every possible write.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.services.fs.blockdev import BlockClient

LOG_MAX_BLOCKS = 63  # log data blocks per transaction window


class LogFullError(Exception):
    """Transaction exceeded the log window."""


class Log:
    """The in-memory side of the on-disk log."""

    def __init__(self, dev: BlockClient, logstart: int,
                 nlog: int = LOG_MAX_BLOCKS + 1) -> None:
        self.dev = dev
        self.logstart = logstart          # header block
        self.capacity = nlog - 1          # data blocks after the header
        self._pending: Dict[int, bytes] = {}
        self._order: List[int] = []
        self.outstanding = 0
        self.committed_transactions = 0
        self.recover()

    # ------------------------------------------------------------------
    # Transaction bracketing
    # ------------------------------------------------------------------
    def begin_op(self) -> None:
        self.outstanding += 1

    def end_op(self) -> None:
        if self.outstanding <= 0:
            raise RuntimeError("end_op without begin_op")
        self.outstanding -= 1
        if self.outstanding == 0 and self._pending:
            self._commit()

    def log_write(self, blockno: int, data: bytes) -> None:
        """Absorb a dirty block into the current transaction."""
        if self.outstanding <= 0:
            raise RuntimeError("log_write outside a transaction")
        if len(data) != self.dev.block_size:
            raise ValueError("log_write needs a whole block")
        if blockno not in self._pending:
            if len(self._pending) >= self.capacity:
                raise LogFullError(
                    f"transaction exceeds {self.capacity} log blocks"
                )
            self._order.append(blockno)
        self._pending[blockno] = data

    # ------------------------------------------------------------------
    # Commit protocol
    # ------------------------------------------------------------------
    def _write_head(self, blocknos: List[int]) -> None:
        head = struct.pack("<I", len(blocknos))
        head += b"".join(struct.pack("<I", b) for b in blocknos)
        head += b"\x00" * (self.dev.block_size - len(head))
        self.dev.bwrite(self.logstart, head)

    def _read_head(self) -> List[int]:
        raw = self.dev.bread(self.logstart)
        (n,) = struct.unpack_from("<I", raw, 0)
        if n > self.capacity:
            return []  # corrupt/uninitialized header reads as empty
        return [struct.unpack_from("<I", raw, 4 + 4 * i)[0]
                for i in range(n)]

    def _commit(self) -> None:
        blocknos = list(self._order)
        # 1. copy dirty blocks into the log area
        for i, blockno in enumerate(blocknos):
            self.dev.bwrite(self.logstart + 1 + i, self._pending[blockno])
        # 2. commit point: the header names the blocks
        self._write_head(blocknos)
        # 3. install to home locations
        for blockno in blocknos:
            self.dev.bwrite(blockno, self._pending[blockno])
        # 4. clear the header
        self._write_head([])
        self._pending.clear()
        self._order.clear()
        self.committed_transactions += 1

    def recover(self) -> int:
        """Replay a committed-but-uninstalled transaction (mount time).

        Returns the number of blocks installed.
        """
        blocknos = self._read_head()
        for i, blockno in enumerate(blocknos):
            self.dev.bwrite(blockno, self.dev.bread(self.logstart + 1 + i))
        if blocknos:
            self._write_head([])
        self._pending.clear()
        self._order.clear()
        self.outstanding = 0
        return len(blocknos)

    def read_through(self, blockno: int) -> bytes:
        """Read seeing the current (uncommitted) transaction."""
        if blockno in self._pending:
            return self._pending[blockno]
        return self.dev.bread(blockno)
