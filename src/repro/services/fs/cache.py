"""A small write-through buffer cache in the FS server.

Sits between the log/file-system code and the block-device *client*, so
repeated metadata reads don't cross the IPC boundary; every write still
goes straight to the device (write-through), keeping the crash model
honest.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.services.fs.blockdev import BlockClient


class BufferCache:
    """LRU block cache with the BlockClient interface."""

    def __init__(self, dev: BlockClient, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.dev = dev
        self.capacity = capacity
        self.block_size = dev.block_size
        self.nblocks = dev.nblocks
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Blocks at or beyond this number are never cached (the FS
        #: server sets it to the data-area start so bulk file data
        #: streams through while metadata stays hot).
        self.no_cache_from: int = 1 << 62

    def bread(self, blockno: int) -> bytes:
        data = self._cache.get(blockno)
        if data is not None:
            self._cache.move_to_end(blockno)
            self.hits += 1
            return data
        self.misses += 1
        data = self.dev.bread(blockno)
        self._insert(blockno, data)
        return data

    def bwrite(self, blockno: int, data: bytes) -> None:
        self.dev.bwrite(blockno, data)   # write-through
        self._insert(blockno, data)

    def flush(self) -> None:
        self.dev.flush()

    def invalidate(self) -> None:
        """Drop everything (used after a simulated crash/reboot)."""
        self._cache.clear()

    def _insert(self, blockno: int, data: bytes) -> None:
        if blockno >= self.no_cache_from:
            self._cache.pop(blockno, None)
            return
        if blockno in self._cache:
            self._cache.move_to_end(blockno)
        elif len(self._cache) >= self.capacity:
            self._cache.popitem(last=False)
        self._cache[blockno] = data
