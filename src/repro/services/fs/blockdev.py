"""The block-device server: a ramdisk behind an IPC boundary.

In the paper's microkernel file-system evaluation "a ramdisk device is
used as the block device server" (§5.3): the file-system server talks
to it through IPC for every block read/write, which is exactly the
chatter XPC's relay-seg handover eliminates.

:class:`RamDisk` is the device itself; :class:`BlockServer` exposes it
over a :class:`~repro.ipc.transport.Transport`; :class:`BlockClient`
is what the FS server links against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import repro.faults as faults
from repro.ipc.transport import Payload, Transport

BSIZE = 4096  # file-system block size (FSCQ's xv6fs uses 4 KB blocks)

OP_READ = "bread"
OP_WRITE = "bwrite"
OP_SIZE = "bsize"
OP_FLUSH = "bflush"


class BlockDeviceError(Exception):
    """Out-of-range block, bad size, or injected device failure."""


class RamDisk:
    """A volatile block device with optional fault injection."""

    def __init__(self, nblocks: int, block_size: int = BSIZE) -> None:
        if nblocks <= 0 or block_size <= 0:
            raise ValueError("ramdisk needs positive geometry")
        self.nblocks = nblocks
        self.block_size = block_size
        self._data = bytearray(nblocks * block_size)
        self.reads = 0
        self.writes = 0
        #: Fault injection: device "crashes" after this many more writes
        #: (None = healthy).  Writes after the crash are silently lost,
        #: which is what the journal property tests need.
        self.crash_after_writes: Optional[int] = None
        self.crashed = False

    def read(self, blockno: int) -> bytes:
        self._check(blockno)
        if (faults.ACTIVE is not None
                and faults.fire("blockdev.io_error") is not None):
            raise BlockDeviceError(
                f"injected I/O error reading block {blockno}")
        self.reads += 1
        off = blockno * self.block_size
        return bytes(self._data[off:off + self.block_size])

    def write(self, blockno: int, data: bytes) -> None:
        self._check(blockno)
        if len(data) != self.block_size:
            raise BlockDeviceError(
                f"write of {len(data)} bytes to a {self.block_size}-byte "
                "block device"
            )
        if faults.ACTIVE is not None:
            if faults.fire("blockdev.io_error") is not None:
                raise BlockDeviceError(
                    f"injected I/O error writing block {blockno}")
            if faults.fire("blockdev.lost_write") is not None:
                return  # injected lost write (crash-model, §5.3)
        if self.crashed:
            return  # lost write
        if self.crash_after_writes is not None:
            if self.crash_after_writes <= 0:
                self.crashed = True
                return
            self.crash_after_writes -= 1
        self.writes += 1
        off = blockno * self.block_size
        self._data[off:off + self.block_size] = data

    def _check(self, blockno: int) -> None:
        if not 0 <= blockno < self.nblocks:
            raise BlockDeviceError(f"block {blockno} out of range")

    def revive(self) -> None:
        """Clear the crash state (simulates reboot: contents survive)."""
        self.crashed = False
        self.crash_after_writes = None


class BlockServer:
    """IPC-facing wrapper: registers the ramdisk on a transport."""

    def __init__(self, transport: Transport, disk: RamDisk,
                 server_process, server_thread,
                 name: str = "blockdev") -> None:
        self.transport = transport
        self.disk = disk
        self.params = transport.kernel.params
        self.sid = transport.register(
            name, self._handle, server_process, server_thread)

    def _handle(self, meta: tuple, payload: Payload):
        op, blockno = meta[0], meta[1] if len(meta) > 1 else 0
        core = self.transport.current_core
        try:
            if op == OP_READ:
                core.tick(self.params.ramdisk_per_block)
                return (0,), self.disk.read(blockno)
            if op == OP_WRITE:
                core.tick(self.params.ramdisk_per_block)
                self.disk.write(blockno,
                                payload.read(self.disk.block_size))
                return (0,), None
            if op == OP_SIZE:
                return (self.disk.nblocks, self.disk.block_size), None
            if op == OP_FLUSH:
                return (0,), None
            raise BlockDeviceError(f"unknown block op {op!r}")
        except BlockDeviceError as exc:
            # Device failures cross the IPC boundary as an error reply,
            # never as a raw exception through the migrated call.
            return (-1, str(exc)), None


class BlockClient:
    """What the FS server uses: block ops become transport calls."""

    def __init__(self, transport: Transport, sid: int) -> None:
        self.transport = transport
        self.sid = sid
        nblocks, block_size = self.transport.call(sid, (OP_SIZE,))[0]
        self.nblocks = nblocks
        self.block_size = block_size

    def bread(self, blockno: int) -> bytes:
        meta, data = self.transport.call(
            self.sid, (OP_READ, blockno), b"",
            reply_capacity=self.block_size)
        if meta[0] != 0:
            raise BlockDeviceError(f"bread({blockno}) failed: {meta}")
        return data

    def bread_into(self, blockno: int, window_slice) -> bytes:
        """Read a block straight into a relay-window slice (handover).

        On an XPC transport the device writes the block into the
        caller's current window at ``window_slice=(offset, length)`` —
        zero copies.  On a baseline transport this degenerates to a
        normal :meth:`bread` and the caller moves the bytes itself.
        """
        meta, data = self.transport.call(
            self.sid, (OP_READ, blockno), b"",
            reply_capacity=self.block_size, window_slice=window_slice)
        if meta[0] != 0:
            raise BlockDeviceError(f"bread({blockno}) failed: {meta}")
        return data

    def bwrite(self, blockno: int, data: bytes) -> None:
        meta, _ = self.transport.call(
            self.sid, (OP_WRITE, blockno), data)
        if meta[0] != 0:
            raise BlockDeviceError(f"bwrite({blockno}) failed: {meta}")

    def flush(self) -> None:
        self.transport.call(self.sid, (OP_FLUSH,))
