"""xv6fs: the log-based inode file system of the paper's FS evaluation.

A faithful port of the xv6/FSCQ on-disk layout to this simulator:

    [ boot | superblock | log header + log | inodes | bitmap | data ]

with 4 KB blocks, 64-byte inodes (12 direct + 1 indirect pointer), and
flat struct-packed directories.  Every metadata mutation runs inside a
write-ahead-log transaction (:mod:`repro.services.fs.log`), so a crash
at any point is repaired by log recovery.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.services.fs.log import Log, LOG_MAX_BLOCKS

FS_MAGIC = 0x10203040
NDIRECT = 12
T_FREE, T_DIR, T_FILE = 0, 1, 2

_INODE_FMT = "<HHI" + "I" * (NDIRECT + 1)   # type, nlink, size, addrs
INODE_SIZE = struct.calcsize(_INODE_FMT)     # 60 bytes
DIRENT_FMT = "<I28s"
DIRENT_SIZE = struct.calcsize(DIRENT_FMT)    # 32 bytes
MAX_NAME = 27
ROOT_INUM = 1


class FSError(Exception):
    """File-system level error (ENOENT, EEXIST, ENOSPC...)."""


@dataclass
class SuperBlock:
    size: int          # total blocks
    nlog: int
    ninodes: int
    logstart: int
    inodestart: int
    bmapstart: int
    datastart: int

    _FMT = "<IIIIIIII"

    def pack(self, block_size: int) -> bytes:
        raw = struct.pack(self._FMT, FS_MAGIC, self.size, self.nlog,
                          self.ninodes, self.logstart, self.inodestart,
                          self.bmapstart, self.datastart)
        return raw + b"\x00" * (block_size - len(raw))

    @classmethod
    def unpack(cls, raw: bytes) -> "SuperBlock":
        magic, size, nlog, ninodes, logstart, inodestart, bmapstart, \
            datastart = struct.unpack_from(cls._FMT, raw, 0)
        if magic != FS_MAGIC:
            raise FSError("bad superblock magic (unformatted disk?)")
        return cls(size, nlog, ninodes, logstart, inodestart, bmapstart,
                   datastart)


@dataclass
class Inode:
    inum: int
    itype: int
    nlink: int
    size: int
    addrs: List[int]

    def pack(self) -> bytes:
        return struct.pack(_INODE_FMT, self.itype, self.nlink,
                           self.size, *self.addrs)

    @classmethod
    def unpack(cls, inum: int, raw: bytes) -> "Inode":
        fields = struct.unpack_from(_INODE_FMT, raw, 0)
        return cls(inum, fields[0], fields[1], fields[2],
                   list(fields[3:]))


class Xv6FS:
    """The file system proper, layered on a log over a block device."""

    def __init__(self, dev) -> None:
        self.dev = dev
        self.bsize = dev.block_size
        self.sb = SuperBlock.unpack(dev.bread(1))
        self.log = Log(dev, self.sb.logstart, self.sb.nlog)
        self._ipb = self.bsize // INODE_SIZE
        self._nindirect = self.bsize // 4

    # ------------------------------------------------------------------
    # mkfs
    # ------------------------------------------------------------------
    @classmethod
    def mkfs(cls, dev, ninodes: int = 256) -> "Xv6FS":
        """Format *dev* and return a mounted file system."""
        bsize = dev.block_size
        nlog = LOG_MAX_BLOCKS + 1
        ipb = bsize // INODE_SIZE
        ninodeblocks = (ninodes + ipb - 1) // ipb
        nbitmap = (dev.nblocks + bsize * 8 - 1) // (bsize * 8)
        logstart = 2
        inodestart = logstart + nlog
        bmapstart = inodestart + ninodeblocks
        datastart = bmapstart + nbitmap
        if datastart >= dev.nblocks:
            raise FSError("disk too small for this geometry")
        sb = SuperBlock(dev.nblocks, nlog, ninodes, logstart,
                        inodestart, bmapstart, datastart)
        zero = b"\x00" * bsize
        dev.bwrite(1, sb.pack(bsize))
        for b in range(logstart, datastart):
            dev.bwrite(b, zero)
        fs = cls(dev)
        # Root directory.
        fs.log.begin_op()
        root = fs._ialloc(T_DIR)
        assert root.inum == ROOT_INUM
        fs._dirlink(root, ".", root.inum)
        fs._dirlink(root, "..", root.inum)
        root.nlink = 2
        fs._iupdate(root)
        fs.log.end_op()
        return fs

    # ------------------------------------------------------------------
    # Low-level block / inode helpers (inside a transaction)
    # ------------------------------------------------------------------
    def _bread(self, blockno: int) -> bytes:
        return self.log.read_through(blockno)

    def _bwrite(self, blockno: int, data: bytes) -> None:
        self.log.log_write(blockno, data)

    def _balloc(self) -> int:
        """Allocate a zeroed data block."""
        for bmap_block in range(self.sb.bmapstart, self.sb.datastart):
            raw = bytearray(self._bread(bmap_block))
            base = (bmap_block - self.sb.bmapstart) * self.bsize * 8
            for i in range(self.bsize * 8):
                blockno = base + i
                if blockno < self.sb.datastart:
                    continue
                if blockno >= self.sb.size:
                    break
                if not raw[i >> 3] & (1 << (i & 7)):
                    raw[i >> 3] |= 1 << (i & 7)
                    self._bwrite(bmap_block, bytes(raw))
                    self._bwrite(blockno, b"\x00" * self.bsize)
                    return blockno
        raise FSError("out of data blocks")

    def _bfree(self, blockno: int) -> None:
        i = blockno
        bmap_block = self.sb.bmapstart + i // (self.bsize * 8)
        raw = bytearray(self._bread(bmap_block))
        bit = i % (self.bsize * 8)
        if not raw[bit >> 3] & (1 << (bit & 7)):
            raise FSError(f"freeing free block {blockno}")
        raw[bit >> 3] &= ~(1 << (bit & 7))
        self._bwrite(bmap_block, bytes(raw))

    def _inode_block(self, inum: int) -> Tuple[int, int]:
        return (self.sb.inodestart + inum // self._ipb,
                (inum % self._ipb) * INODE_SIZE)

    def _iget(self, inum: int) -> Inode:
        if not 0 <= inum < self.sb.ninodes:
            raise FSError(f"inum {inum} out of range")
        block, off = self._inode_block(inum)
        raw = self._bread(block)
        return Inode.unpack(inum, raw[off:off + INODE_SIZE])

    def _iupdate(self, ino: Inode) -> None:
        block, off = self._inode_block(ino.inum)
        raw = bytearray(self._bread(block))
        raw[off:off + INODE_SIZE] = ino.pack()
        self._bwrite(block, bytes(raw))

    def _ialloc(self, itype: int) -> Inode:
        for inum in range(1, self.sb.ninodes):
            ino = self._iget(inum)
            if ino.itype == T_FREE:
                ino.itype = itype
                ino.nlink = 1
                ino.size = 0
                ino.addrs = [0] * (NDIRECT + 1)
                self._iupdate(ino)
                return ino
        raise FSError("out of inodes")

    def _itrunc(self, ino: Inode) -> None:
        for i in range(NDIRECT):
            if ino.addrs[i]:
                self._bfree(ino.addrs[i])
                ino.addrs[i] = 0
        if ino.addrs[NDIRECT]:
            raw = self._bread(ino.addrs[NDIRECT])
            for i in range(self._nindirect):
                (addr,) = struct.unpack_from("<I", raw, i * 4)
                if addr:
                    self._bfree(addr)
            self._bfree(ino.addrs[NDIRECT])
            ino.addrs[NDIRECT] = 0
        ino.size = 0
        self._iupdate(ino)

    def _bmap(self, ino: Inode, bn: int, alloc: bool = True) -> int:
        """Block number of file block *bn*, allocating if needed."""
        if bn < NDIRECT:
            if ino.addrs[bn] == 0:
                if not alloc:
                    return 0
                ino.addrs[bn] = self._balloc()
                self._iupdate(ino)
            return ino.addrs[bn]
        bn -= NDIRECT
        if bn >= self._nindirect:
            raise FSError("file too large")
        if ino.addrs[NDIRECT] == 0:
            if not alloc:
                return 0
            ino.addrs[NDIRECT] = self._balloc()
            self._iupdate(ino)
        raw = bytearray(self._bread(ino.addrs[NDIRECT]))
        (addr,) = struct.unpack_from("<I", raw, bn * 4)
        if addr == 0:
            if not alloc:
                return 0
            addr = self._balloc()
            struct.pack_into("<I", raw, bn * 4, addr)
            self._bwrite(ino.addrs[NDIRECT], bytes(raw))
        return addr

    # ------------------------------------------------------------------
    # File contents
    # ------------------------------------------------------------------
    def _readi(self, ino: Inode, off: int, n: int) -> bytes:
        if off >= ino.size or n <= 0:
            return b""
        n = min(n, ino.size - off)
        out = bytearray()
        while n > 0:
            bn = off // self.bsize
            boff = off % self.bsize
            chunk = min(n, self.bsize - boff)
            addr = self._bmap(ino, bn, alloc=False)
            block = (b"\x00" * self.bsize if addr == 0
                     else self._bread(addr))
            out += block[boff:boff + chunk]
            off += chunk
            n -= chunk
        return bytes(out)

    def _writei(self, ino: Inode, off: int, data: bytes) -> int:
        if off > ino.size:
            raise FSError("write past EOF creates no holes here")
        pos = off
        view = memoryview(data)
        while view:
            bn = pos // self.bsize
            boff = pos % self.bsize
            chunk = min(len(view), self.bsize - boff)
            addr = self._bmap(ino, bn, alloc=True)
            if chunk == self.bsize:
                self._bwrite(addr, bytes(view[:chunk]))
            else:
                block = bytearray(self._bread(addr))
                block[boff:boff + chunk] = view[:chunk]
                self._bwrite(addr, bytes(block))
            pos += chunk
            view = view[chunk:]
        if pos > ino.size:
            ino.size = pos
            self._iupdate(ino)
        else:
            self._iupdate(ino)
        return len(data)

    # ------------------------------------------------------------------
    # Directories & paths
    # ------------------------------------------------------------------
    def _dirlookup(self, dino: Inode, name: str) -> Optional[int]:
        raw = self._readi(dino, 0, dino.size)
        for off in range(0, len(raw), DIRENT_SIZE):
            inum, packed = struct.unpack_from(DIRENT_FMT, raw, off)
            if inum and packed.rstrip(b"\x00").decode() == name:
                return inum
        return None

    def _dirlink(self, dino: Inode, name: str, inum: int) -> None:
        if len(name) > MAX_NAME:
            raise FSError(f"name too long: {name!r}")
        if self._dirlookup(dino, name) is not None:
            raise FSError(f"{name!r} exists")
        entry = struct.pack(DIRENT_FMT, inum, name.encode())
        raw = self._readi(dino, 0, dino.size)
        for off in range(0, len(raw), DIRENT_SIZE):
            (existing,) = struct.unpack_from("<I", raw, off)
            if existing == 0:
                self._writei(dino, off, entry)
                return
        self._writei(dino, dino.size, entry)

    def _namei(self, path: str) -> Inode:
        ino = self._iget(ROOT_INUM)
        for part in _parts(path):
            if ino.itype != T_DIR:
                raise FSError(f"not a directory on the way to {path!r}")
            inum = self._dirlookup(ino, part)
            if inum is None:
                raise FSError(f"no such file: {path!r}")
            ino = self._iget(inum)
        return ino

    def _namei_parent(self, path: str) -> Tuple[Inode, str]:
        parts = _parts(path)
        if not parts:
            raise FSError("cannot operate on the root this way")
        dino = self._iget(ROOT_INUM)
        for part in parts[:-1]:
            inum = self._dirlookup(dino, part)
            if inum is None:
                raise FSError(f"no such directory on the way to {path!r}")
            dino = self._iget(inum)
        if dino.itype != T_DIR:
            raise FSError(f"not a directory on the way to {path!r}")
        return dino, parts[-1]

    # ------------------------------------------------------------------
    # Public system-call-level API (each call is one log transaction)
    # ------------------------------------------------------------------
    def create(self, path: str, itype: int = T_FILE) -> int:
        self.log.begin_op()
        try:
            dino, name = self._namei_parent(path)
            if self._dirlookup(dino, name) is not None:
                raise FSError(f"{path!r} exists")
            ino = self._ialloc(itype)
            self._dirlink(dino, name, ino.inum)
            if itype == T_DIR:
                self._dirlink(ino, ".", ino.inum)
                self._dirlink(ino, "..", dino.inum)
            return ino.inum
        finally:
            self.log.end_op()

    def lookup(self, path: str) -> int:
        return self._namei(path).inum

    def read(self, path: str, off: int = 0, n: int = -1) -> bytes:
        self.log.begin_op()
        try:
            ino = self._namei(path)
            if n < 0:
                n = ino.size - off
            return self._readi(ino, off, n)
        finally:
            self.log.end_op()

    def write(self, path: str, data: bytes, off: int = 0) -> int:
        # Large writes are split so no transaction overflows the log.
        max_bytes = (LOG_MAX_BLOCKS // 2) * self.bsize
        written = 0
        while written < len(data) or not data:
            chunk = data[written:written + max_bytes]
            self.log.begin_op()
            try:
                ino = self._namei(path)
                self._writei(ino, off + written, chunk)
            finally:
                self.log.end_op()
            written += len(chunk)
            if not data:
                break
        return written

    def truncate(self, path: str) -> None:
        self.log.begin_op()
        try:
            self._itrunc(self._namei(path))
        finally:
            self.log.end_op()

    def unlink(self, path: str) -> None:
        self.log.begin_op()
        try:
            dino, name = self._namei_parent(path)
            inum = self._dirlookup(dino, name)
            if inum is None:
                raise FSError(f"no such file: {path!r}")
            ino = self._iget(inum)
            if ino.itype == T_DIR and self._dir_nonempty(ino):
                raise FSError(f"directory not empty: {path!r}")
            # Clear the directory entry.
            raw = self._readi(dino, 0, dino.size)
            for off in range(0, len(raw), DIRENT_SIZE):
                entry_inum, packed = struct.unpack_from(DIRENT_FMT, raw,
                                                        off)
                if entry_inum == inum and \
                        packed.rstrip(b"\x00").decode() == name:
                    self._writei(dino, off,
                                 b"\x00" * DIRENT_SIZE)
                    break
            ino.nlink -= 1
            if ino.nlink <= 0 or (ino.itype == T_DIR
                                  and ino.nlink <= 1):
                self._itrunc(ino)
                ino.itype = T_FREE
            self._iupdate(ino)
        finally:
            self.log.end_op()

    def rename(self, old: str, new: str) -> None:
        """Move a file or directory (one atomic transaction)."""
        self.log.begin_op()
        try:
            old_dir, old_name = self._namei_parent(old)
            inum = self._dirlookup(old_dir, old_name)
            if inum is None:
                raise FSError(f"no such file: {old!r}")
            new_dir, new_name = self._namei_parent(new)
            if self._dirlookup(new_dir, new_name) is not None:
                raise FSError(f"{new!r} exists")
            moved = self._iget(inum)
            if moved.itype == T_DIR and _is_prefix(old, new):
                raise FSError("cannot move a directory into itself")
            self._dirlink(new_dir, new_name, inum)
            if old_dir.inum == new_dir.inum:
                # Same parent: re-read it, or the unlink below would
                # write back a stale (pre-dirlink) inode image.
                old_dir = self._iget(old_dir.inum)
            self._dir_unlink_entry(old_dir, old_name, inum)
            if moved.itype == T_DIR and old_dir.inum != new_dir.inum:
                # Re-point "..".
                self._dir_unlink_entry(moved, "..",
                                       self._dirlookup(moved, ".."))
                self._dirlink(moved, "..", new_dir.inum)
        finally:
            self.log.end_op()

    def _dir_unlink_entry(self, dino: Inode, name: str,
                          inum: int) -> None:
        raw = self._readi(dino, 0, dino.size)
        for off in range(0, len(raw), DIRENT_SIZE):
            entry_inum, packed = struct.unpack_from(DIRENT_FMT, raw, off)
            if entry_inum == inum and \
                    packed.rstrip(b"\x00").decode() == name:
                self._writei(dino, off, b"\x00" * DIRENT_SIZE)
                return
        raise FSError(f"directory entry {name!r} vanished")

    def stat(self, path: str) -> Tuple[int, int, int]:
        """Return (inum, type, size)."""
        ino = self._namei(path)
        return ino.inum, ino.itype, ino.size

    def listdir(self, path: str = "/") -> List[str]:
        ino = self._namei(path)
        if ino.itype != T_DIR:
            raise FSError(f"{path!r} is not a directory")
        raw = self._readi(ino, 0, ino.size)
        names = []
        for off in range(0, len(raw), DIRENT_SIZE):
            inum, packed = struct.unpack_from(DIRENT_FMT, raw, off)
            if inum:
                name = packed.rstrip(b"\x00").decode()
                if name not in (".", ".."):
                    names.append(name)
        return names

    # ------------------------------------------------------------------
    # Consistency checking
    # ------------------------------------------------------------------
    def fsck(self) -> List[str]:
        """Check on-disk consistency; returns a list of problems.

        Verifies (like a miniature e2fsck):

        * every block reachable from an inode is marked allocated and
          is referenced exactly once,
        * every allocated data block is reachable,
        * directory entries point at live inodes,
        * no file's size exceeds its mapped blocks.

        The crash-recovery property tests run this after every
        simulated crash + log recovery: the log must always leave a
        state where this returns ``[]``.
        """
        problems: List[str] = []
        seen_blocks: Dict[int, int] = {}
        live_inodes: set = set()

        def note_block(addr: int, owner: str) -> None:
            if addr == 0:
                return
            if not self.sb.datastart <= addr < self.sb.size:
                problems.append(f"{owner}: block {addr} out of range")
                return
            if addr in seen_blocks:
                problems.append(
                    f"{owner}: block {addr} multiply referenced")
            seen_blocks[addr] = seen_blocks.get(addr, 0) + 1
            if not self._block_marked(addr):
                problems.append(
                    f"{owner}: block {addr} in use but free in bitmap")

        # Walk every live inode.
        for inum in range(1, self.sb.ninodes):
            ino = self._iget(inum)
            if ino.itype == T_FREE:
                continue
            live_inodes.add(inum)
            owner = f"inode {inum}"
            for i in range(NDIRECT):
                note_block(ino.addrs[i], owner)
            if ino.addrs[NDIRECT]:
                note_block(ino.addrs[NDIRECT], owner + " (indirect)")
                raw = self._bread(ino.addrs[NDIRECT])
                for i in range(self._nindirect):
                    (addr,) = struct.unpack_from("<I", raw, i * 4)
                    note_block(addr, owner)
            if ino.size > (NDIRECT + self._nindirect) * self.bsize:
                problems.append(f"{owner}: absurd size {ino.size}")

        # Every allocated data block must have been seen.
        for addr in range(self.sb.datastart, self.sb.size):
            if self._block_marked(addr) and addr not in seen_blocks:
                problems.append(f"block {addr} allocated but orphaned")

        # Directory entries must point at live inodes.
        for inum in sorted(live_inodes):
            ino = self._iget(inum)
            if ino.itype != T_DIR:
                continue
            raw = self._readi(ino, 0, ino.size)
            for off in range(0, len(raw), DIRENT_SIZE):
                entry_inum, packed = struct.unpack_from(
                    DIRENT_FMT, raw, off)
                if entry_inum == 0:
                    continue
                name = packed.rstrip(b"\x00").decode(errors="replace")
                if entry_inum not in live_inodes:
                    problems.append(
                        f"dirent {name!r} in inode {inum} points at "
                        f"dead inode {entry_inum}")
        return problems

    def _block_marked(self, addr: int) -> bool:
        bmap_block = self.sb.bmapstart + addr // (self.bsize * 8)
        raw = self._bread(bmap_block)
        bit = addr % (self.bsize * 8)
        return bool(raw[bit >> 3] & (1 << (bit & 7)))

    def _dir_nonempty(self, ino: Inode) -> bool:
        raw = self._readi(ino, 0, ino.size)
        for off in range(0, len(raw), DIRENT_SIZE):
            inum, packed = struct.unpack_from(DIRENT_FMT, raw, off)
            if inum and packed.rstrip(b"\x00").decode() not in (".", ".."):
                return True
        return False


def _parts(path: str) -> List[str]:
    return [p for p in path.split("/") if p]


def _is_prefix(old: str, new: str) -> bool:
    """True if *new* lies inside the subtree rooted at *old*."""
    old_parts = _parts(old)
    new_parts = _parts(new)
    return new_parts[:len(old_parts)] == old_parts
