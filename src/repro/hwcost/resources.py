"""FPGA resource-cost estimator for the XPC engine (paper Table 6).

The paper synthesizes the XPC-extended Freedom U500 with Vivado and
reports the deltas: +1.99 % LUTs, +3.31 % FFs, +1 DSP48, and no BRAM.
We rebuild that estimate structurally: every architectural element the
engine adds (Table 2's seven registers, the xcall/xret/swapseg control
logic, the relay-seg comparators in the TLB path) is expressed as
flip-flop and LUT counts using standard Xilinx 7-series costing rules,
then compared against the stock Freedom U500 utilisation the paper
lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Stock siFive Freedom U500 utilisation on the VC707 (paper Table 6).
FREEDOM_BASELINE = {
    "LUT": 44643,
    "LUTRAM": 3370,
    "SRL": 636,
    "FF": 30379,
    "RAMB36": 3,
    "RAMB18": 48,
    "DSP48 Blocks": 15,
}


@dataclass
class Component:
    """One structural piece of the engine with its resource cost."""

    name: str
    luts: int = 0
    ffs: int = 0
    dsps: int = 0
    note: str = ""


def _register(name: str, bits: int, note: str = "") -> Component:
    """A CSR: one FF per bit, plus read/write decode mux LUTs.

    7-series costing: a 64-bit CSR needs roughly bits/2 LUTs of
    write-enable + read-mux fabric in a CSR file.
    """
    return Component(name, luts=bits // 2, ffs=bits, note=note)


def _comparator(name: str, bits: int, note: str = "") -> Component:
    """An n-bit equality/range comparator: ~n/6 LUTs (LUT6 carry)."""
    return Component(name, luts=max(bits // 6, 1) + 2, note=note)


def _adder(name: str, bits: int, note: str = "") -> Component:
    return Component(name, luts=bits // 2, note=note)


def xpc_engine_components() -> List[Component]:
    """The engine netlist at the granularity Table 2 describes."""
    parts: List[Component] = [
        # --- the seven new CSRs (Table 2, widths in register bits) ----
        _register("x-entry-table-reg", 64, "table base VA"),
        _register("x-entry-table-size", 64, "table size"),
        _register("xcall-cap-reg", 64, "cap bitmap VA"),
        _register("link-reg", 64, "link stack VA"),
        _register("relay-seg", 192, "VA base, PA base, len+perm"),
        _register("seg-mask", 128, "offset + length"),
        _register("seg-listp", 64, "seg list base VA"),
        # --- CSR-file decode overhead for 7 more addresses -------------
        Component("csr-decode", luts=64, ffs=17,
                  note="address decode + privilege checks"),
        # --- xcall/xret control ----------------------------------------
        Component("xcall-fsm", luts=160, ffs=84,
                  note="cap check, entry fetch, 4-step microcode"),
        Component("xret-fsm", luts=110, ffs=58,
                  note="linkage pop + validity + seg compare"),
        Component("swapseg-fsm", luts=28, ffs=22,
                  note="seg-list index + atomic exchange"),
        Component("linkage-buffer", luts=38, ffs=103,
                  note="non-blocking linkage record store buffer"),
        _comparator("cap-bit-select", 64, "bitmap bit test mux"),
        _comparator("entry-valid", 8, "x-entry valid/bounds"),
        # --- relay-seg address path (TLB extension) ---------------------
        _comparator("seg-range-lo", 64, "VA >= VA_BASE"),
        _comparator("seg-range-hi", 64, "VA < VA_BASE+LEN"),
        _adder("seg-translate", 64, "PA_BASE + (VA - VA_BASE)"),
        _comparator("seg-mask-check", 64, "mask within window"),
        Component("seg-priority-mux", luts=55, ffs=12,
                  note="seg-reg result overrides the TLB"),
        # --- exception generation ---------------------------------------
        Component("exceptions", luts=30, ffs=10,
                  note="5 new exception causes"),
        # --- pipeline registers between engine stages --------------------
        Component("pipeline-regs", luts=0, ffs=60,
                  note="engine stage boundaries"),
        # The engine's offset arithmetic maps to one DSP48 slice
        # (Vivado infers it for the 64-bit translate add).
        Component("dsp-translate", dsps=1,
                  note="Vivado maps the translate adder to a DSP48"),
    ]
    return parts


@dataclass
class CostReport:
    """Table 6 reproduction: baseline vs XPC-extended utilisation."""

    baseline: Dict[str, int]
    added: Dict[str, int]

    def total(self, resource: str) -> int:
        return self.baseline[resource] + self.added.get(resource, 0)

    def overhead(self, resource: str) -> float:
        base = self.baseline[resource]
        if base == 0:
            return 0.0
        return 100.0 * self.added.get(resource, 0) / base

    def rows(self) -> List[Tuple[str, int, int, str]]:
        out = []
        for resource, base in self.baseline.items():
            total = self.total(resource)
            out.append((resource, base, total,
                        f"{self.overhead(resource):.2f}%"))
        return out


def estimate() -> CostReport:
    """Sum the engine netlist and produce the Table 6 comparison."""
    parts = xpc_engine_components()
    added = {
        "LUT": sum(p.luts for p in parts),
        "LUTRAM": 0,
        "SRL": 0,
        "FF": sum(p.ffs for p in parts),
        "RAMB36": 0,   # x-entry table and stacks live in DRAM, not BRAM
        "RAMB18": 0,
        "DSP48 Blocks": sum(p.dsps for p in parts),
    }
    return CostReport(dict(FREEDOM_BASELINE), added)
