"""FPGA resource-cost model (paper §5.7, Table 6)."""

from repro.hwcost.resources import (
    FREEDOM_BASELINE, Component, CostReport, estimate,
    xpc_engine_components,
)

__all__ = [
    "FREEDOM_BASELINE", "Component", "CostReport", "estimate",
    "xpc_engine_components",
]
