"""repro — a reproduction of *XPC: Architectural Support for Secure and
Efficient Cross Process Call* (Du et al., ISCA 2019).

The package provides:

* :mod:`repro.hw` — a functional + cycle-accounting machine model
  (cores, page tables, TLB, caches, physical memory);
* :mod:`repro.xpc` — the XPC engine: x-entries, xcall-cap, link stack,
  relay segments, and the ``xcall``/``xret``/``swapseg`` instructions;
* :mod:`repro.kernel` — the common OS control plane;
* :mod:`repro.sel4`, :mod:`repro.zircon`, :mod:`repro.binder` — three
  kernel personalities, each with and without XPC;
* :mod:`repro.services`, :mod:`repro.apps` — user-level servers (file
  system, network, crypto, cache) and applications (SQLite-like DB,
  YCSB, HTTP server) used by the paper's evaluation;
* :mod:`repro.gem5`, :mod:`repro.hwcost`, :mod:`repro.compare` — the
  generality, hardware-cost, and related-work models;
* :mod:`repro.proptest` — property-based differential fuzzing of every
  IPC mechanism against a shared oracle (imported on demand: it sits
  on top of everything above).

Quickstart::

    from repro import Machine, BaseKernel, XPCService, xpc_call

    machine = Machine(cores=1)
    kernel = BaseKernel(machine)
    core = machine.core0
    server = kernel.create_process("server")
    client = kernel.create_process("client")
    sthread = kernel.create_thread(server)
    cthread = kernel.create_thread(client)
    kernel.run_thread(core, sthread)
    svc = XPCService(kernel, core, sthread,
                     lambda call: sum(call.args))
    kernel.grant_xcall_cap(core, server, cthread, svc.entry_id)
    kernel.run_thread(core, cthread)
    assert xpc_call(core, svc.entry_id, 2, 3) == 5
"""

from repro.params import CycleParams, DEFAULT_PARAMS
from repro.hw import Machine, Core, PhysicalMemory, AddressSpace, PagePerm
from repro.kernel import BaseKernel, Process, Thread
from repro.xpc import (
    XPCEngine, XPCConfig, XPCError, RelaySegment, SegMask, SegReg,
)
from repro.runtime import XPCService, XPCCallContext, xpc_call, RelayBuffer
from repro.aio import (
    AdmissionController, Batcher, WorkerPool, XPCFuture, XPCRing,
    XPCRingFullError,
)

__version__ = "1.0.0"

__all__ = [
    "CycleParams", "DEFAULT_PARAMS",
    "Machine", "Core", "PhysicalMemory", "AddressSpace", "PagePerm",
    "BaseKernel", "Process", "Thread",
    "XPCEngine", "XPCConfig", "XPCError", "RelaySegment", "SegMask",
    "SegReg",
    "XPCService", "XPCCallContext", "xpc_call", "RelayBuffer",
    "AdmissionController", "Batcher", "WorkerPool", "XPCFuture",
    "XPCRing", "XPCRingFullError",
    "__version__",
]
