"""Parcels: Android's IPC marshaling containers.

A Parcel serializes typed values into a flat byte buffer.  The format is
a simple self-describing TLV stream (type tag + payload), enough to
carry everything the Binder scenarios need: integers, strings, byte
blobs, and file descriptors (for ashmem passing).
"""

from __future__ import annotations

import struct
from typing import List, Union

_TAG_I32 = 1
_TAG_I64 = 2
_TAG_STR = 3
_TAG_BLOB = 4
_TAG_FD = 5


class ParcelError(Exception):
    """Malformed parcel data or read-past-end."""


class Parcel:
    """A write-then-read marshaling buffer (like android.os.Parcel)."""

    def __init__(self, data: bytes = b"") -> None:
        self._buf = bytearray(data)
        self._read_pos = 0

    # -- writers -----------------------------------------------------------
    def write_i32(self, value: int) -> None:
        self._buf += struct.pack("<Bi", _TAG_I32, value)

    def write_i64(self, value: int) -> None:
        self._buf += struct.pack("<Bq", _TAG_I64, value)

    def write_string(self, value: str) -> None:
        raw = value.encode("utf-8")
        self._buf += struct.pack("<BI", _TAG_STR, len(raw)) + raw

    def write_blob(self, value: bytes) -> None:
        self._buf += struct.pack("<BI", _TAG_BLOB, len(value)) + value

    def write_fd(self, fd: int) -> None:
        """File descriptors are fixed up by the driver on transfer."""
        self._buf += struct.pack("<Bi", _TAG_FD, fd)

    # -- readers -----------------------------------------------------------
    def _take(self, n: int) -> bytes:
        if self._read_pos + n > len(self._buf):
            raise ParcelError("read past end of parcel")
        out = bytes(self._buf[self._read_pos:self._read_pos + n])
        self._read_pos += n
        return out

    def _expect(self, tag: int) -> None:
        got = self._take(1)[0]
        if got != tag:
            raise ParcelError(f"expected tag {tag}, found {got}")

    def read_i32(self) -> int:
        self._expect(_TAG_I32)
        return struct.unpack("<i", self._take(4))[0]

    def read_i64(self) -> int:
        self._expect(_TAG_I64)
        return struct.unpack("<q", self._take(8))[0]

    def read_string(self) -> str:
        self._expect(_TAG_STR)
        n = struct.unpack("<I", self._take(4))[0]
        return self._take(n).decode("utf-8")

    def read_blob(self) -> bytes:
        self._expect(_TAG_BLOB)
        n = struct.unpack("<I", self._take(4))[0]
        return self._take(n)

    def read_fd(self) -> int:
        self._expect(_TAG_FD)
        return struct.unpack("<i", self._take(4))[0]

    # -- plumbing ----------------------------------------------------------
    def marshal(self) -> bytes:
        return bytes(self._buf)

    def fds(self) -> List[int]:
        """Scan for FD slots (the driver rewrites these on transfer)."""
        fds, pos = [], 0
        buf = self._buf
        while pos < len(buf):
            tag = buf[pos]
            pos += 1
            if tag in (_TAG_I32, _TAG_FD):
                if tag == _TAG_FD:
                    fds.append(struct.unpack("<i", buf[pos:pos + 4])[0])
                pos += 4
            elif tag == _TAG_I64:
                pos += 8
            elif tag in (_TAG_STR, _TAG_BLOB):
                n = struct.unpack("<I", buf[pos:pos + 4])[0]
                pos += 4 + n
            else:
                raise ParcelError(f"corrupt parcel at offset {pos - 1}")
        return fds

    def rewind(self) -> None:
        self._read_pos = 0

    def __len__(self) -> int:
        return len(self._buf)
