"""XPC-optimized Binder (paper §4.3, Figure 4).

Two variants, matching Figure 9's lines:

* :class:`XPCBinderFramework` ("Binder-XPC") — the driver is extended
  with ``add_x-entry`` / ``set_xcap`` management commands, and the
  framework's ``transact()`` uses ``xcall``/``xret`` with Parcels
  implemented on a relay segment.  Domain switches through the kernel
  and the twofold copy are gone; the API is unchanged.
* :class:`AshmemXPCFramework` ("Ashmem-XPC") — only ashmem is
  optimized: transactions still take the baseline ioctl path, but
  ashmem regions are backed by relay segments, so the receiver needs no
  TOCTTOU copy.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hw.cpu import Core
from repro.kernel.kernel import BaseKernel, KernelError
from repro.kernel.process import Process, Thread
from repro.binder.driver import BinderDriver
from repro.binder.framework import BinderFramework, BinderService
from repro.binder.parcel import Parcel
from repro.runtime.xpclib import XPCService, xpc_call


class XPCBinderDriver(BinderDriver):
    """Binder driver with the XPC management ioctls (§4.3)."""

    name = "Binder-XPC-driver"

    def __init__(self, kernel: BaseKernel) -> None:
        super().__init__(kernel)
        #: handle -> XPCService (the registered x-entry per node)
        self.x_entries: Dict[int, XPCService] = {}

    def add_x_entry(self, core: Core, handle: int,
                    service: XPCService) -> None:
        """ioctl ADD_X_ENTRY issued by the framework at addService."""
        self.x_entries[handle] = service

    def set_xcap(self, core: Core, handle: int, client: Thread) -> None:
        """ioctl SET_XCAP issued by the framework at getService."""
        service = self.x_entries.get(handle)
        if service is None:
            raise KernelError(f"handle {handle} has no x-entry")
        node = self.node(handle)
        self.kernel.grant_xcall_cap(
            core, node.process, client, service.entry_id)

    def fixup_fds_xpc(self, src: Process, dst: Process,
                      data: Parcel) -> Dict[int, int]:
        """FD fixup without driver copies: relay-backed regions move by
        seg-reg transfer, so only the table entry is duplicated."""
        fd_map: Dict[int, int] = {}
        for fd in data.fds():
            region = self.ashmem.region(src, fd)
            new_fd = self.ashmem._alloc_fd(dst)
            self.ashmem._table(dst)[new_fd] = region
            fd_map[fd] = new_fd
        return fd_map


class XPCBinderFramework(BinderFramework):
    """Binder-XPC: xcall/xret transactions + relay-seg Parcels."""

    name = "Binder-XPC"

    def __init__(self, driver: XPCBinderDriver,
                 seg_bytes: int = 64 * 1024) -> None:
        super().__init__(driver)
        self.driver: XPCBinderDriver
        self._client_segs: Dict[int, tuple] = {}
        self._seg_bytes = seg_bytes

    # -- registration ------------------------------------------------------
    def add_service(self, core: Core, service: BinderService) -> int:
        handle = super().add_service(core, service)
        mem = self.driver.kernel.machine.memory
        driver = self.driver

        def xpc_handler(call):
            used, code, fd_map = call.args
            raw = mem.read(call.window.pa_base, used) if used else b""
            request = Parcel(raw)
            request.fd_map = fd_map
            driver.current_core = call.core
            reply = service.on_transact(code, request) or Parcel()
            raw_reply = reply.marshal()
            if len(raw_reply) > call.window.length:
                raise KernelError("reply exceeds the relay window")
            if raw_reply:
                mem.write(call.window.pa_base, raw_reply)
            return len(raw_reply)

        self.driver.kernel.run_thread(core, service.thread)
        xpc_service = XPCService(
            self.driver.kernel, core, service.thread, xpc_handler,
            max_contexts=8, name=f"binder:{service.name}",
        )
        self.driver.add_x_entry(core, handle, xpc_service)
        return handle

    def get_service(self, core: Core, client: Thread, name: str):
        proxy = super().get_service(core, client, name)
        self.driver.set_xcap(core, proxy.handle, client)
        return proxy

    # -- the XPC data plane --------------------------------------------------
    def _ensure_seg(self, core: Core, client: Thread, nbytes: int):
        needed = max(nbytes, 4096)
        entry = self._client_segs.get(client.koid)
        if entry is not None and entry[0].length >= needed:
            return entry[0]
        kernel = self.driver.kernel
        if entry is not None:
            old_seg, old_slot = entry
            kernel.deactivate_relay_seg(client)
            client.process.seg_list.drop(old_slot)
            kernel.free_relay_seg(core, old_seg)
        size = max(needed, self._seg_bytes)
        seg, slot = kernel.create_relay_seg(core, client.process, size)
        client.process.seg_list.drop(slot)
        kernel.install_relay_seg(client, seg)
        self._client_segs[client.koid] = (seg, slot)
        return seg

    def transact(self, core: Core, client: Thread, handle: int,
                 code: int, data: Parcel) -> Parcel:
        p = self.params
        driver: XPCBinderDriver = self.driver
        service = driver.x_entries.get(handle)
        if service is None:
            raise KernelError(f"handle {handle} has no x-entry")
        node = driver.node(handle)
        driver.transactions += 1
        driver.current_core = core
        driver.kernel.run_thread(core, client)
        core.tick(p.binder_xpc_framework)

        raw = data.marshal()
        seg = self._ensure_seg(core, client, len(raw))
        mem = driver.kernel.machine.memory
        if raw:
            # Parcels are built directly in the relay segment.
            mem.write(seg.pa_base, raw)
        core.tick(int(len(raw) * p.parcel_relay_per_byte))
        fd_map = driver.fixup_fds_xpc(client.process, node.process, data)

        reply_len = xpc_call(core, service.entry_id, len(raw), code,
                             fd_map, kernel=driver.kernel)
        raw_reply = mem.read(seg.pa_base, reply_len) if reply_len else b""
        core.tick(int(len(raw_reply) * p.parcel_relay_per_byte))
        return Parcel(raw_reply)

    # -- ashmem over relay segments -------------------------------------------
    def ashmem_create(self, core: Core, process: Process,
                      size: int) -> int:
        return self.driver.ashmem.create(core, process, size,
                                         use_relay=True)


class AshmemXPCFramework(BinderFramework):
    """Ashmem-XPC: baseline transactions, relay-backed ashmem only."""

    name = "Ashmem-XPC"

    def ashmem_create(self, core: Core, process: Process,
                      size: int) -> int:
        return self.driver.ashmem.create(core, process, size,
                                         use_relay=True)
