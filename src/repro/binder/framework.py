"""libBinder: the Android Binder framework layer (paper §4.3).

The framework sits between applications and the driver and is kept
API-stable across the baseline and XPC variants, exactly as the paper's
port does ("we keep the IPC interfaces provided by Android Binder
framework (e.g., transact() and onTransact()) unmodified"):

* :class:`BinderService` — the Bn-side base class; subclasses override
  :meth:`on_transact`.
* :class:`BinderProxy` — the Bp-side handle; :meth:`transact` marshals
  and drives whatever data plane the framework was built with.
* :class:`ServiceManager` — ``addService`` / ``getService``.

Parcel (un)marshaling costs ``parcel_marshal_per_byte`` per byte on
each side in the baseline; the XPC framework implements Parcels on the
relay segment, dropping that to ``parcel_relay_per_byte``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hw.cpu import Core
from repro.kernel.kernel import KernelError
from repro.kernel.process import Process, Thread
from repro.binder.driver import BinderDriver
from repro.binder.parcel import Parcel


class BinderService:
    """Base class for Bn (native/server) binder objects."""

    def __init__(self, framework: "BinderFramework", process: Process,
                 thread: Thread, name: str) -> None:
        self.framework = framework
        self.process = process
        self.thread = thread
        self.name = name
        self.handle: Optional[int] = None

    def on_transact(self, code: int, data: Parcel) -> Parcel:
        raise NotImplementedError

    # Receiver-side helpers ------------------------------------------------
    def translate_fd(self, data: Parcel, fd: int) -> int:
        """Resolve a sender fd to this process's fd (driver fixup)."""
        return getattr(data, "fd_map", {}).get(fd, fd)


class BinderProxy:
    """Bp (proxy/client) side of a binder object."""

    def __init__(self, framework: "BinderFramework", client: Thread,
                 handle: int, name: str) -> None:
        self.framework = framework
        self.client = client
        self.handle = handle
        self.name = name

    def transact(self, core: Core, code: int, data: Parcel) -> Parcel:
        """The stable application-facing entry point."""
        return self.framework.transact(core, self.client, self.handle,
                                       code, data)

    def transact_oneway(self, core: Core, code: int,
                        data: Parcel) -> None:
        """``TF_ONE_WAY``: fire-and-forget (no reply, async delivery).

        Note: even the paper's Binder-XPC prototype leaves asynchronous
        IPC on the original driver path ("asynchronous IPC usage like
        death notification is not supported yet", §5.5), so this goes
        through the kernel on every framework variant.
        """
        self.framework.driver.transact_oneway(
            core, self.client, self.handle, code, data)

    def link_to_death(self, core: Core, recipient) -> None:
        """Register a death recipient for this binder object."""
        self.framework.driver.link_to_death(core, self.handle,
                                            recipient)


class ServiceManager:
    """The context manager (handle 0): service name registry."""

    def __init__(self) -> None:
        self._services: Dict[str, int] = {}

    def add_service(self, name: str, handle: int) -> None:
        if name in self._services:
            raise KernelError(f"service {name!r} already registered")
        self._services[name] = handle

    def get_service(self, name: str) -> int:
        handle = self._services.get(name)
        if handle is None:
            raise KernelError(f"no service named {name!r}")
        return handle


class BinderFramework:
    """The glue object applications see: SM + driver + marshal costs."""

    name = "Binder"

    def __init__(self, driver: BinderDriver) -> None:
        self.driver = driver
        self.params = driver.params
        self.service_manager = ServiceManager()

    # -- registration ------------------------------------------------------
    def add_service(self, core: Core, service: BinderService) -> int:
        handle = self.driver.register_node(
            service.process, service.thread, service.on_transact)
        service.handle = handle
        self.service_manager.add_service(service.name, handle)
        return handle

    def get_service(self, core: Core, client: Thread,
                    name: str) -> BinderProxy:
        handle = self.service_manager.get_service(name)
        return BinderProxy(self, client, handle, name)

    # -- the data plane (overridden by the XPC framework) --------------------
    def transact(self, core: Core, client: Thread, handle: int,
                 code: int, data: Parcel) -> Parcel:
        # Framework-side marshal cost on the way in ...
        core.tick(int(len(data) * self.params.parcel_marshal_per_byte))
        reply = self.driver.transact(core, client, handle, code, data)
        # ... and unmarshal on the way back.
        core.tick(int(len(reply) * self.params.parcel_marshal_per_byte))
        return reply

    # -- ashmem ------------------------------------------------------------
    def ashmem_create(self, core: Core, process: Process,
                      size: int) -> int:
        return self.driver.ashmem.create(core, process, size,
                                         use_relay=False)

    def ashmem_mmap(self, core: Core, process: Process, fd: int) -> int:
        return self.driver.ashmem.mmap(core, process, fd)
