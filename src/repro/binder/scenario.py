"""The Figure 9 scenario: surface compositor → window manager.

"The surface compositor will transfer the surface data to the window
manager through Binder, and then the window manager need to read the
surface data and draw the associated surface" (paper §5.5).  Two
facilities are measured: passing the surface through the transaction
buffer (Figure 9a, ≤ 16 KB) and through ashmem (Figure 9b, up to
32 MB).

The measured latency includes data preparation (client), the remote
method invocation and data transfer (framework), handling the surface
content (server, ``DRAW_PER_BYTE`` cycles/byte), and the reply.
"""

from __future__ import annotations

from typing import Tuple

from repro.hw.cpu import Core
from repro.kernel.process import Process, Thread
from repro.binder.framework import BinderFramework, BinderService
from repro.binder.parcel import Parcel

CODE_DRAW_BUFFER = 1
CODE_DRAW_ASHMEM = 2

#: Cycles/byte the window manager spends actually drawing a surface —
#: paid identically by every variant (it is the app's own work).
#: Small buffer-mode surfaces stay cache-resident (Figure 9a's flatter
#: slope); big ashmem surfaces stream from DRAM (Figure 9b's slope).
DRAW_PER_BYTE_CACHED = 0.10
DRAW_PER_BYTE = 0.22


class WindowManagerService(BinderService):
    """The Bn side: receives surfaces and 'draws' them."""

    def __init__(self, framework: BinderFramework, process: Process,
                 thread: Thread) -> None:
        super().__init__(framework, process, thread, "window")
        self.surfaces_drawn = 0
        self.bytes_drawn = 0
        self.last_checksum = 0

    def on_transact(self, code: int, data: Parcel) -> Parcel:
        core = self.framework.driver.current_core
        if code == CODE_DRAW_BUFFER:
            surface = data.read_blob()
            draw_rate = DRAW_PER_BYTE_CACHED
        elif code == CODE_DRAW_ASHMEM:
            fd = self.translate_fd(data, data.read_fd())
            size = data.read_i64()
            surface = self._read_ashmem(core, fd, size)
            draw_rate = DRAW_PER_BYTE
        else:
            raise ValueError(f"unknown transaction code {code}")
        core.tick(int(len(surface) * draw_rate))
        self.surfaces_drawn += 1
        self.bytes_drawn += len(surface)
        self.last_checksum = sum(surface[::4096]) & 0xFFFF
        reply = Parcel()
        reply.write_i32(0)  # status OK
        reply.write_i32(self.last_checksum)
        return reply

    def _read_ashmem(self, core: Core, fd: int, size: int) -> bytes:
        ashmem = self.framework.driver.ashmem
        region = ashmem.region(self.process, fd)
        mem = self.framework.driver.kernel.machine.memory
        self.framework.ashmem_mmap(core, self.process, fd)
        if region.is_relay:
            # Relay-backed: single ownership makes in-place use safe.
            return mem.read(region.relay_seg.pa_base, size)
        # Conventional ashmem: copy out to defeat TOCTTOU (§4.3).
        data = mem.read(region.pa, size)
        core.tick(self.framework.params.copy_cycles(size))
        return data


class SurfaceCompositor:
    """The Bp side: prepares surfaces and sends them to the WM."""

    def __init__(self, framework: BinderFramework, core: Core,
                 thread: Thread) -> None:
        self.framework = framework
        self.core = core
        self.thread = thread
        self.proxy = framework.get_service(core, thread, "window")
        self._ashmem_fd = None
        self._ashmem_size = 0

    def send_via_buffer(self, surface: bytes) -> Tuple[int, int]:
        """Figure 9(a): surface rides in the transaction buffer."""
        data = Parcel()
        data.write_blob(surface)
        reply = self.framework.transact(
            self.core, self.thread, self.proxy.handle,
            CODE_DRAW_BUFFER, data)
        return reply.read_i32(), reply.read_i32()

    def send_via_ashmem(self, surface: bytes) -> Tuple[int, int]:
        """Figure 9(b): surface rides in an ashmem region."""
        fw = self.framework
        core, proc = self.core, self.thread.process
        if self._ashmem_fd is None or self._ashmem_size < len(surface):
            self._ashmem_fd = fw.ashmem_create(core, proc, len(surface))
            self._ashmem_size = len(surface)
            fw.ashmem_mmap(core, proc, self._ashmem_fd)
        region = fw.driver.ashmem.region(proc, self._ashmem_fd)
        mem = fw.driver.kernel.machine.memory
        pa = (region.relay_seg.pa_base if region.is_relay else region.pa)
        mem.write(pa, surface)  # the compositor renders into the region
        data = Parcel()
        data.write_fd(self._ashmem_fd)
        data.write_i64(len(surface))
        reply = fw.transact(self.core, self.thread, self.proxy.handle,
                            CODE_DRAW_ASHMEM, data)
        return reply.read_i32(), reply.read_i32()
