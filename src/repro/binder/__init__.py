"""Android Binder on a Linux-like monolithic kernel, and its XPC port
(paper §4.3, §5.5): driver, framework, Parcels, ashmem, and the window
manager / surface compositor scenario of Figure 9."""

from repro.binder.parcel import Parcel, ParcelError
from repro.binder.ashmem import AshmemRegion, AshmemSubsystem
from repro.binder.driver import BinderDriver, BinderNode
from repro.binder.framework import (
    BinderFramework, BinderProxy, BinderService, ServiceManager,
)
from repro.binder.xpcglue import (
    AshmemXPCFramework, XPCBinderDriver, XPCBinderFramework,
)
from repro.binder.scenario import (
    CODE_DRAW_ASHMEM, CODE_DRAW_BUFFER, DRAW_PER_BYTE, DRAW_PER_BYTE_CACHED,
    SurfaceCompositor, WindowManagerService,
)

__all__ = [
    "Parcel", "ParcelError", "AshmemRegion", "AshmemSubsystem",
    "BinderDriver", "BinderNode", "BinderFramework", "BinderProxy",
    "BinderService", "ServiceManager", "AshmemXPCFramework",
    "XPCBinderDriver", "XPCBinderFramework", "CODE_DRAW_ASHMEM",
    "CODE_DRAW_BUFFER", "DRAW_PER_BYTE", "DRAW_PER_BYTE_CACHED", "SurfaceCompositor",
    "WindowManagerService",
]
