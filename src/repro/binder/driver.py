"""The Linux Binder driver (/dev/binder) model (paper §4.3).

A Binder transaction goes client → driver → server:

1. the client's ``transact()`` issues an ioctl,
2. the driver copies the marshaled Parcel from user space
   (``copy_from_user``), resolves the target, queues the transaction,
   and wakes the server process (two domain switches),
3. the server side copies the data out (``copy_to_user``) and runs
   ``onTransact()``,
4. the reply retraces the same path.

That is the kernel "twofold copy" the paper eliminates with xcall/xret
and relay segments.  File descriptors embedded in a Parcel (ashmem) are
fixed up by the driver into the target's fd table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.hw.cpu import Core, TrapCause
from repro.kernel.kernel import BaseKernel, KernelError
from repro.kernel.process import Process, Thread
from repro.binder.ashmem import AshmemSubsystem
from repro.binder.parcel import Parcel

#: onTransact signature: (code, request parcel, fd map) -> reply parcel
OnTransact = Callable[[int, Parcel], Parcel]


@dataclass
class BinderNode:
    """A registered binder object (one per service)."""

    handle: int
    process: Process
    thread: Thread
    on_transact: OnTransact


class BinderDriver:
    """The baseline /dev/binder data plane."""

    name = "Binder"

    def __init__(self, kernel: BaseKernel) -> None:
        self.kernel = kernel
        self.params = kernel.params
        self.ashmem = AshmemSubsystem(kernel)
        self._nodes: Dict[int, BinderNode] = {}
        self._next_handle = 1
        self.transactions = 0
        #: The core a transaction is currently executing on (set by
        #: transact so services can charge their own work).
        self.current_core: Optional[Core] = None
        #: Asynchronous (oneway) transactions queued per node.
        self._async_queues: Dict[int, list] = {}
        #: Death recipients: node handle -> list of callbacks.
        self._death_recipients: Dict[int, list] = {}
        self.obituaries_sent = 0
        kernel.death_hooks.append(self._on_process_death)

    # ------------------------------------------------------------------
    # Node management (used by the service manager)
    # ------------------------------------------------------------------
    def register_node(self, process: Process, thread: Thread,
                      on_transact: OnTransact) -> int:
        handle = self._next_handle
        self._next_handle += 1
        self._nodes[handle] = BinderNode(handle, process, thread,
                                         on_transact)
        return handle

    def node(self, handle: int) -> BinderNode:
        node = self._nodes.get(handle)
        if node is None:
            raise KernelError(f"bad binder handle {handle}")
        return node

    # ------------------------------------------------------------------
    # The transaction path
    # ------------------------------------------------------------------
    def transact(self, core: Core, client: Thread, handle: int,
                 code: int, data: Parcel) -> Parcel:
        """One full Binder transaction (request + reply)."""
        p = self.params
        node = self.node(handle)
        self.transactions += 1
        self.current_core = core

        # --- client -> kernel ------------------------------------------
        core.trap(TrapCause.SYSCALL)
        core.tick(p.binder_ioctl + p.binder_txn_logic)
        raw = data.marshal()
        core.tick(p.copy_from_user_setup + p.copy_cycles(len(raw)))
        fd_map = self._fixup_fds(core, client.process, node.process, data)

        # --- wake the server, copy out ----------------------------------
        core.tick(p.binder_wakeup)
        core.set_address_space(node.process.aspace, charge=False)
        core.current_thread = node.thread
        core.tick(p.copy_to_user_setup + p.copy_cycles(len(raw)))
        core.trap_return()
        request = Parcel(raw)
        request.fd_map = fd_map  # translated fds for the receiver

        # --- server handler ---------------------------------------------
        reply = node.on_transact(code, request) or Parcel()

        # --- reply path (same shape back) --------------------------------
        core.trap(TrapCause.SYSCALL)
        core.tick(p.binder_ioctl)
        raw_reply = reply.marshal()
        core.tick(p.copy_from_user_setup + p.copy_cycles(len(raw_reply)))
        core.tick(p.binder_wakeup)
        core.set_address_space(client.process.aspace, charge=False)
        core.current_thread = client
        core.tick(p.copy_to_user_setup + p.copy_cycles(len(raw_reply)))
        core.trap_return()
        return Parcel(raw_reply)

    def _fixup_fds(self, core: Core, src: Process, dst: Process,
                   data: Parcel) -> Dict[int, int]:
        """Translate BINDER_TYPE_FD objects into the target process."""
        fd_map: Dict[int, int] = {}
        for fd in data.fds():
            fd_map[fd] = self.ashmem.dup_into(core, src, fd, dst)
        return fd_map

    # ------------------------------------------------------------------
    # Asynchronous (oneway) transactions
    # ------------------------------------------------------------------
    def transact_oneway(self, core: Core, client: Thread, handle: int,
                        code: int, data: Parcel) -> None:
        """``TF_ONE_WAY``: copy in, queue, return immediately.

        The client pays only the inbound half; the server side runs
        later via :meth:`deliver_async`.
        """
        p = self.params
        node = self.node(handle)
        self.transactions += 1
        core.trap(TrapCause.SYSCALL)
        core.tick(p.binder_ioctl + p.binder_txn_logic)
        raw = data.marshal()
        core.tick(p.copy_from_user_setup + p.copy_cycles(len(raw)))
        fd_map = self._fixup_fds(core, client.process, node.process,
                                 data)
        self._async_queues.setdefault(handle, []).append(
            (code, raw, fd_map))
        core.trap_return()

    def deliver_async(self, core: Core, handle: int) -> int:
        """Drain a node's oneway queue (the server's looper running).

        Returns the number of transactions delivered.
        """
        p = self.params
        node = self.node(handle)
        queue = self._async_queues.get(handle, [])
        delivered = 0
        self.current_core = core
        while queue:
            code, raw, fd_map = queue.pop(0)
            core.tick(p.binder_wakeup)
            core.set_address_space(node.process.aspace, charge=False)
            core.current_thread = node.thread
            core.tick(p.copy_to_user_setup + p.copy_cycles(len(raw)))
            request = Parcel(raw)
            request.fd_map = fd_map
            node.on_transact(code, request)
            delivered += 1
        return delivered

    def pending_async(self, handle: int) -> int:
        return len(self._async_queues.get(handle, []))

    # ------------------------------------------------------------------
    # Death notification (linkToDeath / obituaries)
    # ------------------------------------------------------------------
    def link_to_death(self, core: Core, handle: int,
                      recipient) -> None:
        """Register *recipient* (a callable taking the handle) to be
        notified when the node's hosting process dies."""
        self.node(handle)  # validate
        core.tick(self.params.binder_ioctl)
        self._death_recipients.setdefault(handle, []).append(recipient)

    def unlink_to_death(self, core: Core, handle: int,
                        recipient) -> None:
        try:
            self._death_recipients.get(handle, []).remove(recipient)
        except ValueError:
            raise KernelError("recipient was not linked") from None

    def _on_process_death(self, process: Process) -> None:
        """Kernel death hook: send obituaries for every hosted node."""
        for handle, node in list(self._nodes.items()):
            if node.process is not process:
                continue
            for recipient in self._death_recipients.pop(handle, []):
                recipient(handle)
                self.obituaries_sent += 1
            del self._nodes[handle]
            self._async_queues.pop(handle, None)
