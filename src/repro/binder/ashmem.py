"""The anonymous shared memory (ashmem) subsystem (paper §4.3).

Baseline ashmem is file-backed shared memory: a process creates a
region, mmaps it, and shares the file descriptor with another process
through the Binder driver.  "Like conventional shared memory
approaches, ashmem also needs an extra copying to avoid TOCTTOU
attacks" — the receiver copies the contents out before trusting them.

The XPC variant backs an ashmem region with a *relay segment*: the
mapping's ownership is transferred with the call, so the receiver can
use the data in place, safely, with zero copies.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.hw.cpu import Core
from repro.hw.memory import PAGE_SIZE
from repro.hw.paging import PagePerm
from repro.kernel.kernel import BaseKernel
from repro.kernel.objects import KernelObject
from repro.kernel.process import Process
from repro.xpc.relayseg import RelaySegment, SegReg


class AshmemRegion(KernelObject):
    """One ashmem region: plain shared pages or a relay segment."""

    def __init__(self, size: int, pa: int = -1,
                 relay_seg: Optional[RelaySegment] = None,
                 name: str = "") -> None:
        super().__init__(name or "ashmem")
        self.size = size
        self.pa = pa
        self.relay_seg = relay_seg

    @property
    def is_relay(self) -> bool:
        return self.relay_seg is not None


class AshmemSubsystem:
    """Kernel-side ashmem: create / mmap / fd bookkeeping."""

    def __init__(self, kernel: BaseKernel) -> None:
        self.kernel = kernel
        self._fd_tables: Dict[int, Dict[int, AshmemRegion]] = {}
        self._next_fd: Dict[int, int] = {}
        self._mappings: Dict[Tuple[int, int], int] = {}  # (proc,koid)->va

    def _table(self, process: Process) -> Dict[int, AshmemRegion]:
        return self._fd_tables.setdefault(process.koid, {})

    def _alloc_fd(self, process: Process) -> int:
        fd = self._next_fd.get(process.koid, 3)
        self._next_fd[process.koid] = fd + 1
        return fd

    # ------------------------------------------------------------------
    def create(self, core: Core, process: Process, size: int,
               use_relay: bool = False) -> int:
        """``ashmem_create_region``: returns a new fd in *process*."""
        size = _round_page(size)
        if use_relay:
            seg, slot = self.kernel.create_relay_seg(core, process, size)
            process.seg_list.drop(slot)  # managed by the framework
            region = AshmemRegion(size, relay_seg=seg)
        else:
            pa = self.kernel.machine.memory.alloc_contiguous(size)
            region = AshmemRegion(size, pa=pa)
        fd = self._alloc_fd(process)
        self._table(process)[fd] = region
        return fd

    def region(self, process: Process, fd: int) -> AshmemRegion:
        try:
            return self._table(process)[fd]
        except KeyError:
            raise KeyError(f"bad ashmem fd {fd} in {process}") from None

    def mmap(self, core: Core, process: Process, fd: int) -> int:
        """Map the region into *process*; returns the VA.

        Relay-backed regions are "mapped" by installing the seg-reg, so
        their VA is the segment's fixed relay VA (valid in any address
        space via the seg-reg window).
        """
        region = self.region(process, fd)
        if region.is_relay:
            # Relay-backed map = set the relay-seg register (§4.3),
            # essentially a swapseg — no page-table work at all.
            core.tick(self.kernel.params.swapseg)
            return region.relay_seg.va_base
        core.tick(self.kernel.params.ashmem_mmap)
        key = (process.koid, region.koid)
        va = self._mappings.get(key)
        if va is None:
            va = process.aspace._va_cursor
            process.aspace._va_cursor += region.size + PAGE_SIZE
            process.aspace.page_table.map_range(
                va, region.pa, region.size, PagePerm.RW)
            self._mappings[key] = va
        return va

    def dup_into(self, core: Core, src: Process, fd: int,
                 dst: Process) -> int:
        """Driver-side fd transfer (BINDER_TYPE_FD fixup)."""
        region = self.region(src, fd)
        core.tick(self.kernel.params.ashmem_fd_xfer)
        new_fd = self._alloc_fd(dst)
        self._table(dst)[new_fd] = region
        return new_fd


def _round_page(n: int) -> int:
    return (n + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
