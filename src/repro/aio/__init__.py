"""repro.aio — asynchronous & batched XPC over relay-segment rings.

The synchronous protocol (one ``xcall`` per request) is the paper's
contract; this package layers AnyCall/io_uring-style aggregation on top
of it without touching the ISA: submission/completion rings live inside
an ordinary relay segment (:mod:`~repro.aio.ring`), a client batcher
crosses the boundary once per batch (:mod:`~repro.aio.batch`), worker
pools drain rings on the multi-core machine model
(:mod:`~repro.aio.pool`), and bounded admission control pushes back
when clients outrun the workers (:mod:`~repro.aio.backpressure`).

See DESIGN.md §11 for the layout and policies, and
``benchmarks/test_throughput_async.py`` for the open-loop workload that
measures the aggregation win against the paper-faithful synchronous
baseline.
"""

from repro.aio.backpressure import AdmissionController, AdmissionPolicy
from repro.aio.batch import Batcher, XPCFuture, XPCRequestError
from repro.aio.pool import WorkerPool
from repro.aio.ring import (CQE, SQE, SQE_ERR, SQE_OK, XPCRing,
                            XPCRingFullError, decode_meta, encode_meta)
from repro.aio.server import RingService

__all__ = [
    "AdmissionController", "AdmissionPolicy", "Batcher", "CQE",
    "RingService", "SQE", "SQE_ERR", "SQE_OK", "WorkerPool",
    "XPCFuture", "XPCRequestError", "XPCRing", "XPCRingFullError",
    "decode_meta", "encode_meta",
]
