"""Submission/completion rings laid out inside a relay segment.

The paper's ``xcall``/``xret`` is strictly synchronous: one blocked
caller per call chain, one boundary crossing per request.  This module
adds the io_uring/AnyCall-style aggregation layer on top — *without*
changing the ISA semantics.  A single relay segment carries:

``+--------+----------------+----------------+--------------------+``
``| header | SQE ring       | CQE ring       | payload arena      |``
``+--------+----------------+----------------+--------------------+``

* The **header** holds the geometry and the four ring indices
  (``sq_head``/``sq_tail``/``cq_head``/``cq_tail``) as real bytes in
  simulated physical memory.  Indices are *monotonic* (never wrap); a
  record's slot is ``index % entries``.  ``head <= tail`` is therefore a
  memory-checkable invariant (see :func:`repro.verify.check_ring_invariants`).
* **SQEs** are fixed 32-byte records pointing at arena-resident meta and
  payload bytes; **CQEs** mirror them with a status and reply locations.
  Replies land *in place* in the request's arena slot — the same
  zero-copy convention as the synchronous transport.
* The **arena** is a bump allocator, reset by the client between batch
  rounds once every completion has been harvested.

TOCTTOU safety comes for free from relay-seg ownership (§3.3/§6.1):
the client fills SQEs while it owns the segment, the single ``xcall``
hands ownership to the worker, which drains while *it* owns the
segment; there is never a moment with two writers.

Every enqueue/dequeue is cycle-accounted through the operating core
(``aio_*`` fields of :class:`repro.params.CycleParams`); arena fills
charge the same ``relay_fill_per_byte`` as the synchronous transport's
message production.
"""

from __future__ import annotations

import ast
import struct
from typing import List, NamedTuple, Optional

import repro.faults as faults
import repro.obs as obs
import repro.san as san
from repro.hw.cpu import Core
from repro.xpc.errors import XPCError
from repro.xpc.relayseg import RelaySegment, SegReg

#: Header field layout (all little-endian u32):
#:   magic, entries, sqe_off, cqe_off, arena_off, arena_len,
#:   sq_head, sq_tail, cq_head, cq_tail, arena_cur, next_seq
_HDR = struct.Struct("<12I")
HDR_BYTES = 64
MAGIC = 0x58504352  # "XPCR"

_SQE = struct.Struct("<6I")   # seq, meta_off, meta_len, data_off, slot_len, data_len
_CQE = struct.Struct("<Ii4I")  # seq, status, rmeta_off, rmeta_len, rdata_off, rdata_len
SQE_BYTES = 32
CQE_BYTES = 32

#: CQE status values.
SQE_OK = 0
SQE_ERR = -1


class XPCRingFullError(XPCError):
    """Bounded-queue backpressure: the submission ring (or its payload
    arena) cannot admit another request right now."""

    def __init__(self, name: str, reason: str) -> None:
        self.ring_name = name
        self.reason = reason
        super().__init__(f"{name}: {reason}")


class SQE(NamedTuple):
    """A submission-queue entry as read back from ring memory."""

    seq: int
    meta_off: int
    meta_len: int
    data_off: int
    slot_len: int      # bytes reserved in the arena (>= data and reply)
    data_len: int      # bytes of request payload actually filled


class CQE(NamedTuple):
    """A completion-queue entry as read back from ring memory."""

    seq: int
    status: int
    rmeta_off: int
    rmeta_len: int
    rdata_off: int
    rdata_len: int


def encode_meta(meta: tuple) -> bytes:
    """Deterministically serialize a transport ``meta`` tuple."""
    return repr(tuple(meta)).encode("utf-8")


def decode_meta(data: bytes) -> tuple:
    return tuple(ast.literal_eval(data.decode("utf-8")))


def _align8(n: int) -> int:
    return (n + 7) & ~7


class XPCRing:
    """One submission/completion ring over one relay segment.

    Create it client-side with :meth:`format` (writes the header) and
    view it worker-side with :meth:`attach` (reads the header from the
    handed-over window).  All mutation of ring memory anywhere in the
    tree must go through this API — enforced by the ``aio-discipline``
    lint rule.
    """

    def __init__(self, mem, pa_base: int, va_base: int, length: int,
                 segment: Optional[RelaySegment], name: str) -> None:
        self._mem = mem
        self.pa_base = pa_base
        self.va_base = va_base
        self.length = length
        self.segment = segment
        self.name = name
        self.entries = 0
        self._sqe_off = 0
        self._cqe_off = 0
        self._arena_off = 0
        self._arena_len = 0

    # -- construction --------------------------------------------------
    @classmethod
    def format(cls, core: Core, mem, seg: RelaySegment,
               entries: int = 64, name: str = "aio") -> "XPCRing":
        """Client-side: lay a fresh ring out inside *seg*."""
        if entries <= 0:
            raise ValueError("ring needs at least one entry")
        sqe_off = HDR_BYTES
        cqe_off = sqe_off + entries * SQE_BYTES
        arena_off = _align8(cqe_off + entries * CQE_BYTES)
        if arena_off + 64 > seg.length:
            raise ValueError(
                f"segment of {seg.length} bytes too small for "
                f"{entries}-entry ring")
        ring = cls(mem, seg.pa_base, seg.va_base, seg.length, seg, name)
        ring.entries = entries
        ring._sqe_off = sqe_off
        ring._cqe_off = cqe_off
        ring._arena_off = arena_off
        ring._arena_len = seg.length - arena_off
        mem.write(seg.pa_base, _HDR.pack(
            MAGIC, entries, sqe_off, cqe_off, arena_off, ring._arena_len,
            0, 0, 0, 0, arena_off, 0))
        core.tick(core.params.aio_index_reload
                  + int(HDR_BYTES * core.params.relay_fill_per_byte))
        return ring

    @classmethod
    def attach(cls, core: Core, mem, window: SegReg,
               name: str = "aio") -> "XPCRing":
        """Worker-side: view the ring inside a handed-over window."""
        if not window.valid:
            raise XPCError("cannot attach a ring to an invalid window")
        ring = cls(mem, window.pa_base, window.va_base, window.length,
                   window.segment, name)
        hdr = _HDR.unpack(mem.read(window.pa_base, _HDR.size))
        core.tick(core.params.aio_index_reload)
        if hdr[0] != MAGIC:
            raise XPCError(f"{name}: window holds no ring (bad magic)")
        ring.entries = hdr[1]
        ring._sqe_off, ring._cqe_off = hdr[2], hdr[3]
        ring._arena_off, ring._arena_len = hdr[4], hdr[5]
        return ring

    # -- raw index access (memory-resident) ----------------------------
    def _load(self, field: int) -> int:
        off = 24 + 4 * field
        return struct.unpack("<I", self._mem.read(self.pa_base + off, 4))[0]

    def _store(self, field: int, value: int) -> None:
        off = 24 + 4 * field
        self._mem.write(self.pa_base + off, struct.pack("<I", value))

    @property
    def sq_head(self) -> int:
        return self._load(0)

    @property
    def sq_tail(self) -> int:
        return self._load(1)

    @property
    def cq_head(self) -> int:
        return self._load(2)

    @property
    def cq_tail(self) -> int:
        return self._load(3)

    @property
    def arena_cursor(self) -> int:
        return self._load(4)

    @property
    def next_seq(self) -> int:
        return self._load(5)

    def peek_indices(self) -> dict:
        """Uncharged snapshot of the memory-resident indices (for
        observers and invariant checkers — never moves the clock)."""
        return {
            "sq_head": self.sq_head, "sq_tail": self.sq_tail,
            "cq_head": self.cq_head, "cq_tail": self.cq_tail,
            "arena_cursor": self.arena_cursor, "next_seq": self.next_seq,
        }

    # -- capacity ------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Requests admitted but not yet harvested (SQ fill + CQ fill)."""
        return self.sq_tail - self.cq_head

    def space(self) -> int:
        """SQEs that can still be pushed before the ring refuses.

        Bounded by ``cq_head`` (not ``sq_head``) so the completion ring
        can never overflow: a slot is only reusable once its completion
        has been harvested."""
        return self.entries - self.outstanding

    # -- arena ---------------------------------------------------------
    def _arena_alloc(self, nbytes: int) -> int:
        cur = self.arena_cursor
        need = _align8(nbytes)
        if cur + need > self._arena_off + self._arena_len:
            raise XPCRingFullError(
                self.name,
                f"payload arena exhausted ({need} bytes wanted, "
                f"{self._arena_off + self._arena_len - cur} free)")
        self._store(4, cur + need)
        return cur

    # -- submission side (client owns the segment) ---------------------
    def push_sqe(self, core: Core, meta: tuple, payload: bytes = b"",
                 reply_capacity: int = 0) -> int:
        """Append one request; returns its sequence number.

        Raises :class:`XPCRingFullError` when the ring or the arena is
        full — the ``aio.ring_full`` fault point injects that refusal
        even with space remaining (a racing producer got there first).
        """
        if faults.ACTIVE is not None:
            if faults.fire("aio.ring_full") is not None:
                raise XPCRingFullError(
                    self.name, "submission ring full (injected)")
        if self.space() <= 0:
            raise XPCRingFullError(
                self.name,
                f"submission ring full ({self.entries} outstanding)")
        meta_bytes = encode_meta(meta)
        slot_len = _align8(max(len(payload), reply_capacity, 1))
        meta_off = self._arena_alloc(len(meta_bytes))
        data_off = self._arena_alloc(slot_len)
        self._mem.write(self.pa_base + meta_off, meta_bytes)
        if payload:
            self._mem.write(self.pa_base + data_off, payload)
        fill = len(meta_bytes) + len(payload)
        tail = self.sq_tail
        seq = self.next_seq
        self._mem.write(
            self.pa_base + self._sqe_off + (tail % self.entries) * SQE_BYTES,
            _SQE.pack(seq, meta_off, len(meta_bytes), data_off,
                      slot_len, len(payload)))
        self._store(1, tail + 1)
        self._store(5, seq + 1)
        if san.ACTIVE is not None:
            san.ACTIVE.access(core, self, "ring-sq",
                              "aio.ring.push_sqe", "write")
        core.tick(core.params.aio_sqe_op
                  + int(fill * core.params.relay_fill_per_byte))
        return seq

    def pop_cqe(self, core: Core) -> Optional[CQE]:
        """Harvest one completion (client side); None when drained."""
        head = self.cq_head
        if head >= self.cq_tail:
            return None
        raw = self._mem.read(
            self.pa_base + self._cqe_off + (head % self.entries) * CQE_BYTES,
            _CQE.size)
        self._store(2, head + 1)
        if san.ACTIVE is not None:
            san.ACTIVE.access(core, self, "ring-cq",
                              "aio.ring.pop_cqe", "write")
        core.tick(core.params.aio_cqe_op)
        return CQE(*_CQE.unpack(raw))

    def reset(self, core: Core) -> None:
        """Rewind the arena once every completion has been harvested."""
        if self.sq_head != self.sq_tail or self.cq_head != self.cq_tail:
            raise XPCError(
                f"{self.name}: reset with requests in flight "
                f"(sq {self.sq_head}/{self.sq_tail}, "
                f"cq {self.cq_head}/{self.cq_tail})")
        self._store(4, self._arena_off)
        if san.ACTIVE is not None:
            san.ACTIVE.access(core, self, "ring-sq",
                              "aio.ring.reset", "write")
            san.ACTIVE.access(core, self, "ring-cq",
                              "aio.ring.reset", "write")
        core.tick(core.params.aio_index_reload)

    # -- drain side (worker owns the segment after the xcall) ----------
    def pop_sqe(self, core: Core) -> Optional[SQE]:
        """Consume one submission (worker side); None when empty.

        The ``aio.stale_head`` fault point models a stale cached index:
        recovery is a charged re-read of the header line.
        """
        if faults.ACTIVE is not None:
            if faults.fire("aio.stale_head") is not None:
                core.tick(core.params.aio_index_reload)
                if obs.ACTIVE is not None:
                    obs.ACTIVE.registry.counter(
                        f"aio.stale_head_recovered.{self.name}").inc(
                            cycle=core.cycles)
        head = self.sq_head
        if head >= self.sq_tail:
            return None
        raw = self._mem.read(
            self.pa_base + self._sqe_off + (head % self.entries) * SQE_BYTES,
            _SQE.size)
        self._store(0, head + 1)
        if san.ACTIVE is not None:
            san.ACTIVE.access(core, self, "ring-sq",
                              "aio.ring.pop_sqe", "write")
        core.tick(core.params.aio_sqe_op)
        return SQE(*_SQE.unpack(raw))

    def push_cqe(self, core: Core, seq: int, status: int,
                 reply_meta: tuple, rdata_off: int, rdata_len: int) -> None:
        """Publish one completion (worker side).

        Reply payload bytes are already in place in the request's arena
        slot; only the reply meta is serialized here."""
        rmeta_bytes = encode_meta(reply_meta)
        rmeta_off = self._arena_alloc(len(rmeta_bytes))
        self._mem.write(self.pa_base + rmeta_off, rmeta_bytes)
        tail = self.cq_tail
        self._mem.write(
            self.pa_base + self._cqe_off + (tail % self.entries) * CQE_BYTES,
            _CQE.pack(seq, status, rmeta_off, len(rmeta_bytes),
                      rdata_off, rdata_len))
        self._store(3, tail + 1)
        if san.ACTIVE is not None:
            san.ACTIVE.access(core, self, "ring-cq",
                              "aio.ring.push_cqe", "write")
        core.tick(core.params.aio_cqe_op
                  + int(len(rmeta_bytes) * core.params.relay_fill_per_byte))

    # -- record payloads (uncharged reads, like sync reply reads) ------
    def read_meta(self, sqe: SQE) -> tuple:
        return decode_meta(self._mem.read(self.pa_base + sqe.meta_off,
                                          sqe.meta_len))

    def read_reply_meta(self, cqe: CQE) -> tuple:
        return decode_meta(self._mem.read(self.pa_base + cqe.rmeta_off,
                                          cqe.rmeta_len))

    def read_bytes(self, offset: int, n: int) -> bytes:
        if n <= 0:
            return b""
        return self._mem.read(self.pa_base + offset, n)

    def payload_window(self, sqe: SQE) -> SegReg:
        """A SegReg view of one request's arena slot — the window a
        zero-copy :class:`~repro.ipc.transport.RelayPayload` wraps."""
        if self.segment is None:
            raise XPCError(f"{self.name}: ring has no backing segment")
        return SegReg(
            segment=self.segment,
            va_base=self.va_base + sqe.data_off,
            pa_base=self.pa_base + sqe.data_off,
            length=sqe.slot_len,
            perm=self.segment.perm,
        )

    def peek_cqes(self) -> List[CQE]:
        """Uncharged view of unharvested completions (for invariant
        checks and crash-recovery harvesting)."""
        out = []
        for idx in range(self.cq_head, self.cq_tail):
            raw = self._mem.read(
                self.pa_base + self._cqe_off
                + (idx % self.entries) * CQE_BYTES, _CQE.size)
            out.append(CQE(*_CQE.unpack(raw)))
        return out

    def __repr__(self) -> str:
        return (f"XPCRing({self.name!r}, entries={self.entries}, "
                f"sq={self.sq_head}/{self.sq_tail}, "
                f"cq={self.cq_head}/{self.cq_tail})")
