"""The worker-side drain service: one ``xcall`` drains a whole ring.

A :class:`RingService` registers a normal x-entry (through
:class:`~repro.runtime.xpclib.XPCService`, so the §4.2 trampoline,
C-stack switch and context accounting all still apply) whose handler
attaches an :class:`~repro.aio.ring.XPCRing` view over the handed-over
window and pops SQEs until the submission queue is empty.  Each request
is presented to the wrapped service handler as a zero-copy
:class:`~repro.ipc.transport.RelayPayload` over its arena slot, so
nested onward calls (FS → blockdev) can keep sliding the same window
down the chain (§4.4).

This is AnyCall's aggregation argument materialized on XPC: the
per-crossing cost (xcall + trampoline + xret) is paid once per *batch*
instead of once per *request*.

Fault points: ``aio.worker_death`` fires between two SQEs — the worker
process is killed mid-batch, completions already pushed survive in the
ring (the client harvests them during §4.2 repair), and the supervisor
restart path re-dispatches the rest.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import repro.faults as faults
import repro.obs as obs
from repro.hw.cpu import Core
from repro.ipc.transport import Handler, RelayPayload
from repro.kernel.kernel import BaseKernel
from repro.kernel.process import Thread
from repro.runtime.xpclib import ExhaustionPolicy, XPCService
from repro.aio.ring import SQE_ERR, SQE_OK, XPCRing


class RingService:
    """Serve a transport-style ``handler(meta, payload)`` from a ring.

    The wrapped handler keeps the exact synchronous contract (reply as
    bytes, as an in-place byte count, or ``None``), so the same service
    code serves both front-ends.
    """

    def __init__(self, kernel: BaseKernel, core: Core,
                 server_thread: Thread, handler: Handler,
                 name: str = "aio",
                 max_contexts: int = 4,
                 policy: ExhaustionPolicy = ExhaustionPolicy.FAIL,
                 partial_context: bool = False,
                 max_drain: Optional[int] = None,
                 serve_context: Optional[Callable] = None) -> None:
        self.kernel = kernel
        self.handler = handler
        self.name = name
        self.server_thread = server_thread
        self.max_drain = max_drain
        #: ``serve_context(core)`` → context manager entered around each
        #: request, e.g. ``Transport.serving`` so handlers shared with a
        #: synchronous transport charge — and call onward from — the
        #: worker's core instead of the transport's home core.
        self.serve_context = serve_context
        self.mem = kernel.machine.memory
        self.drained = 0
        self.failed = 0
        self.service = XPCService(
            kernel, core, server_thread, self._drain,
            max_contexts=max_contexts, policy=policy,
            partial_context=partial_context, name=f"aio:{name}",
        )

    @property
    def entry_id(self) -> int:
        return self.service.entry_id

    # -- the batched handler -------------------------------------------
    def _drain(self, call) -> int:
        """Pop SQEs until the submission queue is dry; returns count."""
        core = call.core
        start = core.cycles
        ring = XPCRing.attach(core, self.mem, call.window, name=self.name)
        drained = 0
        while self.max_drain is None or drained < self.max_drain:
            sqe = ring.pop_sqe(core)
            if sqe is None:
                break
            if drained and faults.ACTIVE is not None:
                act = faults.fire("aio.worker_death")
                if act is not None:
                    # Die between two SQEs: the one just popped is
                    # consumed but never completed; earlier CQEs stay
                    # harvestable in the ring.
                    self._die(act)
            self._serve_one(core, ring, sqe)
            drained += 1
        self.drained += drained
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.counter(
                f"aio.drained.{self.name}").inc(drained, cycle=core.cycles)
            obs.ACTIVE.registry.histogram(
                f"aio.batch_size.{self.name}").observe(
                    drained, cycle=core.cycles)
            obs.ACTIVE.pmu.add(core, "cycles.aio.drain",
                               core.cycles - start)
        return drained

    def _serve_one(self, core: Core, ring: XPCRing, sqe) -> None:
        meta = ring.read_meta(sqe)
        payload = RelayPayload(self.mem, ring.payload_window(sqe),
                               sqe.data_len, base_offset=sqe.data_off)
        try:
            if self.serve_context is not None:
                with self.serve_context(core):
                    reply_meta, reply = self.handler(meta, payload)
            else:
                reply_meta, reply = self.handler(meta, payload)
        except faults.ProcessCrashFault:
            raise
        except Exception as exc:  # noqa: BLE001 - contained per-request
            # A failing request must not poison the rest of the batch:
            # complete it with an error CQE instead of unwinding.
            self.failed += 1
            ring.push_cqe(core, sqe.seq, SQE_ERR,
                          (type(exc).__name__, str(exc)[:120]),
                          sqe.data_off, 0)
            return
        if reply is None:
            reply_len = 0
        elif isinstance(reply, int):
            reply_len = reply            # already written in place
        else:
            payload.write(reply, 0)      # reply lands in the arena slot
            reply_len = len(reply)
        ring.push_cqe(core, sqe.seq, SQE_OK, reply_meta,
                      sqe.data_off, reply_len)

    def _die(self, act: dict) -> None:
        """Injected worker death mid-batch (mirrors the xpclib crash
        injection): kill our process; the migrated caller thread
        unwinds through the kernel's §4.2 repair."""
        self.kernel.kill_process(self.server_thread.process,
                                 lazy=bool(act.get("lazy", True)))
        raise faults.ProcessCrashFault(self.name,
                                       self.server_thread.process)
