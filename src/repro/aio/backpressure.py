"""Bounded-queue admission control for the async front-end.

The synchronous stack already has two backpressure stages — per-entry
XPC contexts (``XPCBusyError``, §4.2's DoS discussion) and the
nameserver circuit breaker.  Batched submission adds a third queue (the
ring) in front of both, so it needs its own bound: an
:class:`AdmissionController` caps the number of in-flight requests a
client may hold and either **rejects** (typed
:class:`~repro.aio.ring.XPCRingFullError`, caller decides) or **parks**
(burn cycles, drain completions, retry — the blocking flavour).

Wiring:

* obs: gauge ``aio.inflight.<name>`` tracks the bound, counters
  ``aio.admission_rejected.<name>`` / ``aio.admission_parked.<name>``
  count the pressure events (all guarded — never moves the clock).
* nameserver circuit breaker: pass any object with
  ``report_failure(name)`` / ``report_success(name)`` (duck-typed so
  this layer stays below :mod:`repro.services`) as *health* — sustained
  overload then trips the breaker and sheds load at resolve time.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

import repro.obs as obs
from repro.hw.cpu import Core
from repro.aio.ring import XPCRingFullError


class AdmissionPolicy(enum.Enum):
    REJECT = "reject"    # fail fast with XPCRingFullError
    PARK = "park"        # burn park_cycles, drain, retry (bounded)


class AdmissionController:
    """Caps in-flight async requests; rejects or parks past the limit."""

    def __init__(self, limit: int,
                 policy: AdmissionPolicy = AdmissionPolicy.REJECT,
                 park_cycles: int = 2000,
                 max_parks: int = 4,
                 name: str = "aio",
                 health=None,
                 service_name: Optional[str] = None,
                 slo=None) -> None:
        if limit <= 0:
            raise ValueError("admission limit must be positive")
        self.limit = limit
        self.policy = policy
        self.park_cycles = park_cycles
        self.max_parks = max_parks
        self.name = name
        self.health = health
        self.service_name = service_name or name
        #: Duck-typed load-shedding source (``should_shed(now_cycles)
        #: -> bool``, e.g. a ``repro.prof.slo.SLOEngine``): while the
        #: error budget is burning at the shed rate, new admissions are
        #: rejected outright so the backlog can drain.
        self.slo = slo
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.parked = 0
        self.shed = 0

    def admit(self, core: Core,
              drain_hook: Optional[Callable[[], object]] = None) -> None:
        """Take one slot, or raise :class:`XPCRingFullError`.

        Under ``PARK`` the caller blocks in bounded slices: each park
        charges ``park_cycles`` and runs *drain_hook* (typically the
        batcher's ``flush``) so completions can free slots."""
        if self.slo is not None and self.slo.should_shed(core.cycles):
            self.shed += 1
            self.rejected += 1
            if obs.ACTIVE is not None:
                obs.ACTIVE.registry.counter(
                    f"aio.slo_shed.{self.name}").inc(cycle=core.cycles)
            if self.health is not None:
                self.health.report_failure(self.service_name)
            raise XPCRingFullError(
                self.name, "SLO burn rate at shed threshold — "
                "admission closed to drain the backlog")
        parks = 0
        while self.inflight >= self.limit:
            if self.policy is AdmissionPolicy.REJECT or parks >= self.max_parks:
                self.rejected += 1
                if obs.ACTIVE is not None:
                    obs.ACTIVE.registry.counter(
                        f"aio.admission_rejected.{self.name}").inc(
                            cycle=core.cycles)
                if self.health is not None:
                    self.health.report_failure(self.service_name)
                raise XPCRingFullError(
                    self.name,
                    f"admission limit {self.limit} reached "
                    f"({self.inflight} in flight)")
            parks += 1
            self.parked += 1
            core.tick(self.park_cycles)
            if obs.ACTIVE is not None:
                obs.ACTIVE.registry.counter(
                    f"aio.admission_parked.{self.name}").inc(
                        cycle=core.cycles)
            if drain_hook is not None:
                drain_hook()
        self.inflight += 1
        self.admitted += 1
        self._gauge(core)

    def release(self, core: Core, n: int = 1) -> None:
        """Free *n* slots (one completion harvested)."""
        self.inflight = max(0, self.inflight - n)
        self._gauge(core)
        if self.health is not None:
            self.health.report_success(self.service_name)

    def _gauge(self, core: Core) -> None:
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.gauge(
                f"aio.inflight.{self.name}").set(
                    self.inflight, cycle=core.cycles)
