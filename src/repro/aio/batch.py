"""Client-side batching: futures, deadline flush, crash re-dispatch.

A :class:`Batcher` owns one ring (and the relay segment under it) plus
the client thread that ``xcall``s the drain service.  ``submit`` is
cheap — push one SQE, get an :class:`XPCFuture` — and the boundary is
crossed only on ``flush``: when the batch reaches ``max_batch``, when
the oldest pending request is older than ``max_wait_cycles``, or when
the caller asks (``wait_all``).

Crash story (§4.2 carried into the batched world): if the worker dies
mid-batch the single ``xcall`` raises
:class:`~repro.xpc.errors.XPCPeerDiedError` after kernel repair — but
the ring *persists*, because it lives in the client's relay segment.
Completions the worker pushed before dying are harvested normally;
submissions the dead worker consumed without completing are re-pushed;
untouched SQEs simply remain queued.  With a supervisor-backed entry
supplier (see :class:`~repro.aio.pool.WorkerPool`) the retry lands on
the restarted worker and no request is lost.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Union

import repro.obs as obs
from repro.hw.cpu import Core
from repro.kernel.kernel import BaseKernel
from repro.kernel.process import Thread
from repro.runtime.xpclib import xpc_call
from repro.xpc.errors import (InvalidXEntryError, XPCError,
                              XPCPeerDiedError)
from repro.xpc.relayseg import NO_MASK
from repro.aio.backpressure import AdmissionController
from repro.aio.ring import SQE_OK, XPCRing, XPCRingFullError


class XPCRequestError(XPCError):
    """One request in a batch failed inside the service handler."""

    def __init__(self, reply_meta: tuple) -> None:
        self.reply_meta = reply_meta
        super().__init__(f"request failed: {reply_meta!r}")


class XPCFuture:
    """Completion handle for one submitted request."""

    def __init__(self, meta: tuple, payload: bytes, reply_capacity: int,
                 submit_cycle: int,
                 arrival_cycle: Optional[int] = None) -> None:
        self.meta = meta
        self.payload = payload
        self.reply_capacity = reply_capacity
        self.submit_cycle = submit_cycle
        #: Open-loop workloads stamp the request's *arrival* time here;
        #: latency is then measured from arrival, not from submit.
        self.arrival_cycle = arrival_cycle
        self.complete_cycle: Optional[int] = None
        self.seq: Optional[int] = None
        self.done = False
        self._reply_meta: Optional[tuple] = None
        self._reply: bytes = b""
        self._error: Optional[BaseException] = None

    def result(self):
        """(reply_meta, reply_bytes); raises if failed or pending."""
        if not self.done:
            raise XPCError("future is still pending — flush the batcher")
        if self._error is not None:
            raise self._error
        return self._reply_meta, self._reply

    @property
    def latency_base(self) -> int:
        return (self.arrival_cycle if self.arrival_cycle is not None
                else self.submit_cycle)

    def _resolve(self, reply_meta: tuple, reply: bytes) -> None:
        self._reply_meta, self._reply = reply_meta, reply
        self.done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.done = True


class Batcher:
    """Accumulate requests into a ring; cross the boundary once."""

    def __init__(self, kernel: BaseKernel, core: Core,
                 client_thread: Thread,
                 entry_id: Union[int, Callable[[], int]],
                 seg_bytes: int = 256 * 1024,
                 entries: int = 64,
                 max_batch: int = 16,
                 max_wait_cycles: Optional[int] = None,
                 admission: Optional[AdmissionController] = None,
                 name: str = "aio",
                 on_complete: Optional[Callable[[XPCFuture], None]] = None,
                 max_flush_retries: int = 3) -> None:
        self.kernel = kernel
        self.core = core
        self.client_thread = client_thread
        self._entry = entry_id
        self.max_batch = max_batch
        self.max_wait_cycles = max_wait_cycles
        self.admission = admission
        self.name = name
        self.on_complete = on_complete
        self.max_flush_retries = max_flush_retries
        seg, slot = kernel.create_relay_seg(
            core, client_thread.process, seg_bytes)
        client_thread.process.seg_list.drop(slot)
        kernel.install_relay_seg(client_thread, seg)
        self.seg = seg
        self.ring = XPCRing.format(core, kernel.machine.memory, seg,
                                   entries=entries, name=name)
        self._pending: "OrderedDict[int, XPCFuture]" = OrderedDict()
        self._oldest_cycle: Optional[int] = None
        self.flushes = 0
        self.completed = 0

    # -- introspection -------------------------------------------------
    @property
    def backlog(self) -> int:
        return len(self._pending)

    def entry_id(self) -> int:
        return self._entry() if callable(self._entry) else self._entry

    # -- submission ----------------------------------------------------
    def submit(self, meta: tuple, payload: bytes = b"",
               reply_capacity: int = 0,
               arrival_cycle: Optional[int] = None) -> XPCFuture:
        """Queue one request; returns its future.

        Flushes first when the deadline (``max_wait_cycles`` since the
        oldest pending submit) has passed, and after pushing when the
        batch reaches ``max_batch``."""
        core = self.core
        if self.admission is not None:
            self.admission.admit(core, drain_hook=self.flush)
        if (self.max_wait_cycles is not None and self._pending
                and core.cycles - self._oldest_cycle >= self.max_wait_cycles):
            self.flush()
        future = XPCFuture(meta, bytes(payload), reply_capacity,
                           submit_cycle=core.cycles,
                           arrival_cycle=arrival_cycle)
        try:
            self._push(future)
        except XPCRingFullError:
            # One shot at making room: drain what is in flight, retry.
            self.flush()
            try:
                self._push(future)
            except XPCRingFullError:
                if self.admission is not None:
                    self.admission.release(core)
                raise
        if len(self._pending) >= self.max_batch:
            self.flush()
        return future

    def _push(self, future: XPCFuture) -> None:
        seq = self.ring.push_sqe(self.core, future.meta, future.payload,
                                 future.reply_capacity)
        future.seq = seq
        self._pending[seq] = future
        if self._oldest_cycle is None:
            self._oldest_cycle = self.core.cycles

    def take_pending(self, seq: int) -> Optional[XPCFuture]:
        """Remove and return a not-yet-flushed future (steal support);
        its SQE must already have been popped from this ring."""
        future = self._pending.pop(seq, None)
        if not self._pending:
            self._oldest_cycle = None
        return future

    def adopt(self, future: XPCFuture) -> None:
        """Push a future stolen from another batcher into our ring.
        The admission slot follows the request — the victim released
        nothing, so a shared controller's count stays accurate."""
        self._push(future)
        if len(self._pending) >= self.max_batch:
            self.flush()

    # -- the single boundary crossing ----------------------------------
    def flush(self) -> int:
        """Hand the ring over (one ``xcall``), harvest completions.

        Returns the number of requests completed.  Worker death is
        retried up to ``max_flush_retries`` times against the (possibly
        supervisor-refreshed) entry id; requests that still cannot be
        served fail their futures with ``XPCPeerDiedError``."""
        completed = 0
        attempts = 0
        while self._pending:
            entry = self.entry_id()
            self.kernel.run_thread(self.core, self.client_thread)
            try:
                # NO_MASK explicitly: the seg-mask register persists
                # across calls, and the worker must see the whole ring.
                xpc_call(self.core, entry, len(self._pending),
                         mask=NO_MASK, kernel=self.kernel)
            except (XPCPeerDiedError, InvalidXEntryError):
                # Peer died mid-drain, or was already dead when we
                # called (its x-entry invalidated by §4.2 teardown) —
                # either way: harvest what survived, re-resolve the
                # entry id (a supervisor hands back the restarted
                # generation), and retry the remainder.
                completed += self._harvest()
                attempts += 1
                if attempts > self.max_flush_retries:
                    self._fail_pending(entry)
                    break
                self._requeue_consumed()
                continue
            self.flushes += 1
            completed += self._harvest()
            if self._pending:
                # The worker drained fewer than we submitted (bounded
                # max_drain): call again for the remainder.
                attempts += 1
                if attempts > self.max_flush_retries:
                    self._fail_pending(entry)
                    break
        if not self._pending and self.ring.sq_head == self.ring.sq_tail:
            self.ring.reset(self.core)
        return completed

    def wait_all(self, futures: Optional[List[XPCFuture]] = None) -> list:
        """Flush until the given futures (default: all pending ones)
        are done; returns their ``result()`` values in order."""
        futures = list(futures) if futures is not None else list(
            self._pending.values())
        self.flush()
        return [f.result() for f in futures]

    # -- harvest / recovery --------------------------------------------
    def _harvest(self) -> int:
        core = self.core
        n = 0
        while True:
            cqe = self.ring.pop_cqe(core)
            if cqe is None:
                break
            future = self._pending.pop(cqe.seq, None)
            if future is None:
                continue
            reply_meta = self.ring.read_reply_meta(cqe)
            if cqe.status == SQE_OK:
                future._resolve(reply_meta,
                                self.ring.read_bytes(cqe.rdata_off,
                                                     cqe.rdata_len))
            else:
                future._fail(XPCRequestError(reply_meta))
            future.complete_cycle = core.cycles
            self.completed += 1
            n += 1
            if self.admission is not None:
                self.admission.release(core)
            if obs.ACTIVE is not None:
                obs.ACTIVE.registry.histogram(
                    "aio.req_latency_cycles").observe(
                        core.cycles - future.latency_base,
                        cycle=core.cycles)
            if self.on_complete is not None:
                self.on_complete(future)
        if not self._pending:
            self._oldest_cycle = None
        return n

    def _requeue_consumed(self) -> None:
        """Re-push pending requests whose SQE the dead worker consumed
        without completing; untouched SQEs stay queued as they are."""
        consumed_below = self.ring.sq_head
        lost = [f for f in self._pending.values()
                if f.seq is not None and f.seq < consumed_below]
        for future in lost:
            del self._pending[future.seq]
            try:
                self._push(future)
            except XPCRingFullError as exc:
                future._fail(exc)
                if self.admission is not None:
                    self.admission.release(self.core)

    def _fail_pending(self, entry: int) -> None:
        for future in self._pending.values():
            future._fail(XPCPeerDiedError(entry))
            if self.admission is not None:
                self.admission.release(self.core)
        self._pending.clear()
        self._oldest_cycle = None

    def close(self) -> None:
        """Tear the ring's segment down (pending futures must be done)."""
        if self._pending:
            raise XPCError(f"{self.name}: close with "
                           f"{len(self._pending)} requests pending")
        self.kernel.deactivate_relay_seg(self.client_thread)
        if self.seg in self.kernel.relay_segments:
            self.kernel.free_relay_seg(self.core, self.seg)
