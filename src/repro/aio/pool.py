"""Multi-core worker pools draining submission rings.

One :class:`WorkerPool` spreads batched requests over W workers, each
pinned to one core of the existing :class:`~repro.hw.machine.Machine`
multi-core model: worker *i* owns a submitter thread, a ring +
:class:`~repro.aio.batch.Batcher`, and a supervised
:class:`~repro.aio.server.RingService` process.  The migrating-thread
model carries over — a worker's drain runs on the submitting core — so
pool throughput is wall-clocked exactly like the multicore benchmarks:
``max(core.cycles)`` across the pool.

Dispatch policies:

* ``"sharded"`` — round-robin over per-core rings; no coordination
  cost, but a slow request convoys its shard.
* ``"steal"`` — dispatch to the earliest-available core (the classic
  shared-queue/work-stealing bound); a request landing off its home
  shard charges a ``cacheline_transfer`` for bouncing the ring line.

Independently of the dispatch policy, :meth:`migrate_backlog` moves
queued-but-unflushed submissions between rings through the ring API,
charging real copy costs — the explicit steal used when one shard backs
up behind a stall.

Each worker's process runs under a :class:`ServiceSupervisor`; after an
``aio.worker_death`` injection the batcher's entry-id supplier resolves
to the restarted generation and unfinished submissions are re-driven
(drain-and-restart recovery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import repro.obs as obs
from repro.hw.cpu import Core
from repro.ipc.transport import Handler
from repro.kernel.kernel import BaseKernel
from repro.runtime.supervisor import (ConstRef, EntryRef, RestartPolicy,
                                      ServiceSupervisor)
from repro.runtime.xpclib import ExhaustionPolicy
from repro.aio.backpressure import AdmissionController
from repro.aio.batch import Batcher, XPCFuture
from repro.aio.server import RingService

POLICIES = ("sharded", "steal")


def forecast_completions(arrivals: Sequence[int], costs: Sequence[int],
                         workers: int = 1):
    """Opt-in fast stepping for open-loop sweep *planning*.

    Predicts per-request completion cycles and the pool makespan for an
    open-loop arrival stream on an idealized W-worker pool, using the
    table-driven fast core (vectorized when numpy is available) instead
    of standing up machines.  Intended for sweep planning — choosing
    worker counts / arrival rates worth simulating — never for
    results: benchmark numbers still come from real :class:`WorkerPool`
    runs on the reference engine.  Returns ``(completions, wall)``.
    """
    from repro.fastcore.batch import open_loop_completions
    return open_loop_completions(arrivals, costs, workers=workers)


@dataclass
class _Worker:
    index: int
    core: Core
    client_thread: object
    supervisor: ServiceSupervisor
    service_name: str
    batcher: Batcher

    @property
    def backlog(self) -> int:
        return self.batcher.backlog


class _WorkerFactory:
    """The supervised RingService factory for one worker.

    An object, not a closure, so a snapshot's deepcopy re-points it at
    the copied pool (whose config it reads at restart time) instead of
    leaving cells aliasing the pre-snapshot world.
    """

    def __init__(self, pool: "WorkerPool", service_name: str) -> None:
        self.pool = pool
        self.service_name = service_name

    def __call__(self, kernel, core, thread) -> RingService:
        pool = self.pool
        return RingService(
            kernel, core, thread, pool.handler, name=self.service_name,
            max_contexts=pool.max_contexts, policy=pool.exhaustion,
            partial_context=pool.partial_context,
            serve_context=pool.serve_context)


class _PoolCompletion:
    """Per-worker completion callback (class for the same snapshot
    reason as :class:`_WorkerFactory`)."""

    def __init__(self, pool: "WorkerPool", index: int) -> None:
        self.pool = pool
        self.index = index

    def __call__(self, future: XPCFuture) -> None:
        self.pool._completed(self.index, future)


class WorkerPool:
    """W supervised ring-drain workers behind one submit() front door."""

    def __init__(self, kernel: BaseKernel, handler: Handler,
                 cores: Sequence[Core],
                 name: str = "aio",
                 policy: str = "sharded",
                 max_batch: int = 16,
                 max_wait_cycles: Optional[int] = None,
                 entries: int = 128,
                 seg_bytes: int = 512 * 1024,
                 max_contexts: int = 8,
                 partial_context: bool = False,
                 exhaustion: ExhaustionPolicy = ExhaustionPolicy.FAIL,
                 admission: Optional[AdmissionController] = None,
                 restart_policy: Optional[RestartPolicy] = None,
                 serve_context: Optional[Callable] = None,
                 slo=None) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown pool policy {policy!r} "
                             f"(choose from {POLICIES})")
        if not cores:
            raise ValueError("worker pool needs at least one core")
        self.kernel = kernel
        self.name = name
        self.policy = policy
        self.admission = admission
        #: Duck-typed SLO signal source (``signal(now_cycles) ->
        #: {"scale_up": ..., "scale_down": ...}``, e.g. a
        #: ``repro.prof.slo.SLOEngine``) consulted by :meth:`autoscale`.
        #: Duck typing keeps the layering pointing prof -> aio.
        self.slo = slo
        self.handler = handler
        self.max_contexts = max_contexts
        self.partial_context = partial_context
        self.exhaustion = exhaustion
        self.serve_context = serve_context
        self.client_process = kernel.create_process(f"{name}-clients")
        self.workers: List[_Worker] = []
        self.submitted = 0
        self.completed = 0
        self.stolen = 0
        self.scale_events = 0
        self._rr = 0
        self.active_workers = len(cores)
        for index, core in enumerate(cores):
            client_thread = kernel.create_thread(self.client_process)
            kernel.run_thread(core, client_thread)
            supervisor = ServiceSupervisor(kernel, core,
                                           policy=restart_policy)
            service_name = f"{name}-w{index}"
            supervisor.supervise(
                service_name, _WorkerFactory(self, service_name),
                grants=[ConstRef(client_thread)])
            batcher = Batcher(
                kernel, core, client_thread,
                entry_id=EntryRef(supervisor, service_name),
                entries=entries, seg_bytes=seg_bytes,
                max_batch=max_batch, max_wait_cycles=max_wait_cycles,
                admission=admission, name=service_name,
                on_complete=_PoolCompletion(self, index))
            self.workers.append(_Worker(
                index=index, core=core, client_thread=client_thread,
                supervisor=supervisor, service_name=service_name,
                batcher=batcher))

    # -- dispatch ------------------------------------------------------
    def _pick(self) -> _Worker:
        active = self.workers[:self.active_workers]
        home = active[self._rr % len(active)]
        self._rr += 1
        if self.policy == "sharded":
            return home
        # "steal": the request goes to the earliest-available core;
        # leaving the home shard bounces the ring's cache line.
        chosen = min(active, key=lambda w: w.core.cycles)
        if chosen is not home:
            self.stolen += 1
            chosen.core.tick(
                self.kernel.params.cacheline_transfer)
        return chosen

    def submit(self, meta: tuple, payload: bytes = b"",
               reply_capacity: int = 0,
               arrival_cycle: Optional[int] = None) -> XPCFuture:
        """Queue one request on a worker chosen by the pool policy.

        In open-loop workloads *arrival_cycle* stamps when the request
        entered the system: an idle worker core fast-forwards to it (a
        core cannot serve a request before it arrives), and latency is
        measured from it."""
        worker = self._pick()
        if (arrival_cycle is not None
                and worker.core.cycles < arrival_cycle):
            worker.core.tick(arrival_cycle - worker.core.cycles)
        self.submitted += 1
        return worker.batcher.submit(meta, payload, reply_capacity,
                                     arrival_cycle=arrival_cycle)

    def drain(self) -> int:
        """Flush every worker's batcher; returns completions."""
        done = 0
        for worker in self.workers:
            done += worker.batcher.flush()
            if obs.ACTIVE is not None:
                obs.ACTIVE.registry.gauge(
                    f"aio.backlog.{worker.service_name}").set(
                        worker.backlog, cycle=worker.core.cycles)
        return done

    def wait_all(self, futures: Sequence[XPCFuture]) -> list:
        self.drain()
        return [f.result() for f in futures]

    # -- explicit stealing ---------------------------------------------
    def migrate_backlog(self, src: int, dst: int,
                        max_n: Optional[int] = None) -> int:
        """Move up to *max_n* queued submissions from worker *src*'s
        ring to worker *dst*'s — through the ring API, with real costs:
        the thief pops the victim's SQEs (the client owns its ring
        between flushes) and re-stages payload bytes into its own arena
        (a genuine copy, unlike the zero-copy fast path)."""
        victim, thief = self.workers[src], self.workers[dst]
        moved = 0
        while ((max_n is None or moved < max_n)
               and victim.batcher.backlog > 0):
            sqe = victim.batcher.ring.pop_sqe(victim.core)
            if sqe is None:
                break
            future = victim.batcher.take_pending(sqe.seq)
            if future is None:
                continue
            thief.core.tick(self.kernel.params.copy_cycles(
                len(future.payload)))
            thief.batcher.adopt(future)
            moved += 1
        self.stolen += moved
        if moved and obs.ACTIVE is not None:
            obs.ACTIVE.registry.counter(
                f"aio.migrated.{self.name}").inc(
                    moved, cycle=thief.core.cycles)
        return moved

    # -- SLO-driven autoscaling ----------------------------------------
    def scale_to(self, n: int) -> int:
        """Set the active worker count to *n* (clamped to the pool).

        Workers past the new watermark stop receiving dispatches;
        their queued-but-unflushed backlog migrates to active workers
        through :meth:`migrate_backlog` (real ring-pop + copy costs),
        so nothing queued is stranded.  Scaling up simply widens the
        dispatch set — the cores were provisioned at construction.
        """
        n = max(1, min(n, len(self.workers)))
        if n == self.active_workers:
            return n
        if n < self.active_workers:
            for idx in range(n, self.active_workers):
                dst = idx % n
                while self.workers[idx].batcher.backlog > 0:
                    if not self.migrate_backlog(idx, dst):
                        break
        self.active_workers = n
        self.scale_events += 1
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.gauge(
                f"aio.active_workers.{self.name}").set(
                    n, cycle=self.wall_cycles)
        return n

    def autoscale(self, now_cycles: Optional[int] = None) -> int:
        """One autoscaling step driven by the pool's SLO signal.

        Consults ``self.slo.signal(now)`` (duck-typed; see ``slo`` in
        the constructor): a breaching objective adds a worker, a fully
        clean burn window retires one.  Returns the active count.
        """
        if self.slo is None:
            return self.active_workers
        now = self.wall_cycles if now_cycles is None else now_cycles
        signal = self.slo.signal(now)
        if signal.get("scale_up"):
            return self.scale_to(self.active_workers + 1)
        if signal.get("scale_down"):
            return self.scale_to(self.active_workers - 1)
        return self.active_workers

    # -- instrumentation ----------------------------------------------
    def _completed(self, index: int, future: XPCFuture) -> None:
        self.completed += 1
        worker = self.workers[index]
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.counter(
                f"aio.completed.{worker.service_name}").inc(
                    cycle=worker.core.cycles)
            obs.ACTIVE.pmu.add(worker.core, "aio.completions", 1)

    def stats(self) -> dict:
        """Per-worker drain/backlog snapshot (uncharged)."""
        out = {}
        for worker in self.workers:
            service = worker.supervisor.service(worker.service_name)
            out[worker.service_name] = {
                "core_cycles": worker.core.cycles,
                "backlog": worker.backlog,
                "drained": getattr(service, "drained", 0),
                "failed": getattr(service, "failed", 0),
                "flushes": worker.batcher.flushes,
                "completed": worker.batcher.completed,
                "restarts": worker.supervisor.status(
                    worker.service_name).restarts,
            }
        return out

    @property
    def wall_cycles(self) -> int:
        """Pool wall-clock: the busiest core's cycle count."""
        return max(w.core.cycles for w in self.workers)
