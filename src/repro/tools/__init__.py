"""Command-line tools: the evaluation report generator."""
