"""Render ``benchmarks/results.json`` as a readable evaluation report.

Usage::

    python -m repro.tools.report [path/to/results.json]

The benchmark suite (``pytest benchmarks/ --benchmark-only``) writes
paper-vs-measured data for every table and figure; this tool prints a
consolidated report of the whole reproduction in one place.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any

from repro.analysis import render_table

#: Presentation order + captions for the experiments.
SECTIONS = [
    ("table1", "Table 1 — seL4 one-way IPC breakdown"),
    ("figure5", "Figure 5 — XPC optimization ladder"),
    ("table3", "Table 3 — XPC instruction cycles"),
    ("figure1a", "Figure 1(a) — CPU time spent on IPC"),
    ("figure1b", "Figure 1(b) — IPC time CDF on YCSB-E"),
    ("figure6_same_core", "Figure 6 — one-way call, same core"),
    ("figure6_cross_core", "Figure 6 — one-way call, cross core"),
    ("figure7ab", "Figure 7(a,b) — FS read/write throughput"),
    ("figure7c", "Figure 7(c) — TCP throughput"),
    ("figure8a", "Figure 8(a) — Sqlite3 on Zircon"),
    ("figure8b", "Figure 8(b) — Sqlite3 on seL4"),
    ("figure8c", "Figure 8(c) — HTTP server"),
    ("figure9a", "Figure 9(a) — Binder buffer latency"),
    ("figure9b", "Figure 9(b) — Binder ashmem latency"),
    ("table4", "Table 4 — gem5 configuration"),
    ("table5", "Table 5 — IPC cost in ARM"),
    ("table6", "Table 6 — FPGA resource cost"),
    ("table7", "Table 7 — mechanism comparison"),
    ("table7_chain", "Table 7+ — 3-hop chain cost per mechanism"),
    ("ablation_optimizations", "Ablation — optimizations in isolation"),
    ("ablation_cap_scalability", "Ablation — bitmap vs radix cap"),
    ("ablation_relay_pagetable", "Ablation — relay page table"),
    ("ablation_handover", "Ablation — handover vs staging"),
    ("ablation_policies", "Ablation — exhaustion policies"),
]


def _flatten(value: Any, prefix: str = ""):
    """Yield (path, leaf) pairs for nested dicts."""
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _flatten(child, path)
    else:
        yield prefix, value


def render_section(key: str, caption: str, data: Any) -> str:
    rows = [[path, leaf] for path, leaf in _flatten(data)]
    return render_table(caption, ["metric", "value"], rows)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else os.path.join(
        os.path.dirname(__file__), "..", "..", "..", "benchmarks",
        "results.json")
    path = os.path.abspath(path)
    if not os.path.exists(path):
        print(f"no results at {path}; run "
              "`pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 1
    with open(path) as fh:
        results = json.load(fh)
    print("XPC reproduction — consolidated evaluation report")
    print("=" * 52)
    print(f"source: {path}\n")
    known = set()
    for key, caption in SECTIONS:
        if key in results:
            known.add(key)
            print(render_section(key, caption, results[key]))
            print()
    extra = sorted(set(results) - known)
    for key in extra:
        print(render_section(key, f"(uncategorized) {key}",
                             results[key]))
        print()
    print(f"{len(known) + len(extra)} experiments reported.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
