"""The kernel-neutral XPC transport.

Both microkernel ports in the paper (seL4-XPC and Zircon-XPC, §5.1) end
up with the same data plane: servers register x-entries through the XPC
library, clients hold relay segments and ``xcall`` directly.  What
differs is the surrounding library (Zircon keeps its FIDL-flavoured
wrapper, charged as a small per-call overhead).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import repro.faults as faults
import repro.obs as obs
import repro.san as san
from repro.hw.cpu import Core
from repro.ipc.transport import RelayPayload, ServerRegistration, Transport
from repro.kernel.kernel import BaseKernel
from repro.kernel.process import Thread
from repro.runtime.xpclib import XPCService, xpc_call
from repro.xpc.relayseg import NO_MASK, SegMask


class _RelayHandlerBridge:
    """Adapts a registered ``(meta, payload)`` handler to the engine's
    call convention.  An object rather than a closure on purpose:
    snapshots (:mod:`repro.snap`) deepcopy the transport graph, and
    instance attributes follow the copy, where a closure's cells would
    keep aliasing the pre-snapshot machine's memory."""

    def __init__(self, transport: "XPCTransport",
                 reg: ServerRegistration) -> None:
        self.transport = transport
        self.reg = reg

    def __call__(self, call):
        transport = self.transport
        mem = transport.kernel.machine.memory
        used, meta = call.args
        payload = RelayPayload(mem, call.window, used)
        handler_start = call.core.cycles
        reply_meta, reply = self.reg.handler(meta, payload)
        transport._handler_acc += call.core.cycles - handler_start
        if reply is None:
            reply_len = 0
        elif isinstance(reply, int):
            reply_len = reply           # already written in place
        else:
            payload.write(reply, 0)     # reply goes into the segment
            reply_len = len(reply)
        return (reply_meta, reply_len)


class XPCTransport(Transport):
    """xcall/xret + relay-seg request/response on any BaseKernel."""

    name = "XPC"
    #: Per-call user-library overhead beyond the XPC runtime itself
    #: (e.g. Zircon's FIDL-compatible wrapper), in cycles.
    lib_overhead = 0

    __snap_state__ = Transport.__snap_state__ + (
        "kernel", "core", "client_thread", "partial_context",
        "max_contexts", "_xpc_services", "_seg", "_seg_bytes",
        "_handler_acc", "_nested_segs")

    def __init__(self, kernel: BaseKernel, core: Core,
                 client_thread: Thread,
                 default_seg_bytes: int = 64 * 1024,
                 partial_context: bool = False,
                 max_contexts: int = 8) -> None:
        super().__init__()
        self.kernel = kernel
        self.core = core
        self.client_thread = client_thread
        self.partial_context = partial_context
        self.max_contexts = max_contexts
        self._xpc_services: Dict[int, XPCService] = {}
        self._seg = None          # (RelaySegment, seg_list_slot)
        self._seg_bytes = default_seg_bytes
        self._handler_acc = 0     # cycles spent inside user handlers
        #: Per-runtime-context scratch segments for nested onward calls,
        #: keyed by the context's cap bitmap *object* (identity survives
        #: a snapshot's deepcopy; a raw ``id()`` key would not).
        self._nested_segs: Dict[object, tuple] = {}

    # -- server side -------------------------------------------------------
    def _bind(self, reg: ServerRegistration) -> None:
        # Register while running a server thread so the x-entry lands in
        # the server's address space.
        self.kernel.run_thread(self.core, reg.server_thread)
        service = XPCService(
            self.kernel, self.core, reg.server_thread,
            _RelayHandlerBridge(self, reg),
            max_contexts=self.max_contexts,
            partial_context=self.partial_context, name=reg.name,
        )
        self.kernel.grant_xcall_cap(
            self.core, reg.server_process, self.client_thread,
            service.entry_id)
        self._xpc_services[reg.sid] = service
        self.kernel.run_thread(self.core, self.client_thread)

    # -- client side -------------------------------------------------------
    def _ensure_seg(self, nbytes: int) -> None:
        """Grow the client's active relay segment to >= nbytes.

        Also the recovery path for §4.4 revocation: a segment the
        kernel revoked mid-workload is detected here and replaced with
        a fresh one, so the next call after a revocation heals itself.
        """
        needed = max(nbytes, 4096)
        thread = self.client_thread
        if self._seg is not None and self._seg[0].revoked:
            old_seg, _old_slot = self._seg
            self.kernel.deactivate_relay_seg(thread)
            if old_seg in self.kernel.relay_segments:
                self.kernel.free_relay_seg(self.core, old_seg)
            self._seg = None
        if self._seg is not None and self._seg[0].length >= needed:
            return
        if self._seg is not None:
            old_seg, old_slot = self._seg
            self.kernel.deactivate_relay_seg(thread)
            thread.process.seg_list.drop(old_slot)
            self.kernel.free_relay_seg(self.core, old_seg)
        size = max(needed, self._seg_bytes)
        seg, slot = self.kernel.create_relay_seg(
            self.core, thread.process, size)
        # First-time kernel setup: install directly as the seg-reg.
        thread.process.seg_list.drop(slot)
        self.kernel.install_relay_seg(thread, seg)
        self._seg = (seg, slot)

    def grant_to_thread(self, sid: int, thread: Thread) -> None:
        """Grant another server's thread the xcall-cap for *sid* (for
        server→server chains: FS → blockdev, HTTP → AES, ...)."""
        reg = self._reg(sid)
        service = self._xpc_services[sid]
        self.kernel.grant_xcall_cap(
            self.core, reg.server_process, thread, service.entry_id)

    def revoke_from_thread(self, sid: int, thread: Thread) -> None:
        """Clear *thread*'s xcall-cap bit for *sid*: the next call trips
        the engine's cap test (§3.2), not a library-level check."""
        self._reg(sid)
        service = self._xpc_services[sid]
        self.kernel.revoke_xcall_cap(thread, service.entry_id)

    def call(self, sid: int, meta: tuple = (), payload: bytes = b"",
             reply_capacity: int = 0,
             cross_core: bool = False,
             window_slice=None) -> Tuple[tuple, bytes]:
        service = self._xpc_services[sid]
        self.call_count += 1
        self.bytes_moved += len(payload)
        span = None
        obs_core = self.current_core
        if obs.ACTIVE is not None:
            span = obs.ACTIVE.spans.begin(
                obs_core, f"call:{service.name}", cat="transport",
                sid=sid, bytes=len(payload))
            obs.ACTIVE.registry.histogram(
                "transport.payload_bytes").observe(
                    len(payload), cycle=obs_core.cycles)
        try:
            return self._call(service, meta, payload, reply_capacity,
                              window_slice)
        finally:
            if span is not None and obs.ACTIVE is not None:
                obs.ACTIVE.spans.end(obs_core, span)

    def _call(self, service: XPCService, meta: tuple, payload: bytes,
              reply_capacity: int, window_slice) -> Tuple[tuple, bytes]:
        # The core actually executing this call: the home core on the
        # synchronous path, the *worker's* core when a handler invoked
        # from a batched ring drain calls onward — its engine (not the
        # home core's) holds the mid-call state the nested path needs.
        core = self.current_core
        engine = core.xpc_engine
        if self.lib_overhead:
            core.tick(self.lib_overhead)
        nested = (engine is not None and engine.state is not None
                  and engine.state.link_stack.depth > 0)
        start = core.cycles
        handlers_before = self._handler_acc
        if nested:
            # We are *inside* a migrated call (a server calling onward):
            # do not rebind threads or touch the client's segment.
            result = self._nested_call(core, engine, service, meta,
                                       payload, reply_capacity,
                                       window_slice)
            # This nested call's mechanism time: everything except the
            # inner handler.  The *enclosing* call already excludes all
            # of it via its own handler-span measurement, so counting
            # it here is the only place it lands in ipc_cycles.
            self.ipc_cycles += ((core.cycles - start)
                                - (self._handler_acc - handlers_before))
            return result
        mem = self.kernel.machine.memory
        self.kernel.run_thread(core, self.client_thread)
        window_bytes = max(len(payload), reply_capacity)
        self._ensure_seg(window_bytes)
        if (faults.ACTIVE is not None
                and faults.fire("xpc.relayseg.revoke") is not None):
            # Injected §4.4 revocation of the client's active segment:
            # this call fails (the window stops translating); the next
            # call's _ensure_seg builds a replacement.
            self.kernel.revoke_relay_seg(self._seg[0])
        seg = self._seg[0]
        if payload:
            # The client *produces* the message directly in the relay
            # segment (paper Listing 1: "fill relay-seg with argument").
            # Not a copy — but the store stream allocates cache lines.
            mem.write(seg.pa_base, payload)
            if san.ACTIVE is not None:
                san.ACTIVE.access(core, seg, "relay-seg",
                                  "ipc.xpc_transport.fill", "write")
            core.tick(int(len(payload)
                          * self.kernel.params.relay_fill_per_byte))
        masked = _round_page(window_bytes)
        mask = (SegMask(0, masked) if window_bytes and masked < seg.length
                else NO_MASK)
        # Migrating-thread model: cross-core calls run the server's code
        # on the client's core, so nothing extra is charged (§5.2).
        reply_meta, reply_len = xpc_call(
            core, service.entry_id, len(payload), meta,
            mask=mask, kernel=self.kernel)
        reply = mem.read(seg.pa_base, reply_len) if reply_len else b""
        self.ipc_cycles += ((core.cycles - start)
                            - (self._handler_acc - handlers_before))
        return reply_meta, reply

    # -- nested (server → server) calls --------------------------------------
    def _nested_call(self, core: Core, engine, service: XPCService,
                     meta: tuple, payload: bytes, reply_capacity: int,
                     window_slice) -> Tuple[tuple, bytes]:
        """Call onward from inside a handler (paper §3.3 Figure 3).

        With ``window_slice`` the current window is simply re-masked and
        handed over (the §4.4 sliding window — zero copies).  Otherwise
        the handler parks the caller's window with ``swapseg``, stages
        the request in its own scratch segment (one copy), calls, and
        swaps back.  *core* is the core whose engine is mid-call.
        """
        mem = self.kernel.machine.memory
        state = engine.state
        if window_slice is not None and state.seg_reg.valid:
            offset, length = window_slice
            base_pa = state.seg_reg.pa_base + offset
            reply_meta, reply_len = xpc_call(
                core, service.entry_id, length, meta,
                mask=SegMask(offset, length), kernel=self.kernel)
            reply = mem.read(base_pa, reply_len) if reply_len else b""
            return reply_meta, reply
        seg, slot = self._nested_seg(core, engine,
                                     max(len(payload), reply_capacity))
        engine.swapseg(slot)  # park the caller's window, load scratch
        try:
            if payload:
                mem.write(seg.pa_base, payload)
                if san.ACTIVE is not None:
                    san.ACTIVE.access(core, seg, "relay-seg",
                                      "ipc.xpc_transport.stage", "write")
                # Staging into the scratch segment is a real copy.
                core.tick(self.kernel.params.copy_cycles(len(payload)))
            window_bytes = max(len(payload), reply_capacity)
            masked = _round_page(max(window_bytes, 1))
            mask = (SegMask(0, masked) if masked < seg.length
                    else NO_MASK)
            reply_meta, reply_len = xpc_call(
                core, service.entry_id, len(payload), meta,
                mask=mask, kernel=self.kernel)
            reply = mem.read(seg.pa_base, reply_len) if reply_len else b""
        finally:
            engine.swapseg(slot)  # restore the caller's window
        return reply_meta, reply

    def _nested_seg(self, core: Core, engine, nbytes: int):
        """Scratch relay segment for the current runtime state."""
        state = engine.state
        key = state.cap_bitmap
        needed = max(_round_page(max(nbytes, 1)), 4096)
        seg_slot = self._nested_segs.get(key)
        if seg_slot is not None and seg_slot[0].length >= needed:
            return seg_slot
        process = self._process_of_seg_list(state.seg_list)
        if seg_slot is not None:
            old_seg, old_slot = seg_slot
            process.seg_list.drop(old_slot)
            self.kernel.free_relay_seg(core, old_seg)
        size = max(needed, 64 * 1024)
        seg, slot = self.kernel.create_relay_seg(core, process, size)
        self._nested_segs[key] = (seg, slot)
        return seg, slot

    def _process_of_seg_list(self, seg_list):
        for process in self.kernel.processes:
            if process.seg_list is seg_list:
                return process
        raise RuntimeError("current seg-list belongs to no known process")


def _round_page(n: int) -> int:
    return (n + 4095) & ~4095
