"""Kernel-neutral IPC transport layer.

The paper evaluates the *same* user-level services (file system, network
stack, SQLite, HTTP server) on five systems: seL4, seL4-XPC, Zircon,
Zircon-XPC, and Android Binder / Binder-XPC.  This package defines the
transport interface those services are written against, so each service
is implemented once and measured on every kernel personality.
"""

from repro.ipc.transport import (
    Transport, Payload, CopiedPayload, RelayPayload, ServerRegistration,
)
from repro.ipc.xpc_transport import XPCTransport

__all__ = [
    "Transport", "Payload", "CopiedPayload", "RelayPayload",
    "ServerRegistration", "XPCTransport",
]
