"""The transport interface user-level services are written against.

A service registers a handler::

    def handler(meta: tuple, payload: Payload) -> (tuple, bytes | None)

and clients invoke::

    reply_meta, reply_bytes = transport.call(sid, meta, payload_bytes)

The *mechanism cost* — traps, scheduling, message copies — is charged by
the concrete transport (seL4 fast/slow path, Zircon channels, XPC
xcall/relay-seg).  Payload *contents* always live in simulated physical
memory; with XPC the handler's :class:`RelayPayload` aliases the caller's
bytes (zero-copy), while baseline transports hand over a
:class:`CopiedPayload` produced by real kernel copies.

``meta`` models the register-passed part of a message (method ids, small
scalars); it is free in every system, like the ≤32-byte register fast
path in seL4.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

Handler = Callable[[tuple, "Payload"], Tuple[tuple, Optional[bytes]]]


class Payload(abc.ABC):
    """Read/write view of a request's bulk data inside a handler."""

    @abc.abstractmethod
    def read(self, n: int = -1, offset: int = 0) -> bytes:
        """Read *n* bytes (all remaining if -1) starting at *offset*."""

    @abc.abstractmethod
    def write(self, data: bytes, offset: int = 0) -> None:
        """Write reply bytes in place (XPC) or into the reply copy."""

    @abc.abstractmethod
    def __len__(self) -> int:
        ...


class CopiedPayload(Payload):
    """Baseline payload: the kernel already copied it into our space."""

    def __init__(self, data: bytes, reply_capacity: int = 0) -> None:
        self._data = bytearray(data)
        self._reply_capacity = max(reply_capacity, len(data))

    def read(self, n: int = -1, offset: int = 0) -> bytes:
        if n < 0:
            n = len(self._data) - offset
        return bytes(self._data[offset:offset + n])

    def write(self, data: bytes, offset: int = 0) -> None:
        end = offset + len(data)
        if end > len(self._data):
            self._data.extend(b"\x00" * (end - len(self._data)))
        self._data[offset:end] = data

    def raw(self) -> bytes:
        return bytes(self._data)

    def __len__(self) -> int:
        return len(self._data)


class RelayPayload(Payload):
    """XPC payload: a window straight onto the caller's relay segment.

    Reads and writes hit the same physical bytes the caller filled —
    zero copies, and single ownership is enforced by the engine.
    """

    def __init__(self, mem, window, used: int,
                 base_offset: int = 0) -> None:
        self._mem = mem
        self._window = window
        self._used = used
        #: Where this payload's window starts inside the *thread's
        #: active* relay window.  0 on the synchronous path (the
        #: payload is the window); an aio arena slot sits at its
        #: SQE's data offset within the ring segment.
        self._base_offset = base_offset

    def read(self, n: int = -1, offset: int = 0) -> bytes:
        if n < 0:
            n = self._used - offset
        if offset + n > self._window.length:
            raise IndexError("read escapes the relay window")
        return self._mem.read(self._window.pa_base + offset, n)

    def write(self, data: bytes, offset: int = 0) -> None:
        if offset + len(data) > self._window.length:
            raise IndexError("write escapes the relay window")
        self._mem.write(self._window.pa_base + offset, data)
        self._used = max(self._used, offset + len(data))

    def window_slice(self, offset: int, length: int):
        """Translate a payload-relative range into the ``window_slice``
        coordinates of :meth:`Transport.call` — i.e. offsets within the
        thread's *active* relay window.  Handlers that slide their
        payload down the chain (§4.4) must go through this instead of
        passing raw offsets, so they keep working when the payload is a
        sub-window of a larger segment (a batched-ring arena slot)."""
        return (self._base_offset + offset, length)

    def __len__(self) -> int:
        return self._used


@dataclass
class ServerRegistration:
    """Bookkeeping for one registered service."""

    sid: int
    name: str
    handler: Handler
    server_process: object
    server_thread: object
    extra: dict = None


class Transport(abc.ABC):
    """One IPC mechanism on one machine."""

    #: Human-readable system name ("seL4", "seL4-XPC", "Zircon", ...).
    name = "abstract"

    #: The snapshot contract (repro.snap): the complete instance state
    #: this class owns.  Subclasses extend the tuple; the snap-discipline
    #: lint rule and the fingerprint walker both enforce totality, so a
    #: restored transport can never silently miss an attribute.
    __snap_state__ = ("_services", "_next_sid", "call_count",
                      "bytes_moved", "ipc_cycles", "_serving_core")

    def __init__(self) -> None:
        self._services: Dict[int, ServerRegistration] = {}
        self._next_sid = 1
        self.call_count = 0
        self.bytes_moved = 0
        #: Cycles spent in the IPC *mechanism* (traps, switches, copies)
        #: across all calls — handler time excluded.  This is the
        #: numerator of the paper's Figure 1(a) "CPU time spent on IPC".
        self.ipc_cycles = 0
        #: When a handler is being driven from a core other than the
        #: transport's home core (a batched ring drain on a worker
        #: core), this names it; see :meth:`serving`.
        self._serving_core = None

    # -- execution context -------------------------------------------------
    @property
    def current_core(self):
        """The core currently executing service code through this
        transport.

        Equal to ``self.core`` on the synchronous path (the migrating
        thread runs servers on the client's core), but rebound inside a
        :meth:`serving` block when an aio worker drains a ring on its
        own core.  Handler logic costs and nested onward calls must use
        this, not the home core, so batched execution is charged to —
        and windows resolve against — the core actually doing the work.
        """
        return self._serving_core if self._serving_core is not None \
            else self.core

    @contextmanager
    def serving(self, core):
        """Rebind :attr:`current_core` for the duration of a drain."""
        prev = self._serving_core
        self._serving_core = core
        try:
            yield
        finally:
            self._serving_core = prev

    # -- registration ------------------------------------------------------
    def register(self, name: str, handler: Handler,
                 server_process, server_thread, **extra) -> int:
        sid = self._next_sid
        self._next_sid += 1
        reg = ServerRegistration(sid, name, handler, server_process,
                                 server_thread, extra or {})
        self._services[sid] = reg
        self._bind(reg)
        return sid

    def lookup(self, name: str) -> int:
        """Name-server style resolution (paper Listing 1)."""
        for sid, reg in self._services.items():
            if reg.name == name:
                return sid
        raise KeyError(f"no service named {name!r}")

    def _reg(self, sid: int) -> ServerRegistration:
        try:
            return self._services[sid]
        except KeyError:
            raise KeyError(f"unknown service id {sid}") from None

    def grant_to_thread(self, sid: int, thread) -> None:
        """Allow *thread* (e.g. another server) to call service *sid*.

        Capability plumbing for server→server chains; a no-op on
        transports whose kernels do the check at call time.
        """

    def revoke_from_thread(self, sid: int, thread) -> None:
        """Withdraw *thread*'s right to call service *sid*.

        The inverse of :meth:`grant_to_thread`.  On XPC transports this
        clears the xcall-cap bit so the *engine* denies the next call;
        baseline transports whose kernels keep no per-thread grant state
        leave enforcement to the caller (a no-op here).
        """

    # -- the two hooks concrete transports implement -------------------------
    @abc.abstractmethod
    def _bind(self, reg: ServerRegistration) -> None:
        """Mechanism-specific server setup (endpoint, channel, x-entry)."""

    @abc.abstractmethod
    def call(self, sid: int, meta: tuple = (),
             payload: bytes = b"",
             reply_capacity: int = 0,
             cross_core: bool = False,
             window_slice: Optional[Tuple[int, int]] = None
             ) -> Tuple[tuple, bytes]:
        """Synchronous request/response carrying *payload* bytes.

        Handlers may reply three ways: return reply bytes (the transport
        moves them), return an ``int`` byte count (the reply was already
        written in place through ``payload.write`` — zero-copy), or
        return ``None`` (no reply payload).

        ``window_slice=(offset, length)`` is the relay-seg handover fast
        path (paper §4.4's sliding window): on an XPC transport inside a
        migrated call it passes a *masked view of the current window*
        instead of staging bytes — zero copies down the chain.  Baseline
        transports ignore it and move *payload* the usual way.
        """
