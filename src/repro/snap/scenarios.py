"""Canonical snapshot scenarios: fig5- and fig7-shaped worlds.

These are the deterministic workloads the byte-identity contract is
checked against in CI (alongside the generated proptest programs):

* :func:`fig5_world` — the paper's Figure 5 shape: a client hammering
  one XPC echo service with small synchronous xcalls (the per-call
  breakdown microbenchmark, as a steppable world);
* :func:`fig7_world` — the Figure 7 shape: the two-server filesystem
  chain (fs server → block device) plus the two-server network chain
  (net server → loopback device) under mixed read/write and
  send/recv traffic.

Each builder returns ``(world, ops)`` where *world* is a
:class:`~repro.snap.world.SimWorld` and *ops* are module-level
callables, so the pair feeds straight into a
:class:`~repro.snap.record.Recorder` and every op replays against any
restored copy of the world.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hw.machine import Machine
from repro.kernel.kernel import BaseKernel
from repro.ipc.xpc_transport import XPCTransport
from repro.sel4 import Sel4Kernel, Sel4XPCTransport
from repro.services.fs import build_fs_stack
from repro.services.net.server import build_net_stack
from repro.snap.world import SimWorld
from repro.xpc.engine import XPCConfig


def _pattern(size: int, seed: int) -> bytes:
    """Deterministic, content-varied payload bytes."""
    return bytes((seed * 131 + i * 7) % 256 for i in range(size))


class EchoHandler:
    """Server side of the fig5 microbench: echo the request back."""

    def __call__(self, meta, payload):
        data = payload.read(meta[1])
        return ("ok", len(data)), data


class EchoCall:
    """One synchronous xcall of *size* bytes to the echo service."""

    def __init__(self, size: int, seed: int) -> None:
        self.size = size
        self.seed = seed

    def __call__(self, world):
        data = _pattern(self.size, self.seed)
        meta, reply = world.transport.call(
            world.echo_sid, ("echo", self.size), data,
            reply_capacity=self.size)
        return (meta[0], len(reply), reply == data)


class FsWrite:
    def __init__(self, path: str, size: int, seed: int,
                 offset: int = 0) -> None:
        self.path = path
        self.size = size
        self.seed = seed
        self.offset = offset

    def __call__(self, world):
        data = _pattern(self.size, self.seed)
        world.fs.write(self.path, data, self.offset)
        return ("wrote", self.path, self.size)


class FsRead:
    def __init__(self, path: str, offset: int, size: int) -> None:
        self.path = path
        self.offset = offset
        self.size = size

    def __call__(self, world):
        data = world.fs.read(self.path, self.offset, self.size)
        return ("read", self.path, len(data))


class FsCreate:
    def __init__(self, path: str) -> None:
        self.path = path

    def __call__(self, world):
        world.fs.create(self.path)
        return ("created", self.path)


class NetPingPong:
    """Send *size* bytes client→server over loopback, read them back
    out of the accepted socket."""

    def __init__(self, size: int, seed: int) -> None:
        self.size = size
        self.seed = seed

    def __call__(self, world):
        data = _pattern(self.size, self.seed)
        sent = world.net.send(world.cli_sock, data)
        got = world.net.recv(world.srv_sock, self.size)
        return ("net", sent, len(got), got == data[:len(got)])


def fig5_world(partial_context: bool = True,
               xpc_config: Optional[XPCConfig] = None
               ) -> Tuple[SimWorld, List[object]]:
    """The Figure 5 shape: repeated small xcalls to one echo server.

    *xpc_config* passes through to the machine so variants (e.g. the
    engine cache enabled) reuse the same workload; the default is the
    canonical CI-pinned configuration.
    """
    machine = Machine(cores=1, mem_bytes=64 * 1024 * 1024,
                      xpc_config=xpc_config)
    kernel = BaseKernel(machine)
    core = machine.core0
    client_proc = kernel.create_process("client")
    client = kernel.create_thread(client_proc)
    kernel.run_thread(core, client)
    transport = XPCTransport(kernel, core, client,
                             partial_context=partial_context)
    server_proc = kernel.create_process("echo")
    server = kernel.create_thread(server_proc)
    sid = transport.register("echo", EchoHandler(), server_proc, server)
    transport.grant_to_thread(sid, client)
    world = SimWorld(machine=machine, kernel=kernel, core=core,
                     transport=transport, echo_sid=sid)
    ops = [EchoCall(size, seed=i)
           for i, size in enumerate([16, 64, 256, 64, 1024, 16,
                                     4096, 256, 64, 512])]
    return world, ops


def fig7_world(disk_blocks: int = 1024
               ) -> Tuple[SimWorld, List[object]]:
    """The Figure 7 shape: fs and net two-server chains under mixed
    traffic on one seL4-XPC system."""
    machine = Machine(cores=2, mem_bytes=128 * 1024 * 1024)
    kernel = Sel4Kernel(machine)
    app_proc = kernel.create_process("app")
    app = kernel.create_thread(app_proc)
    kernel.run_thread(machine.core0, app)
    transport = Sel4XPCTransport(kernel, machine.core0, app)
    fs_server, fs_client, disk = build_fs_stack(
        transport, kernel, disk_blocks=disk_blocks)
    net_server, net_client, dev = build_net_stack(transport, kernel)

    srv_sock = net_client.socket()
    net_client.listen(srv_sock, 80)
    cli_sock = net_client.socket()
    net_client.connect(cli_sock, 80)
    accepted = net_client.accept(srv_sock)

    world = SimWorld(machine=machine, kernel=kernel,
                     core=machine.core0, transport=transport,
                     fs_server=fs_server, fs=fs_client, disk=disk,
                     net_server=net_server, net=net_client, dev=dev,
                     cli_sock=cli_sock, srv_sock=accepted)
    ops: List[object] = [FsCreate("/data")]
    for i, size in enumerate([4096, 512, 8192, 2048]):
        ops.append(FsWrite("/data", size, seed=i, offset=i * 512))
        ops.append(FsRead("/data", offset=i * 512, size=size))
        ops.append(NetPingPong(size=min(size, 1400), seed=i))
    return world, ops


SCENARIOS = {"fig5": fig5_world, "fig7": fig7_world}
