"""Canonical content fingerprints for simulation state graphs.

:func:`fingerprint` walks an arbitrary object graph — the whole
simulated machine, or any sub-structure — and folds it into one sha256
digest.  Two graphs get the same digest iff they are structurally
identical, independent of ``PYTHONHASHSEED``, object identity, and
memory layout:

* dicts hash in **insertion order** (the simulation's own deterministic
  order — never hash-salt order);
* sets hash by the **sorted sub-fingerprints** of their elements, each
  computed standalone, so salted iteration order cannot leak in;
* objects hash by class qualname plus their ``vars()`` sorted by
  attribute name; cycles become back-references to the first visit.

Snapshot discipline is enforced on the way through: any class in an
object's MRO may declare ``__snap_state__`` — a plain tuple naming the
instance attributes that constitute its complete state (subclasses
extend with ``Base.__snap_state__ + (...,)``).  When a declaration
exists, every attribute actually present on the instance must be
declared somewhere in the MRO; an undeclared stray means someone added
state without thinking about snapshots, and the walk fails loudly with
:class:`SnapshotError` instead of silently fingerprinting it.  The
``snap-discipline`` lint rule (:mod:`repro.verify.rules.snap`) catches
the same drift statically.

A class whose raw attribute dict is the wrong identity basis (id-keyed
caches, derived bookkeeping) can define ``__snap_fingerprint__(self)``
returning any walkable value; the walker hashes that instead of
``vars()`` — e.g. :class:`~repro.hw.memory.PhysicalMemory` exposes its
page table as sorted ``(frame, sha256)`` pairs so live and dormant
snapshots of the same bytes fingerprint identically.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import itertools
import random
import types
from collections import deque
from typing import List, Optional, Set


class SnapshotError(Exception):
    """A graph is not snapshot-clean (stray state, unwalkable type)."""


#: Attributes that exist on instances for CPython bookkeeping and are
#: never simulation state.
_IGNORED_ATTRS = ("__weakref__", "__dict__")

_ATOM_TYPES = (type(None), bool, int, float, complex, str)


def declared_state(cls: type) -> Optional[Set[str]]:
    """Union of ``__snap_state__`` declarations over *cls*'s MRO, or
    None when no class in the MRO declares one."""
    names: Optional[Set[str]] = None
    for klass in cls.__mro__:
        decl = klass.__dict__.get("__snap_state__")
        if decl is not None:
            names = set(decl) if names is None else names | set(decl)
    return names


def check_state_discipline(obj: object) -> None:
    """Raise :class:`SnapshotError` if *obj* carries instance
    attributes outside its MRO's ``__snap_state__`` union."""
    names = declared_state(type(obj))
    if names is None:
        return
    attrs = getattr(obj, "__dict__", None)
    if attrs is None:
        return
    stray = [a for a in attrs
             if a not in names and a not in _IGNORED_ATTRS]
    if stray:
        raise SnapshotError(
            f"{type(obj).__module__}.{type(obj).__qualname__} carries "
            f"undeclared snapshot state {sorted(stray)!r} — add it to "
            f"__snap_state__ (or exclude it via __snap_fingerprint__)")


class _Walker:
    """One fingerprint computation: a sha256 fold over a canonical,
    type-tagged, length-prefixed token stream."""

    def __init__(self) -> None:
        self._h = hashlib.sha256()
        self._memo = {}            # id(obj) -> first-visit ordinal
        self._keepalive: List[object] = []

    # -- token stream --------------------------------------------------

    def _emit(self, tag: str, payload: bytes = b"") -> None:
        self._h.update(tag.encode("ascii"))
        self._h.update(len(payload).to_bytes(8, "big"))
        self._h.update(payload)

    def digest(self) -> str:
        return self._h.hexdigest()

    # -- dispatch ------------------------------------------------------

    def walk(self, obj: object) -> None:
        if obj is None or isinstance(obj, (bool, int, float, complex,
                                           str)):
            self._emit(type(obj).__name__, repr(obj).encode("utf-8"))
            return
        if isinstance(obj, (bytes, bytearray, memoryview)):
            self._emit("bytes", bytes(obj))
            return
        if isinstance(obj, enum.Enum):
            self._emit("enum", f"{type(obj).__qualname__}:"
                               f"{obj.value!r}".encode("utf-8"))
            return

        # Immutable values hash by *value*, never by identity: whether
        # two structures share one frozen instance or hold equal
        # copies is not simulation state (module-level singletons like
        # SEG_INVALID/NO_MASK alias freely in a live run but come back
        # from a restore as per-graph copies).  Cycles cannot close
        # through immutables alone, and any mutable object reached
        # below is still id-memoized, so recursion stays bounded.
        if isinstance(obj, tuple):
            self._emit("tuple-open")
            for item in obj:
                self.walk(item)
            self._emit("tuple-close")
            return
        if (dataclasses.is_dataclass(obj) and not isinstance(obj, type)
                and type(obj).__dataclass_params__.frozen):
            self._emit("frozen", type(obj).__qualname__.encode("utf-8"))
            for field in dataclasses.fields(obj):
                self._emit("attr", field.name.encode("utf-8"))
                self.walk(getattr(obj, field.name))
            self._emit("frozen-close")
            return

        # Containers and objects participate in cycles: memoize by id.
        ordinal = self._memo.get(id(obj))
        if ordinal is not None:
            self._emit("backref", str(ordinal).encode("ascii"))
            return
        self._memo[id(obj)] = len(self._memo)
        self._keepalive.append(obj)

        if isinstance(obj, (list, deque)):
            self._emit("seq-open", type(obj).__name__.encode("ascii"))
            for item in obj:
                self.walk(item)
            self._emit("seq-close")
            return
        if isinstance(obj, dict):
            self._emit("dict-open")
            for key, value in obj.items():
                self.walk(key)
                self.walk(value)
            self._emit("dict-close")
            return
        if isinstance(obj, (set, frozenset)):
            # Standalone sub-fingerprints, sorted: salt-proof.
            subs = sorted(fingerprint(item) for item in obj)
            self._emit("set", ",".join(subs).encode("ascii"))
            return
        if isinstance(obj, random.Random):
            self._emit("random", repr(obj.getstate()).encode("utf-8"))
            return
        if isinstance(obj, itertools.count):
            self._emit("count", repr(obj).encode("ascii"))
            return
        if isinstance(obj, functools.partial):
            self._emit("partial")
            self.walk(obj.func)
            self.walk(obj.args)
            self.walk(obj.keywords)
            return
        if isinstance(obj, types.MethodType):
            self._emit("method",
                       obj.__func__.__qualname__.encode("utf-8"))
            self.walk(obj.__self__)
            return
        if isinstance(obj, (types.FunctionType, types.BuiltinFunctionType)):
            self._emit("function",
                       f"{getattr(obj, '__module__', '?')}:"
                       f"{obj.__qualname__}".encode("utf-8"))
            return
        if isinstance(obj, type):
            self._emit("class", f"{obj.__module__}:"
                                f"{obj.__qualname__}".encode("utf-8"))
            return
        if isinstance(obj, BaseException):
            self._emit("exception",
                       type(obj).__qualname__.encode("utf-8"))
            self.walk(obj.args)
            self.walk(dict(sorted(vars(obj).items())))
            return
        if isinstance(obj, range):
            self._emit("range", repr(obj).encode("ascii"))
            return

        self._walk_instance(obj)

    def _walk_instance(self, obj: object) -> None:
        hook = getattr(type(obj), "__snap_fingerprint__", None)
        if hook is not None:
            self._emit("hooked", type(obj).__qualname__.encode("utf-8"))
            self.walk(hook(obj))
            return
        check_state_discipline(obj)
        attrs = getattr(obj, "__dict__", None)
        if attrs is None:
            slots = getattr(type(obj), "__slots__", None)
            if slots is None:
                raise SnapshotError(
                    f"cannot fingerprint {type(obj).__module__}."
                    f"{type(obj).__qualname__} instance: no __dict__, "
                    f"no __slots__, no __snap_fingerprint__ hook")
            attrs = {name: getattr(obj, name) for name in slots
                     if hasattr(obj, name)}
        self._emit("object", type(obj).__qualname__.encode("utf-8"))
        for name in sorted(a for a in attrs if a not in _IGNORED_ATTRS):
            self._emit("attr", name.encode("utf-8"))
            self.walk(attrs[name])
        self._emit("object-close")


def fingerprint(obj: object) -> str:
    """Canonical sha256 hex digest of *obj*'s entire reachable state."""
    walker = _Walker()
    walker.walk(obj)
    return walker.digest()
