"""Snapshot capture/restore and the content-addressed snapshot store.

A snapshot is a **dormant deep copy** of a world graph plus the few
process-global counters that live outside it.  Capture and restore are
both one ``copy.deepcopy`` pass:

* ``capture(world)`` — deepcopy the live graph.  Stateful leaves
  cooperate through ``__deepcopy__``:
  :class:`~repro.hw.memory.PhysicalMemory` goes *dormant* (drops its
  byte array, keeps a content-addressed page table shared
  copy-on-write with earlier snapshots of the same memory, so a
  checkpoint costs only the pages dirtied since the last one);
* ``restore(snap)`` — deepcopy the dormant graph back into a fresh,
  fully live world (memory rematerialises its bytearray) and reinstate
  the global counters (koid/asid allocators) to their captured values.

Restore never mutates the snapshot: one snapshot can seed any number of
divergent futures (that is what the shrinker and the time-travel
bisector do).  Snapshots are cycle-stamped at capture and lazily
content-addressed by their canonical :func:`~repro.snap.fingerprint.
fingerprint`; byte-identity between a straight-line run and a
restore-and-rerun is the contract CI enforces.
"""

from __future__ import annotations

import copy
import os
import pickle
from typing import Dict, List, Optional

from repro.hw.paging import AddressSpace
from repro.kernel.objects import KernelObject
from repro.snap.fingerprint import fingerprint

#: Length of the store key prefix taken from the fingerprint.
KEY_LEN = 12


def _capture_globals() -> Dict[str, int]:
    """The process-global allocator counters that live outside any
    world graph but feed object construction inside it."""
    return {"next_koid": KernelObject._next_koid,
            "next_asid": AddressSpace._next_asid}


def _restore_globals(state: Dict[str, int]) -> None:
    KernelObject._next_koid = state["next_koid"]
    AddressSpace._next_asid = state["next_asid"]


class Snapshot:
    """One dormant world graph, cycle-stamped and content-addressed."""

    __snap_state__ = ("world", "globals_state", "cycle", "op_index",
                      "_fp")

    def __init__(self, world: object, globals_state: Dict[str, int],
                 cycle: int, op_index: Optional[int] = None) -> None:
        self.world = world                  # dormant graph — do not run
        self.globals_state = globals_state
        self.cycle = cycle
        self.op_index = op_index
        self._fp: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Canonical digest of the captured state (computed lazily and
        cached — fingerprinting walks the whole graph)."""
        if self._fp is None:
            self._fp = fingerprint((self.world, self.globals_state))
        return self._fp

    @property
    def key(self) -> str:
        return self.fingerprint[:KEY_LEN]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Snapshot(op={self.op_index}, cycle={self.cycle}, "
                f"key={self.key})")


def world_clock(world: object) -> int:
    """Cycle stamp for *world*: its ``clock()`` when it has one."""
    clock = getattr(world, "clock", None)
    return clock() if callable(clock) else 0


def capture(world: object, op_index: Optional[int] = None) -> Snapshot:
    """Snapshot *world* (live → dormant deepcopy + global counters)."""
    return Snapshot(world=copy.deepcopy(world),
                    globals_state=_capture_globals(),
                    cycle=world_clock(world), op_index=op_index)


def restore(snapshot: Snapshot) -> object:
    """Revive *snapshot* into a fresh live world (dormant → live
    deepcopy); the snapshot itself stays dormant and reusable."""
    world = copy.deepcopy(snapshot.world)
    _restore_globals(snapshot.globals_state)
    return world


def live_fingerprint(world: object) -> str:
    """Fingerprint of the *running* world, comparable against
    ``Snapshot.fingerprint`` of a capture taken at the same point.

    Goes through a capture so that memory is hashed in its canonical
    (page-table) form on both sides.
    """
    return capture(world).fingerprint


class SnapshotStore:
    """Content-addressed on-disk snapshots (pickled dormant graphs).

    Keys are fingerprint prefixes, so saving the same state twice is a
    no-op and a key names the state, not the moment it was saved.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.snap")

    def save(self, snapshot: Snapshot) -> str:
        key = snapshot.key
        path = self._path(key)
        if not os.path.exists(path):
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                pickle.dump(snapshot, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        return key

    def load(self, key: str) -> Snapshot:
        with open(self._path(key), "rb") as fh:
            snapshot = pickle.load(fh)
        if snapshot.key != key:
            raise ValueError(
                f"snapshot store corruption: {key} loads as "
                f"{snapshot.key}")
        return snapshot

    def keys(self) -> List[str]:
        return sorted(name[:-len(".snap")]
                      for name in os.listdir(self.root)
                      if name.endswith(".snap"))
