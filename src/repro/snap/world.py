"""World wrappers: the unit of snapshotting is one *world* object.

A world is a single root that owns everything the simulation touches —
machine, kernel, transports, servers, plus the run's own bookkeeping
(outcomes, per-op cycle deltas, observability session).  ``capture``
deepcopies the root, so anything the run can observe must hang off it;
the only state outside the graph is the pair of process-global
allocator counters, which :mod:`repro.snap.core` carries alongside.

Two shapes cover the stack:

* :class:`ExecutorWorld` wraps any :mod:`repro.proptest` executor and
  steps it through grammar ops — this is what the differential
  identity tier, the snapshot-accelerated shrinker, and ``python -m
  repro.snap`` drive;
* :class:`SimWorld` is an open-attribute container for hand-built
  scenarios (the fig5/fig7-shaped worlds in
  :mod:`repro.snap.scenarios`, the fs/net chaos scenarios in the
  tests), whose ops are module-level callables ``op(world) ->
  outcome`` so a recorded op list replays against any restored copy.

``step`` is the only way a world advances, and each step installs the
world's own obs/faults sessions around the op.  That makes the op
boundary a quiescent point: everything context-managed during an op is
torn back down before a checkpoint is taken, so a restored world
resumes with plain ``step`` calls and no ambient globals to rebuild.
If an outer driver already installed this world's obs session (the
chaos harness does, so :class:`~repro.snap.chaos.PreFaultSnapper` can
chain the fault observer), ``step`` leaves it in place.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import repro.faults as faults
import repro.obs as obs


class ExecutorWorld:
    """A proptest executor plus its run bookkeeping, as one graph."""

    __snap_state__ = ("executor", "obs", "outcomes", "op_cycles",
                      "op_ipc", "op_index")

    def __init__(self, executor, obs_session: Optional[obs.ObsSession]
                 = None) -> None:
        self.executor = executor
        self.obs = obs_session
        self.outcomes: List[tuple] = []
        self.op_cycles: List[int] = []
        self.op_ipc: List[int] = []
        self.op_index = 0

    @classmethod
    def build(cls, factory: Callable[[], object],
              observe: bool = True) -> "ExecutorWorld":
        """Construct the executor and (optionally) wire an ObsSession
        to its machine and kernel so PMU/metrics state snapshots with
        the world."""
        executor = factory()
        session = None
        if observe:
            session = obs.ObsSession()
            session.attach(executor.kernel.machine, executor.kernel)
        return cls(executor, session)

    def clock(self) -> int:
        return self.executor.core.cycles

    def step(self, op) -> tuple:
        """Run one grammar op; record outcome and per-op deltas."""
        cycles0 = self.executor.core.cycles
        ipc0 = self.executor._ipc_total()
        if self.obs is not None and obs.ACTIVE is not self.obs:
            with obs.active(self.obs):
                outcome = self.executor.step(op)
        else:
            outcome = self.executor.step(op)
        self.outcomes.append(outcome)
        self.op_cycles.append(self.executor.core.cycles - cycles0)
        self.op_ipc.append(self.executor._ipc_total() - ipc0)
        self.op_index += 1
        return outcome

    def run(self, ops: Sequence) -> List[tuple]:
        return [self.step(op) for op in ops]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecutorWorld({self.executor.name}, "
                f"op={self.op_index}, cycle={self.clock()})")


class SimWorld:
    """Open-attribute world for hand-built scenarios.

    The builder hangs whatever it likes off the instance (machine,
    kernel, transport, servers, client stubs, service ids...).  Ops are
    module-level callables invoked as ``op(world)``; their return value
    is the recorded outcome.  Optional well-known attributes:

    * ``plan`` — a :class:`~repro.faults.FaultPlan` installed around
      every op (per-op arming is trace-identical to whole-run arming:
      nothing fires between ops);
    * ``obs`` — an :class:`~repro.obs.ObsSession` installed around
      every op (unless an outer driver already installed it);
    * ``core`` — the core whose cycle counter stamps snapshots.

    Deliberately *not* ``__snap_state__``-disciplined: open attributes
    are the point.  Everything reachable still fingerprints.
    """

    def __init__(self, **attrs) -> None:
        self.plan = None
        self.obs = None
        self.core = None
        self.outcomes: List[object] = []
        self.op_cycles: List[int] = []
        self.op_index = 0
        for name, value in attrs.items():
            setattr(self, name, value)

    def clock(self) -> int:
        return self.core.cycles if self.core is not None else 0

    def step(self, op) -> object:
        cycles0 = self.clock()
        outcome = self._execute(op)
        self.outcomes.append(outcome)
        self.op_cycles.append(self.clock() - cycles0)
        self.op_index += 1
        return outcome

    def _execute(self, op):
        if self.obs is not None and obs.ACTIVE is not self.obs:
            with obs.active(self.obs):
                return self._execute_faulted(op)
        return self._execute_faulted(op)

    def _execute_faulted(self, op):
        if self.plan is not None:
            with faults.active(self.plan):
                return op(self)
        return op(self)

    def run(self, ops: Sequence) -> List[object]:
        return [self.step(op) for op in ops]
