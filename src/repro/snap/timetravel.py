"""Reverse-until-invariant time travel over a recorded run.

Given a :class:`~repro.snap.record.Recorder` whose run ended in a bad
state and a predicate ``violated(world) -> bool``, :func:`reverse_until`
finds the **first op whose execution makes the predicate true**:

1. bisect the checkpoint timeline — restore each probed checkpoint and
   evaluate the predicate on the revived world (restores never disturb
   the snapshots, so probing is free of side effects);
2. fine-step from the last healthy checkpoint one op at a time,
   capturing the boundary before each op, until the predicate flips.

The result pins the culprit op, the snapshot of the boundary
immediately before it, and the minimal op window (last healthy
checkpoint → culprit inclusive) — a ready-made reproducer: restore
``result.before``, apply ``result.window[-1]``, observe the violation.

Bisection assumes the predicate is monotone over the run (once
violated, stays violated) — true for the recovery invariants in
:mod:`repro.verify.live` under a fixed op suffix, and for any
"outcome log contains a divergence" predicate.  A non-monotone
predicate still works, but the bisection may land on a later
violation window than the first.

Predicates for the stock invariants are provided:
:func:`recovery_predicate` wraps
:func:`repro.verify.live.check_recovery_invariants` over whatever
kernel the world carries.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.snap.core import Snapshot, capture, restore
from repro.snap.record import Recorder
from repro.verify.live import check_recovery_invariants


class TimeTravelResult:
    """Where the timeline first went bad."""

    __snap_state__ = ("op_index", "op", "world", "before", "window",
                      "probes")

    def __init__(self, op_index: int, op: object, world: object,
                 before: Snapshot, window: List[object],
                 probes: int) -> None:
        self.op_index = op_index    # index of the culprit op
        self.op = op                # the culprit op itself
        self.world = world          # live world just after the culprit
        self.before = before        # boundary snapshot just before it
        self.window = window        # ops: last good checkpoint..culprit
        self.probes = probes        # restores spent finding it

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TimeTravelResult(op_index={self.op_index}, "
                f"op={self.op!r}, window={len(self.window)} ops, "
                f"probes={self.probes})")


def kernel_of(world):
    """The kernel a world carries (ExecutorWorld or SimWorld shape)."""
    kernel = getattr(world, "kernel", None)
    if kernel is not None:
        return kernel
    return world.executor.kernel


def recovery_predicate(world) -> bool:
    """True when any §3.3/§4.2/§4.4 recovery invariant is violated."""
    return bool(check_recovery_invariants(kernel_of(world)))


def reverse_until(recorder: Recorder,
                  violated: Callable[[object], bool]
                  ) -> Optional[TimeTravelResult]:
    """First op of *recorder*'s run after which *violated* holds, or
    None when the predicate never fails (including on the final
    state)."""
    probes = 0

    def probe(snapshot: Snapshot) -> bool:
        nonlocal probes
        probes += 1
        return bool(violated(restore(snapshot)))

    if not violated(recorder.world):
        return None

    checkpoints = recorder.checkpoints
    if probe(checkpoints[0]):
        # Bad before any op ran: the culprit is the world builder.
        world = restore(checkpoints[0])
        return TimeTravelResult(op_index=-1, op=None, world=world,
                                before=checkpoints[0], window=[],
                                probes=probes)

    # Largest checkpoint index still healthy.  Invariant: lo healthy,
    # everything > hi known-or-assumed violated.
    lo, hi = 0, len(checkpoints) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if probe(checkpoints[mid]):
            hi = mid - 1
        else:
            lo = mid
    good = checkpoints[lo]

    # Fine phase: step from the healthy boundary, snapshotting each
    # boundary so the culprit's pre-state comes back with the result.
    world = restore(good)
    index = good.op_index
    before = good
    while index < len(recorder.ops):
        op = recorder.ops[index]
        world.step(op)
        if violated(world):
            return TimeTravelResult(
                op_index=index, op=op, world=world, before=before,
                window=list(recorder.ops[good.op_index:index + 1]),
                probes=probes)
        index += 1
        before = capture(world, op_index=index)
    return None
