"""CLI driver for snapshots: save/restore/bisect/identity/probe.

* ``save`` — run a scenario (or a counterexample artifact on one
  executor) to an op boundary, snapshot, and store it
  content-addressed;
* ``restore`` — revive a stored snapshot, optionally run the rest of
  the scenario's ops, and report fingerprint/cycle;
* ``bisect`` — record a run and reverse-until-invariant: pin the first
  op that breaks the chosen predicate;
* ``identity`` — the CI byte-identity tier: fig5/fig7-shaped worlds
  plus N generated differential programs, each checked straight-line
  vs restore-and-replay (exit 1 on any divergence);
* ``probe`` — print the canonical fingerprint of a small deterministic
  world; run under different ``PYTHONHASHSEED`` values it must not
  move (the hash-determinism contract of the fingerprint walker).

Exit status: 0 — success / identity holds; 1 — mismatch or violation
found (``bisect`` reporting a culprit is *success*: exit 0).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.proptest.executors import default_executor_factories
from repro.proptest.gen import generate
from repro.proptest.shrink import load_artifact
from repro.snap.core import (SnapshotStore, capture, live_fingerprint,
                             restore)
from repro.snap.record import Recorder
from repro.snap.scenarios import SCENARIOS
from repro.snap.timetravel import recovery_predicate, reverse_until
from repro.snap.world import ExecutorWorld

DEFAULT_STORE = ".snapstore"
DEFAULT_EXECUTOR = "seL4-XPC"


def _factory(name: str):
    table = dict(default_executor_factories())
    if name not in table:
        raise SystemExit(f"unknown executor {name!r}; one of: "
                         f"{', '.join(n for n, _ in table.items())}")
    return table[name]


def _build(args):
    """(world, ops) for --scenario or --program/--executor."""
    if args.scenario:
        return SCENARIOS[args.scenario]()
    if not args.program:
        raise SystemExit("need --scenario or --program")
    program = load_artifact(args.program)
    world = ExecutorWorld.build(_factory(args.executor), observe=True)
    return world, list(program.ops)


def _save(args) -> int:
    world, ops = _build(args)
    at_op = len(ops) if args.at_op is None else args.at_op
    world.run(ops[:at_op])
    snapshot = capture(world, op_index=at_op)
    store = SnapshotStore(args.store)
    key = store.save(snapshot)
    print(f"saved op={at_op} cycle={snapshot.cycle} key={key}")
    print(f"fingerprint={snapshot.fingerprint}")
    return 0


def _restore(args) -> int:
    store = SnapshotStore(args.store)
    snapshot = store.load(args.key)
    rest = None
    if args.run_rest:
        if not (args.scenario or args.program):
            raise SystemExit("--run-rest needs the originating "
                             "--scenario or --program for the op list")
        # Build the op list BEFORE reviving: scenario builders allocate
        # kernel objects, and restore() must be the last writer of the
        # process-global allocator counters or the replayed run drifts
        # from the straight-line lineage.
        _, ops = _build(args)
        rest = ops[snapshot.op_index:]
    world = restore(snapshot)
    print(f"restored op={snapshot.op_index} cycle={snapshot.cycle} "
          f"key={snapshot.key}")
    if rest is not None:
        for op in rest:
            world.step(op)
        print(f"ran {len(rest)} remaining op(s): cycle={world.clock()}")
        for outcome in world.outcomes[-len(rest):]:
            print(f"  {outcome!r}")
    print(f"fingerprint={live_fingerprint(world)}")
    return 0


def _bisect(args) -> int:
    world, ops = _build(args)
    recorder = Recorder(world, every_ops=args.every_ops)
    recorder.run(ops)
    if args.invariant == "recovery":
        predicate = recovery_predicate
    else:  # error: some op surfaced an ("error", ...) outcome
        def predicate(w):
            return any(isinstance(o, tuple) and o and o[0] == "error"
                       for o in w.outcomes)
    result = reverse_until(recorder, predicate)
    if result is None:
        print(f"invariant {args.invariant!r} holds over all "
              f"{len(recorder.ops)} op(s)")
        return 0
    print(f"first violation after op {result.op_index}: {result.op!r}")
    print(f"  window: {len(result.window)} op(s), "
          f"probes: {result.probes}")
    print(f"  boundary snapshot: op={result.before.op_index} "
          f"cycle={result.before.cycle} key={result.before.key}")
    if args.store:
        key = SnapshotStore(args.store).save(result.before)
        print(f"  saved pre-violation snapshot -> {args.store}/{key}")
    return 0


def _identity_one(world, ops, label: str, every_ops: int) -> bool:
    """Straight-line vs restore-and-replay byte identity for one
    world; True when identical."""
    snap0 = capture(world, op_index=0)
    recorder = Recorder(world, every_ops=every_ops)
    recorder.run(ops)
    fp_straight = live_fingerprint(recorder.world)

    replayed = restore(snap0)
    replayed.run(ops)
    mid = len(ops) // 2
    resumed = recorder.resume(mid)
    for op in recorder.ops[mid:]:
        resumed.step(op)

    ok = True
    for mode, candidate in (("restore-S0", replayed),
                            ("resume-mid", resumed)):
        if (candidate.outcomes != recorder.world.outcomes
                or live_fingerprint(candidate) != fp_straight):
            print(f"  {label}: {mode} DIVERGED")
            ok = False
    print(f"  {label}: {'ok' if ok else 'FAILED'} "
          f"(cycles={recorder.world.clock()}, "
          f"fp={fp_straight[:12]})")
    return ok


def _identity(args) -> int:
    bad = 0
    print("scenario worlds:")
    for name, builder in SCENARIOS.items():
        world, ops = builder()
        if not _identity_one(world, ops, name, args.every_ops):
            bad += 1
    factories = default_executor_factories()
    for i in range(args.programs):
        program = generate(args.seed + i)
        # Rotate through the executor pool so the tier exercises every
        # mechanism without running the full matrix per program.
        exec_name, factory = factories[i % len(factories)]
        print(f"program seed={args.seed + i} ({len(program.ops)} ops, "
              f"{exec_name}):")
        world = ExecutorWorld.build(factory, observe=True)
        if not _identity_one(world, list(program.ops), exec_name,
                             args.every_ops):
            bad += 1
    if bad:
        print(f"{bad} identity failure(s)")
        return 1
    print("byte-identity holds everywhere")
    return 0


def _probe(args) -> int:
    world, ops = SCENARIOS["fig5"]()
    world.run(ops)
    print(f"cycles={world.clock()}")
    print(f"fingerprint={live_fingerprint(world)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.snap",
        description="Snapshot/restore, record/replay, and "
                    "reverse-until-invariant time travel.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    def add_world_args(p):
        p.add_argument("--scenario", choices=sorted(SCENARIOS))
        p.add_argument("--program", help="counterexample artifact JSON")
        p.add_argument("--executor", default=DEFAULT_EXECUTOR,
                       help="executor for --program worlds")

    p_save = sub.add_parser("save", help="snapshot at an op boundary")
    add_world_args(p_save)
    p_save.add_argument("--at-op", type=int, default=None,
                        help="boundary to snapshot (default: end)")
    p_save.add_argument("--store", default=DEFAULT_STORE)

    p_restore = sub.add_parser("restore", help="revive a snapshot")
    add_world_args(p_restore)
    p_restore.add_argument("--key", required=True)
    p_restore.add_argument("--store", default=DEFAULT_STORE)
    p_restore.add_argument("--run-rest", action="store_true",
                           help="run the ops after the boundary")

    p_bisect = sub.add_parser(
        "bisect", help="first op violating an invariant")
    add_world_args(p_bisect)
    p_bisect.add_argument("--invariant", default="recovery",
                          choices=("recovery", "error"))
    p_bisect.add_argument("--every-ops", type=int, default=4)
    p_bisect.add_argument("--store", default=None,
                          help="also save the pre-violation snapshot")

    p_ident = sub.add_parser(
        "identity", help="byte-identity tier (CI contract)")
    p_ident.add_argument("--programs", type=int, default=20)
    p_ident.add_argument("--seed", type=int, default=0)
    p_ident.add_argument("--every-ops", type=int, default=4)

    sub.add_parser("probe",
                   help="canonical fingerprint of the fig5 demo")

    args = parser.parse_args(argv)
    return {"save": _save, "restore": _restore, "bisect": _bisect,
            "identity": _identity, "probe": _probe}[args.cmd](args)


if __name__ == "__main__":
    sys.exit(main())
