"""Record/replay: checkpointed execution over a world.

A :class:`Recorder` drives a world through its ops while taking
snapshots at op boundaries — always ``S_0`` before the first op, then
whenever *every_ops* ops or *every_cycles* simulated cycles have
elapsed since the last checkpoint.  Because the simulation is
deterministic and snapshots capture the complete state (including any
:class:`~repro.faults.FaultPlan` mid-plan: hit counters, PRNG, trace),
``restore(nearest checkpoint) + replay the suffix`` lands on exactly
the state — cycles, traces, PMU deltas — a straight-line run reaches.
That byte-identity is the contract the CI ``snap`` job enforces.

Checkpoints are cheap: physical memory pages are shared copy-on-write
with the previous checkpoint, so a checkpoint pays for the pages
dirtied since the last one, not for the whole address space.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.snap.core import Snapshot, capture, restore, world_clock


class Recorder:
    """Step a world, keeping op-boundary checkpoints and the op log."""

    def __init__(self, world, every_ops: Optional[int] = 1,
                 every_cycles: Optional[int] = None) -> None:
        if every_ops is None and every_cycles is None:
            raise ValueError(
                "Recorder needs every_ops and/or every_cycles")
        self.world = world
        self.every_ops = every_ops
        self.every_cycles = every_cycles
        self.ops: List[object] = []
        base = getattr(world, "op_index", 0)
        if base:
            raise ValueError(
                "Recorder must start at a fresh world (op_index 0) so "
                "checkpoint op indices line up with its op log")
        self.checkpoints: List[Snapshot] = [capture(world, op_index=0)]
        self._last_ck_op = 0
        self._last_ck_cycle = world_clock(world)

    # -- recording -----------------------------------------------------

    def step(self, op) -> object:
        outcome = self.world.step(op)
        self.ops.append(op)
        done = len(self.ops)
        cycle = world_clock(self.world)
        due = (self.every_ops is not None
               and done - self._last_ck_op >= self.every_ops)
        if (self.every_cycles is not None
                and cycle - self._last_ck_cycle >= self.every_cycles):
            due = True
        if due:
            self.checkpoints.append(capture(self.world, op_index=done))
            self._last_ck_op = done
            self._last_ck_cycle = cycle
        return outcome

    def run(self, ops: Sequence) -> List[object]:
        return [self.step(op) for op in ops]

    # -- replay --------------------------------------------------------

    def nearest(self, op_index: int) -> Snapshot:
        """The latest checkpoint at or before the boundary *before* op
        *op_index*."""
        best = self.checkpoints[0]
        for snapshot in self.checkpoints:
            if snapshot.op_index <= op_index:
                best = snapshot
        return best

    def resume(self, op_index: int):
        """A fresh live world positioned at the boundary just before op
        *op_index*: restore the nearest checkpoint, replay the gap."""
        if not 0 <= op_index <= len(self.ops):
            raise IndexError(
                f"op index {op_index} outside recorded range "
                f"0..{len(self.ops)}")
        snapshot = self.nearest(op_index)
        world = restore(snapshot)
        for op in self.ops[snapshot.op_index:op_index]:
            world.step(op)
        return world
