"""repro.snap — deterministic snapshot/restore, record/replay, and
reverse-until-invariant time travel for the whole simulated machine.

The simulation is already deterministic; this package makes that
determinism *navigable*:

* :func:`capture` / :func:`restore` — one-deepcopy snapshots of a
  world graph (hardware, kernel, XPC engine state, aio rings, fault
  plans, observability), content-addressed by a ``PYTHONHASHSEED``-
  stable :func:`fingerprint` and cheap via copy-on-write page sharing
  in :class:`~repro.hw.memory.PhysicalMemory`;
* :class:`Recorder` — checkpointed execution with
  restore-and-replay positioning (:meth:`Recorder.resume`), the
  byte-identity contract CI enforces on fig5/fig7-shaped workloads and
  the generated differential programs;
* :func:`reverse_until` — bisect a recorded timeline to the first op
  that breaks an invariant (:mod:`repro.verify.live` predicates or any
  custom one), returning the pre-violation snapshot and the minimal op
  window;
* :class:`PreFaultSnapper` — chaos-harness hook snapshotting the world
  immediately before every injected fault;
* ``python -m repro.snap`` — save/restore/bisect/identity/probe from
  the command line.

The proptest shrinker uses :class:`Recorder` checkpoints to restart
candidate probes from the longest common prefix instead of replaying
from op 0 (:mod:`repro.proptest.shrink`).
"""

from __future__ import annotations

from repro.snap.chaos import PreFaultSnapper
from repro.snap.core import (KEY_LEN, Snapshot, SnapshotStore, capture,
                             live_fingerprint, restore, world_clock)
from repro.snap.fingerprint import (SnapshotError, check_state_discipline,
                                    declared_state, fingerprint)
from repro.snap.record import Recorder
from repro.snap.timetravel import (TimeTravelResult, kernel_of,
                                   recovery_predicate, reverse_until)
from repro.snap.world import ExecutorWorld, SimWorld

__all__ = [
    "ExecutorWorld", "KEY_LEN", "PreFaultSnapper", "Recorder",
    "SimWorld", "Snapshot", "SnapshotError", "SnapshotStore",
    "TimeTravelResult", "capture", "check_state_discipline",
    "declared_state", "fingerprint", "kernel_of", "live_fingerprint",
    "recovery_predicate", "restore", "reverse_until", "world_clock",
]
