"""Pre-fault snapshots for the chaos harness.

:class:`PreFaultSnapper` chains itself onto ``repro.faults.OBSERVER``,
the hook :func:`repro.faults.fire` calls the moment a plan decides to
inject.  The observer runs *after* the plan has recorded the event in
its trace but *before* the fire site applies the action, so each
snapshot captures the world on the brink of the fault: the event is
already in the plan's trace (restoring and re-running the op replays
the decision without re-rolling it), the damage is not yet done.

Chaining composes with observability: enter ``obs.active(session)``
first (it installs the session's own fault observer), then the
snapper; injected faults are then both annotated on the span timeline
and snapshotted.  World ``step`` methods leave an already-installed
obs session in place for exactly this reason.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import repro.faults as faults
from repro.snap.core import Snapshot, capture


class PreFaultSnapper:
    """Snapshot *world* immediately before every injected fault."""

    def __init__(self, world, keep: Optional[int] = 8) -> None:
        self.world = world
        self.keep = keep
        #: ``(point, action, snapshot)`` per injection, oldest first
        #: (trimmed to the last *keep* when bounded).
        self.snapshots: List[Tuple[str, dict, Snapshot]] = []
        self.injections = 0
        self._prev = None
        self._armed = False

    def __enter__(self) -> "PreFaultSnapper":
        self._prev = faults.OBSERVER
        faults.OBSERVER = self._observe
        self._armed = True
        return self

    def __exit__(self, *exc) -> bool:
        faults.OBSERVER = self._prev
        self._armed = False
        return False

    def _observe(self, point: str, action: dict) -> None:
        self.injections += 1
        snapshot = capture(self.world,
                           op_index=getattr(self.world, "op_index",
                                            None))
        self.snapshots.append((point, dict(action), snapshot))
        if self.keep is not None and len(self.snapshots) > self.keep:
            del self.snapshots[:-self.keep]
        if self._prev is not None:
            self._prev(point, action)

    def last(self) -> Optional[Tuple[str, dict, Snapshot]]:
        return self.snapshots[-1] if self.snapshots else None
