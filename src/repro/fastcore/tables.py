"""Precomputed cycle tables: one ``CycleParams`` folded flat.

The reference engine charges cycles one ``tick()`` at a time as it
walks its state machines.  A :class:`CycleTable` adds those ticks up
*once*, at construction, for every path the hot loop can take:

====================  =====================================================
field                 reference tick sequence it folds
====================  =====================================================
``captest``           engine xcall floor (cap bit test + redirect); a
                      literal 6 in the engine (plus any seeded-bug
                      perturbation, see :attr:`perturb_captest_extra`)
``xcall``             captest + x-entry fetch + linkage-record push
``xret``              ``params.xret_base`` (return-time §3.3 check folded
                      into the instruction, per paper Table 3)
``as_switch``         address-space switch: TLB flush when untagged,
                      ``asid_switch`` when tagged
``tramp``             user trampoline (full or partial context) + XPC
                      context-stack switch
``seg_mask``          ``csrw seg-mask`` (literal 1 in the engine)
``swapseg``           ``params.swapseg``
``call_ok``           seg-mask write + xcall + AS switch + trampoline +
                      xret + AS switch — one full successful round trip,
                      excluding relay fill and handler work
``call_refused``      seg-mask write + captest-fail floor (denied cap or
                      invalid/zapped x-entry)
``register_xentry``   trap + REGISTER_LOGIC + restore
``grant``             trap + GRANT_LOGIC + restore
``kill``              KILL_ZAP_CYCLES (lazy zap; eager adds
                      LINK_SCAN_PER_RECORD per resident record — zero at
                      op boundaries)
``preempt``           trap + sched_pick + restore
``repair``            §4.2 repair_return with a live caller: trap + AS
                      switch back to the caller + restore
``thief_body``        relay-seg grab inside a thief handler: 4 KB seg
                      create + swapseg
``nested_scratch``    swapseg out + swapseg back around a scratch-seg
                      nested call
====================  =====================================================

Tables are cached per ``(params-fingerprint, config)`` so repeated
executor construction (every fuzz program builds a fresh fleet) reuses
the same folded sums.  The fingerprint includes
:attr:`CycleTable.perturb_captest_extra` so the seeded-bug hook takes
effect on the next build even when the params are otherwise cached.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.params import (CycleParams, DEFAULT_PARAMS, GRANT_LOGIC,
                          KILL_ZAP_CYCLES, REGISTER_LOGIC,
                          SEG_CREATE_PER_PAGE, SEG_MASK_WRITE,
                          XCALL_CAPTEST_FLOOR)

PAGE_BYTES = 4096


class CycleTable:
    """Flat per-path cycle sums for one ``(CycleParams, hw config)``."""

    __slots__ = (
        "params", "tagged", "partial", "nonblock", "cache",
        "captest", "xentry", "link", "xcall", "xret", "as_switch",
        "tramp", "seg_mask", "swapseg",
        "call_ok", "call_refused",
        "register_xentry", "grant", "kill", "preempt", "repair",
        "thief_body", "nested_scratch",
        "seg_create_4k", "seg_create_default",
    )

    #: Seeded-bug hook: extra cycles folded into the captest phase of
    #: every table built afterwards.  The equivalence gate must catch a
    #: perturbation of +1 (tests/proptest/test_fastcore_seeded_bug.py).
    perturb_captest_extra = 0

    def __init__(self, params: CycleParams, tagged: bool = False,
                 partial: bool = False, nonblock: bool = True,
                 cache: bool = False) -> None:
        self.params = params
        self.tagged = tagged
        self.partial = partial
        self.nonblock = nonblock
        self.cache = cache

        p = params
        self.captest = XCALL_CAPTEST_FLOOR + type(self).perturb_captest_extra
        self.xentry = p.xentry_cache_hit if cache else p.xentry_load
        self.link = p.link_push_nonblocking if nonblock else p.link_push
        self.xcall = self.captest + self.xentry + self.link
        self.xret = p.xret_base
        self.as_switch = p.asid_switch if tagged else p.tlb_flush
        self.tramp = (p.trampoline_partial_ctx if partial
                      else p.trampoline_full_ctx) + p.cstack_switch
        self.seg_mask = SEG_MASK_WRITE
        self.swapseg = p.swapseg

        self.call_ok = (self.seg_mask + self.xcall + self.as_switch
                        + self.tramp + self.xret + self.as_switch)
        self.call_refused = self.seg_mask + self.captest

        self.register_xentry = p.trap_enter + REGISTER_LOGIC + p.trap_restore
        self.grant = p.trap_enter + GRANT_LOGIC + p.trap_restore
        self.kill = KILL_ZAP_CYCLES
        self.preempt = p.trap_enter + p.sched_pick + p.trap_restore
        self.repair = p.trap_enter + self.as_switch + p.trap_restore
        self.seg_create_4k = self.seg_create(PAGE_BYTES)
        self.seg_create_default = self.seg_create(64 * 1024)
        self.thief_body = self.seg_create_4k + self.swapseg
        self.nested_scratch = 2 * self.swapseg

    # ------------------------------------------------------------------
    # Size-dependent paths (kept as tiny closed forms, not tables).
    # ------------------------------------------------------------------
    def fill(self, nbytes: int) -> int:
        """Relay-window fill cost for producing *nbytes* in place."""
        return int(nbytes * self.params.relay_fill_per_byte)

    def copy(self, nbytes: int) -> int:
        """Cross-segment memcpy (scratch-seg chain hop)."""
        return self.params.copy_cycles(nbytes)

    def seg_create(self, nbytes: int) -> int:
        """``create_relay_seg`` syscall: trap + per-page zap + restore."""
        pages = -(-max(nbytes, 1) // PAGE_BYTES)
        return (self.params.trap_enter + pages * SEG_CREATE_PER_PAGE
                + self.params.trap_restore)

    # ------------------------------------------------------------------
    # Fig. 5 ladder (one-way xcall -> handler entry, excluding the
    # context-stack switch the benchmark subtracts out).
    # ------------------------------------------------------------------
    def oneway(self) -> int:
        """xcall-to-handler-start cycles for this table's configuration."""
        return (self.captest + self.xentry + self.link + self.as_switch
                + self.tramp - self.params.cstack_switch)

    def roundtrip(self) -> int:
        """Full request/response engine cycles (``call_ok`` sans mask)."""
        return self.call_ok - self.seg_mask


_CACHE: Dict[Tuple, CycleTable] = {}
_CACHE_MAX = 64

#: CycleParams fields the table actually folds; the cache fingerprint
#: covers exactly these, so clones differing only in unrelated fields
#: (e.g. Binder costs) share one table.
_PARAM_FIELDS = (
    "tlb_flush", "asid_switch", "xret_base", "swapseg", "xentry_load",
    "xentry_cache_hit", "link_push", "link_push_nonblocking",
    "trampoline_full_ctx", "trampoline_partial_ctx", "cstack_switch",
    "trap_enter", "trap_restore", "sched_pick", "relay_fill_per_byte",
    "copy_setup", "copy_per_byte", "copy_per_byte_bulk",
    "copy_bulk_threshold",
)


def cycle_table(params: CycleParams = DEFAULT_PARAMS, tagged: bool = False,
                partial: bool = False, nonblock: bool = True,
                cache: bool = False) -> CycleTable:
    """Return a (cached) :class:`CycleTable` for *params* + config."""
    key = tuple(getattr(params, f) for f in _PARAM_FIELDS) + (
        tagged, partial, nonblock, cache,
        CycleTable.perturb_captest_extra,
    )
    table = _CACHE.get(key)
    if table is None:
        if len(_CACHE) >= _CACHE_MAX:
            _CACHE.clear()
        table = CycleTable(params, tagged=tagged, partial=partial,
                           nonblock=nonblock, cache=cache)
        _CACHE[key] = table
    return table
