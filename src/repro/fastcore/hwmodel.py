"""Flat re-implementations of the hot-path hardware models.

:class:`FastTLB` and :class:`FastEngineCache` mirror the observable
contracts of ``repro.hw.tlb.TLB`` and
``repro.xpc.engine_cache.XPCEngineCache`` — same hit/miss/evict/flush
semantics, same LRU and replacement order, same stats — with the
object graph flattened: ``__slots__`` everywhere, the per-set key
computation inlined, parallel tag/id/value arrays instead of line
tuples, and no fault-injection hook on the lookup path (the fast core
never runs under the chaos tier; the differential gate runs it only
against the clean reference).

They deliberately import *nothing* from ``repro.hw`` / ``repro.xpc``
(layering: fastcore depends only on ``repro.params``), so the contract
is pinned by tests, not by inheritance: the boundary suites in
``tests/hw/test_tlb_boundary.py`` and
``tests/xpc/test_engine_cache_boundary.py`` parametrize over both the
reference and the fast model and assert identical traces.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Page geometry, duplicated from repro.hw.memory by design (see module
#: docstring); the boundary tests assert the two constants agree.
PAGE_SHIFT = 12


class FastTLB:
    """LRU set-associative TLB with the lookup path flattened.

    Entries map ``(asid, vpn)`` -> ``(ppn, perm)``; untagged mode
    stores ASID 0 and flushes on every address-space switch, exactly
    like the reference.  Stats are plain slotted counters; ``stats``
    returns ``self`` so PMU-style readers (``tlb.stats.hits``) work
    unchanged.
    """

    __slots__ = ("sets", "ways", "tagged", "_sets",
                 "hits", "misses", "flushes")

    def __init__(self, entries: int = 256, ways: int = 4,
                 tagged: bool = False) -> None:
        if entries % ways:
            raise ValueError("entries must divide evenly into ways")
        self.sets = entries // ways
        self.ways = ways
        self.tagged = tagged
        self._sets = [{} for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    @property
    def stats(self) -> "FastTLB":
        return self

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def lookup(self, va: int, asid: int) -> Optional[Tuple[int, object]]:
        vpn = va >> PAGE_SHIFT
        tset = self._sets[vpn % self.sets]
        key = (asid if self.tagged else 0, vpn)
        entry = tset.get(key)
        if entry is None:
            self.misses += 1
            return None
        # Move-to-back refresh: dict insertion order is the LRU order.
        del tset[key]
        tset[key] = entry
        self.hits += 1
        return entry

    def insert(self, va: int, asid: int, pa_page: int, perm) -> None:
        vpn = va >> PAGE_SHIFT
        tset = self._sets[vpn % self.sets]
        key = (asid if self.tagged else 0, vpn)
        if key in tset:
            del tset[key]
        elif len(tset) >= self.ways:
            del tset[next(iter(tset))]
        tset[key] = (pa_page, perm)

    def invalidate(self, va: int, asid: int) -> None:
        vpn = va >> PAGE_SHIFT
        self._sets[vpn % self.sets].pop(
            (asid if self.tagged else 0, vpn), None)

    def flush_all(self) -> None:
        for tset in self._sets:
            tset.clear()
        self.flushes += 1

    def flush_asid(self, asid: int) -> None:
        if not self.tagged:
            self.flush_all()
            return
        for tset in self._sets:
            for key in [k for k in tset if k[0] == asid]:
                del tset[key]
        self.flushes += 1


class FastEngineCache:
    """Direct-mapped x-entry cache with parallel tag/id/entry arrays.

    Duck-typed against ``XPCEngineCache``: *table* only needs a
    ``load(entry_id)`` method (the reference ``XEntryTable`` works),
    and cached entries only need a ``valid`` attribute.
    """

    __slots__ = ("table", "entries", "tagged",
                 "_tags", "_ids", "_vals", "hits", "misses")

    def __init__(self, table, entries: int = 1,
                 tagged: bool = False) -> None:
        if entries <= 0:
            raise ValueError("engine cache needs at least one entry")
        self.table = table
        self.entries = entries
        self.tagged = tagged
        self._tags = [None] * entries
        self._ids = [-1] * entries
        self._vals = [None] * entries
        self.hits = 0
        self.misses = 0

    def prefetch(self, entry_id: int, thread: object = None) -> None:
        entry = self.table.load(entry_id)
        victim = entry_id % self.entries
        self._tags[victim] = thread if self.tagged else None
        self._ids[victim] = entry_id
        self._vals[victim] = entry

    def lookup(self, entry_id: int, thread: object = None):
        line = entry_id % self.entries
        if self._ids[line] == entry_id \
                and self._tags[line] == (thread if self.tagged else None):
            entry = self._vals[line]
            if entry is not None and entry.valid:
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def evict(self, entry_id: int) -> None:
        line = entry_id % self.entries
        if self._ids[line] == entry_id:
            self._tags[line] = None
            self._ids[line] = -1
            self._vals[line] = None

    def flush(self) -> None:
        self._tags = [None] * self.entries
        self._ids = [-1] * self.entries
        self._vals = [None] * self.entries
