"""Vectorized batch stepping for open-loop sweeps.

Two primitives, each with a numpy fast path and a bit-identical pure
Python fallback (the package never *requires* numpy):

* :func:`call_sweep_cycles` — per-message engine cycles for a vector
  of payload sizes on the synchronous fast path.  Sound to vectorize
  unconditionally: each call's cycle cost is a pure function of its
  size and the table, with no cross-call state.

* :func:`open_loop_completions` — completion times for an open-loop
  arrival process.  The *single-worker* case is a classic prefix
  recurrence (``finish[i] = max(arrive[i], finish[i-1]) + cost[i]``)
  and vectorizes exactly with a cumulative-sum identity; multi-worker
  scheduling is order-dependent (earliest-free-worker), so it always
  takes the heap fallback.  This boundary — vectorize only paths whose
  per-item cost is independent of execution order — is the "when is
  vectorized stepping sound" rule documented in DESIGN.md §17.

Both return plain Python lists so callers never see numpy types.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

try:
    import numpy as _np
    HAS_NUMPY = True
except ImportError:  # pragma: no cover - image always has numpy
    _np = None
    HAS_NUMPY = False

from repro.fastcore.tables import CycleTable


def _use_numpy(flag: Optional[bool]) -> bool:
    if flag is None:
        return HAS_NUMPY
    if flag and not HAS_NUMPY:
        raise RuntimeError("numpy requested but not importable")
    return flag


def call_sweep_cycles(table: CycleTable, sizes: Sequence[int],
                      use_numpy: Optional[bool] = None) -> List[int]:
    """Engine cycles per call for each payload size in *sizes*.

    One successful round trip (``table.call_ok``) plus the relay-window
    fill for the payload — the same sum the fast executor charges for a
    top-level echo call, and what the fig7-style size sweeps step.
    """
    base = table.call_ok
    fpb = table.params.relay_fill_per_byte
    if _use_numpy(use_numpy):
        arr = base + (_np.asarray(sizes, dtype=_np.float64)
                      * fpb).astype(_np.int64)
        return [int(x) for x in arr]
    return [base + int(n * fpb) for n in sizes]


def open_loop_completions(arrivals: Sequence[int], costs: Sequence[int],
                          workers: int = 1,
                          use_numpy: Optional[bool] = None,
                          ) -> Tuple[List[int], int]:
    """Completion time per request for an open-loop arrival stream.

    *arrivals* must be nondecreasing.  Returns ``(completions, wall)``
    where *wall* is the makespan.  ``workers == 1`` uses the vectorized
    prefix form when numpy is available; any ``workers > 1`` run is
    order-dependent and always uses the earliest-free-worker heap.
    """
    if len(arrivals) != len(costs):
        raise ValueError("arrivals and costs must be the same length")
    if not arrivals:
        return [], 0
    if workers == 1 and _use_numpy(use_numpy):
        a = _np.asarray(arrivals, dtype=_np.int64)
        c = _np.asarray(costs, dtype=_np.int64)
        # finish[i] = max(a[i], finish[i-1]) + c[i].  Substituting
        # finish = done + cumsum(c) turns the recurrence into a running
        # maximum of (a[i] - cumsum(c)[i-1]), which numpy accumulates.
        csum = _np.cumsum(c)
        slack = a - (csum - c)
        done = _np.maximum.accumulate(slack) + csum
        return [int(x) for x in done], int(done[-1])
    free = [0] * max(1, workers)
    heapq.heapify(free)
    out: List[int] = []
    for arrive, cost in zip(arrivals, costs):
        start = heapq.heappop(free)
        if start < arrive:
            start = arrive
        finish = start + cost
        heapq.heappush(free, finish)
        out.append(finish)
    return out, max(out)
