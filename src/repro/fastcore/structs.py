"""``__slots__`` record structs for the fast core.

Two families live here:

* :class:`FastService` — the fast executor's entire per-service state.
  One slotted record replaces the reference's process + thread +
  x-entry + capability + transport object graph.

* The ``*Shim`` classes — a minimal machine/kernel facade satisfying
  the attribute contracts the surrounding tooling reads:
  ``repro.obs`` PMU banks (``core.cycles``, ``core.trap_count``,
  ``core.tlb.stats.{hits,misses,flushes}``, ``core.xpc_engine``),
  the snapshot layer (``kernel.threads/processes/scheduler.queued``,
  ``machine.cores``), and the proptest harness
  (``executor.core.cycles`` deltas per op).

The shims carry *no* behaviour: the fast executor charges cycles by
adding table sums straight onto ``FastCoreShim.cycles``.
"""

from __future__ import annotations


class TLBStatsShim:
    __slots__ = ("hits", "misses", "flushes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.flushes = 0


class TLBShim:
    __slots__ = ("stats",)

    def __init__(self) -> None:
        self.stats = TLBStatsShim()


class FastCoreShim:
    """Just enough core for PMU sampling and per-op cycle deltas."""

    __slots__ = ("core_id", "cycles", "trap_count", "tlb", "xpc_engine")

    def __init__(self, core_id: int = 0) -> None:
        self.core_id = core_id
        self.cycles = 0
        self.trap_count = 0
        self.tlb = TLBShim()
        self.xpc_engine = None


class SchedulerShim:
    __slots__ = ("queued",)

    def __init__(self) -> None:
        self.queued = ()


class MachineShim:
    __slots__ = ("cores",)

    def __init__(self, cores) -> None:
        self.cores = list(cores)


class KernelShim:
    __slots__ = ("machine", "threads", "processes", "scheduler")

    def __init__(self, machine: MachineShim) -> None:
        self.machine = machine
        self.threads = {}
        self.processes = {}
        self.scheduler = SchedulerShim()


class FastService:
    """Everything the fast executor tracks for one registered service.

    ``granted`` mirrors the *client thread's* xcall capability for the
    service's main x-entry (chain threads hold blanket grants and async
    submissions bind at submit time, so neither consults it).
    ``scratch_made`` latches the one-time scratch-seg creation charge a
    chain service pays on its first non-handover hop
    (`XPCTransport._nested_seg` keys the segment by the chain thread).
    """

    __slots__ = ("name", "kind", "alive", "granted", "counter", "kv",
                 "scratch_made")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.alive = True
        self.granted = False
        self.counter = 0
        self.kv = {}
        self.scratch_made = False
