"""repro.fastcore: the flat, table-driven fast simulator core.

The reference stack (``repro.xpc`` + ``repro.hw`` + ``repro.kernel``)
simulates every xcall by actually walking the object graph: engine
state machines, TLB sets, link stacks, relay segments, trap frames.
That fidelity is the point of the reference — and the reason fuzz
throughput tops out around ~1100 ops/Mcycle of host time.

This package is the other half of the bargain: the *same* cycle
semantics, precomputed.  A :class:`~repro.fastcore.tables.CycleTable`
folds one ``CycleParams`` and one hardware configuration into flat
per-path cycle sums (xcall, xret, AS switch, trampoline, seg-create,
repair, ...), ``__slots__`` record structs replace the object graph,
and :mod:`repro.fastcore.batch` vectorizes open-loop sweeps (numpy
when available, pure Python otherwise).

The contract is *strict equivalence*, not approximation: the proptest
differential harness runs the fast core as a tenth executor and
requires identical outcomes **and** identical per-op cycle deltas
against the seL4-XPC reference on every fuzz program.  DESIGN.md §17
documents the table layout and the equivalence methodology.

Layering: this package may import nothing but :mod:`repro.params`.
The reference engine may never import this package (the
``fastcore-discipline`` lint rule in :mod:`repro.verify` enforces
both directions), so reference and fast core cannot accidentally
share implementation — only the differential gate ties them together.
"""

from repro.fastcore.batch import (HAS_NUMPY, call_sweep_cycles,
                                  open_loop_completions)
from repro.fastcore.hwmodel import FastEngineCache, FastTLB
from repro.fastcore.structs import (FastCoreShim, FastService, KernelShim,
                                    MachineShim, SchedulerShim, TLBShim)
from repro.fastcore.tables import CycleTable, cycle_table

__all__ = [
    "CycleTable",
    "FastCoreShim",
    "FastEngineCache",
    "FastService",
    "FastTLB",
    "HAS_NUMPY",
    "KernelShim",
    "MachineShim",
    "SchedulerShim",
    "TLBShim",
    "call_sweep_cycles",
    "cycle_table",
    "open_loop_completions",
]
