"""seL4 transports: the baseline endpoint path and the seL4-XPC port.

:class:`Sel4Transport` drives :meth:`Sel4Kernel.ipc_call` (fast/slow
path + shared memory, one or two copies).  :class:`Sel4XPCTransport` is
the paper's seL4-XPC port (§5.1): servers register x-entries through the
XPC library and clients ``xcall`` directly — no kernel trap, no copy.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hw.cpu import Core
from repro.ipc.transport import ServerRegistration, Transport
from repro.ipc.xpc_transport import XPCTransport
from repro.kernel.objects import Right
from repro.kernel.process import Thread
from repro.sel4.kernel import Sel4Kernel


class Sel4Transport(Transport):
    """Baseline seL4 endpoint IPC (copies = 1 → seL4-onecopy, 2 → two)."""

    __snap_state__ = Transport.__snap_state__ + (
        "kernel", "core", "client_thread", "copies", "name",
        "_client_slots")

    def __init__(self, kernel: Sel4Kernel, core: Core,
                 client_thread: Thread, copies: int = 2) -> None:
        super().__init__()
        self.kernel = kernel
        self.core = core
        self.client_thread = client_thread
        self.copies = copies
        self.name = f"seL4-{'one' if copies == 1 else 'two'}copy"
        self._client_slots: Dict[int, int] = {}

    def _bind(self, reg: ServerRegistration) -> None:
        server_slot = self.kernel.create_endpoint(
            reg.server_process, reg.name)
        self.kernel.bind_endpoint(
            reg.server_process, server_slot, reg.server_thread,
            reg.handler)
        client_slot = self.kernel.mint_endpoint_cap(
            reg.server_process, server_slot,
            self.client_thread.process, Right.SEND)
        self._client_slots[reg.sid] = client_slot

    def call(self, sid: int, meta: tuple = (), payload: bytes = b"",
             reply_capacity: int = 0,
             cross_core: bool = False,
             window_slice=None) -> Tuple[tuple, bytes]:
        self._reg(sid)  # validate the service id
        self.call_count += 1
        self.bytes_moved += len(payload)
        slot = self._client_slots[sid]
        self.kernel.run_thread(self.core, self.client_thread)
        result = self.kernel.ipc_call(
            self.core, self.client_thread, slot, meta, payload,
            reply_capacity=reply_capacity, copies=self.copies,
            cross_core=cross_core)
        self.ipc_cycles += self.kernel.last_mech_cycles
        return result


class Sel4XPCTransport(XPCTransport):
    """The seL4-XPC port: pure XPC data plane on the seL4 kernel."""

    name = "seL4-XPC"
