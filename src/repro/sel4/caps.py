"""seL4-style capability spaces.

seL4 "uses capabilities to manage all the kernel resources, including
IPC" (paper §2.2): every syscall names a slot in the caller's CSpace, and
the kernel validates the capability (type, rights) on the IPC fast path —
part of the 212-cycle "IPC logic" phase of Table 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.kernel.objects import KernelObject, Right


class CapError(Exception):
    """Capability lookup/permission failure (slow-path kernel fault)."""


class CapType(enum.Enum):
    ENDPOINT = "endpoint"
    NOTIFICATION = "notification"
    REPLY = "reply"
    UNTYPED = "untyped"
    FRAME = "frame"


@dataclass
class Capability:
    """One CSpace slot's contents."""

    ctype: CapType
    obj: KernelObject
    rights: Right = Right.ALL
    badge: int = 0

    def derive(self, rights: Right, badge: Optional[int] = None
               ) -> "Capability":
        """Mint a diminished copy (rights may only shrink)."""
        if rights & ~self.rights:
            raise CapError("cannot amplify rights while minting")
        return Capability(self.ctype, self.obj, rights,
                          self.badge if badge is None else badge)


class CSpace:
    """A per-process capability table (slot -> Capability)."""

    def __init__(self, slots: int = 4096) -> None:
        self.slots = slots
        self._table: Dict[int, Capability] = {}
        self._next_slot = 1

    def insert(self, cap: Capability) -> int:
        if len(self._table) >= self.slots:
            raise CapError("CSpace full")
        slot = self._next_slot
        self._next_slot += 1
        self._table[slot] = cap
        return slot

    def lookup(self, slot: int, ctype: Optional[CapType] = None,
               need: Right = Right.NONE) -> Capability:
        """Fast-path capability fetch + validity check."""
        cap = self._table.get(slot)
        if cap is None:
            raise CapError(f"empty capability slot {slot}")
        if ctype is not None and cap.ctype is not ctype:
            raise CapError(
                f"slot {slot} holds a {cap.ctype.value} cap, "
                f"expected {ctype.value}"
            )
        if need & ~cap.rights:
            raise CapError(f"slot {slot} lacks rights {need!r}")
        return cap

    def delete(self, slot: int) -> None:
        if slot not in self._table:
            raise CapError(f"delete of empty slot {slot}")
        del self._table[slot]

    def __len__(self) -> int:
        return len(self._table)
