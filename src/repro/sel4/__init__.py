"""A seL4-like microkernel: capability spaces, synchronous endpoints,
notifications, fast-path/slow-path IPC — plus the seL4-XPC port."""

from repro.sel4.caps import Capability, CapType, CSpace, CapError
from repro.sel4.endpoint import Endpoint
from repro.sel4.notification import Notification, WouldBlock
from repro.sel4.kernel import Sel4Kernel, IPCBreakdown
from repro.sel4.xpcglue import Sel4Transport, Sel4XPCTransport

__all__ = [
    "Capability", "CapType", "CSpace", "CapError", "Endpoint",
    "Notification", "WouldBlock", "Sel4Kernel", "IPCBreakdown",
    "Sel4Transport", "Sel4XPCTransport",
]
