"""seL4 notification objects: binary-semaphore style signalling.

Notifications are seL4's asynchronous primitive (used for interrupts
and cross-thread wakeups): ``signal`` bitwise-ORs the invoked
capability's badge into the notification word; ``wait`` consumes the
word, blocking if it is empty.  They complement the synchronous
endpoints the IPC evaluation measures.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.cpu import Core, TrapCause
from repro.kernel.objects import KernelObject, Right
from repro.kernel.process import Thread

#: Kernel logic beyond the trap for a signal/wait.
SIGNAL_LOGIC = 90
WAIT_LOGIC = 110


class WouldBlock(Exception):
    """A wait on an empty notification (the caller must block)."""


class Notification(KernelObject):
    """The notification word plus (at most) one blocked waiter."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.word = 0
        self.waiter: Optional[Thread] = None
        self.signals = 0

    def do_signal(self, badge: int) -> Optional[Thread]:
        """OR the badge in; return a waiter to wake, if any."""
        self.word |= badge
        self.signals += 1
        waiter, self.waiter = self.waiter, None
        return waiter

    def do_wait(self, thread: Thread) -> int:
        """Consume the word, or register *thread* and block."""
        if self.word:
            word, self.word = self.word, 0
            return word
        self.waiter = thread
        raise WouldBlock(f"{self} is empty")

    def do_poll(self) -> int:
        """Non-blocking wait: returns 0 instead of blocking."""
        word, self.word = self.word, 0
        return word
