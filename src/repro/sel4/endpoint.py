"""Synchronous IPC endpoints.

An endpoint is the rendezvous object of seL4's ``seL4_Call``.  In this
reproduction the server side is modeled by a bound handler function that
runs when a call arrives (the server thread is parked in ``recv`` on the
endpoint), which matches the paper's client/server measurement setup.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.kernel.objects import KernelObject
from repro.kernel.process import Thread


class Endpoint(KernelObject):
    """A synchronous endpoint with one bound receiver."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.server_thread: Optional[Thread] = None
        self.handler: Optional[Callable] = None
        self.calls = 0

    def bind(self, server_thread: Thread, handler: Callable) -> None:
        """Park *server_thread* receiving on this endpoint."""
        self.server_thread = server_thread
        self.handler = handler
        server_thread.sched.runnable = False  # blocked in recv

    @property
    def bound(self) -> bool:
        return self.handler is not None

    def deliver(self, meta: tuple, payload) -> Tuple[tuple, Optional[bytes]]:
        """Run the server handler (the callee side of the rendezvous)."""
        if not self.bound:
            raise RuntimeError(f"{self} has no receiver")
        self.calls += 1
        return self.handler(meta, payload)
