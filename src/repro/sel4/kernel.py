"""The seL4-like kernel: fast-path / slow-path synchronous IPC.

Reproduces the IPC anatomy of paper §2.2 and Table 1:

* **fast path** (no scheduling): trap → IPC logic (capability fetch and
  checks) → process switch (dequeue callee, reply cap, address-space
  switch) → restore.  Taken when caller and callee share a priority and a
  core and the message fits in registers (≤ 32 B) or rides shared memory
  (> 120 B).
* **slow path**: messages between 32 B and 120 B go through the IPC
  buffer with scheduling allowed (a 64 B message measures 2182 cycles).
* **shared memory** (> 120 B): the evaluation's seL4-onecopy (client
  copies into the shared buffer; TOCTTOU-exposed) and seL4-twocopy
  (server copies out again; safe) variants.
* **cross-core**: never fast path ("the caller and callee are not on the
  same core" forces the slow path) — IPI + remote wakeup + scheduler.

Every call records a per-phase :class:`IPCBreakdown` so the Table 1
benchmark can print the same rows the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.hw.cpu import Core, TrapCause
from repro.hw.paging import PagePerm
from repro.hw.memory import PAGE_SIZE
from repro.kernel.kernel import BaseKernel, KernelError
from repro.kernel.objects import Right
from repro.kernel.process import Process, Thread
from repro.sel4.caps import Capability, CapType, CSpace
from repro.sel4.endpoint import Endpoint

#: seL4 message-size regimes (paper §2.2 "IPC Logic").
MSG_REGISTERS_MAX = 32
MSG_IPCBUF_MAX = 120


@dataclass
class IPCBreakdown:
    """Cycles per fast-path phase, the paper's Table 1 rows."""

    trap: int = 0
    ipc_logic: int = 0
    process_switch: int = 0
    restore: int = 0
    transfer: int = 0
    path: str = "fast"

    @property
    def total(self) -> int:
        return (self.trap + self.ipc_logic + self.process_switch
                + self.restore + self.transfer)

    def rows(self):
        yield "Trap", self.trap
        yield "IPC Logic", self.ipc_logic
        yield "Process Switch", self.process_switch
        yield "Restore", self.restore
        yield "Message Transfer", self.transfer
        yield "Sum", self.total


class Sel4Kernel(BaseKernel):
    """seL4 personality on top of the common control plane."""

    def __init__(self, machine, name: str = "seL4") -> None:
        super().__init__(machine, name)
        self._cspaces: Dict[int, CSpace] = {}
        self._shared_bufs: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        self.last_breakdown: Optional[IPCBreakdown] = None
        self.last_oneway_cycles: int = 0
        #: Running total of message-transfer cycles (both directions),
        #: for the Figure 1(b) transfer-share measurement.
        self.transfer_cycles_total = 0

    # ------------------------------------------------------------------
    # CSpace / endpoint management
    # ------------------------------------------------------------------
    def cspace_of(self, process: Process) -> CSpace:
        cspace = self._cspaces.get(process.koid)
        if cspace is None:
            cspace = CSpace()
            self._cspaces[process.koid] = cspace
        return cspace

    def create_endpoint(self, process: Process, name: str = "") -> int:
        """Create an endpoint; returns its slot in *process*'s CSpace."""
        endpoint = Endpoint(name)
        cap = Capability(CapType.ENDPOINT, endpoint, Right.ALL)
        return self.cspace_of(process).insert(cap)

    def mint_endpoint_cap(self, owner: Process, slot: int,
                          target: Process, rights: Right,
                          badge: int = 0) -> int:
        """Copy a diminished endpoint cap into *target*'s CSpace."""
        cap = self.cspace_of(owner).lookup(slot, CapType.ENDPOINT)
        return self.cspace_of(target).insert(cap.derive(rights, badge))

    def bind_endpoint(self, process: Process, slot: int,
                      server_thread: Thread, handler) -> Endpoint:
        cap = self.cspace_of(process).lookup(
            slot, CapType.ENDPOINT, Right.RECV
        )
        endpoint: Endpoint = cap.obj
        endpoint.bind(server_thread, handler)
        return endpoint

    # ------------------------------------------------------------------
    # Notifications (async signalling; seL4's other IPC object)
    # ------------------------------------------------------------------
    def create_notification(self, process: Process,
                            name: str = "") -> int:
        from repro.sel4.notification import Notification
        # The owner's cap carries badge 1 so an un-minted signal still
        # sets a bit (binary-semaphore behaviour).
        cap = Capability(CapType.NOTIFICATION, Notification(name),
                         Right.ALL, badge=1)
        return self.cspace_of(process).insert(cap)

    def mint_notification_cap(self, owner: Process, slot: int,
                              target: Process, rights: Right,
                              badge: int = 1) -> int:
        cap = self.cspace_of(owner).lookup(slot, CapType.NOTIFICATION)
        return self.cspace_of(target).insert(cap.derive(rights, badge))

    def signal(self, core: Core, thread: Thread, slot: int) -> None:
        """``seL4_Signal``: OR the cap badge into the word, wake."""
        from repro.sel4.notification import SIGNAL_LOGIC
        cap = self.cspace_of(thread.process).lookup(
            slot, CapType.NOTIFICATION, Right.SEND)
        core.trap(TrapCause.SYSCALL)
        core.tick(SIGNAL_LOGIC)
        waiter = cap.obj.do_signal(cap.badge)
        if waiter is not None:
            self.scheduler.enqueue(core, waiter)
        core.trap_return()

    def wait(self, core: Core, thread: Thread, slot: int) -> int:
        """``seL4_Wait``: consume the word (raises WouldBlock if 0)."""
        from repro.sel4.notification import WAIT_LOGIC
        cap = self.cspace_of(thread.process).lookup(
            slot, CapType.NOTIFICATION, Right.RECV)
        core.trap(TrapCause.SYSCALL)
        core.tick(WAIT_LOGIC)
        try:
            return cap.obj.do_wait(thread)
        finally:
            core.trap_return()

    def poll(self, core: Core, thread: Thread, slot: int) -> int:
        """``seL4_Poll``: non-blocking wait."""
        from repro.sel4.notification import WAIT_LOGIC
        cap = self.cspace_of(thread.process).lookup(
            slot, CapType.NOTIFICATION, Right.RECV)
        core.trap(TrapCause.SYSCALL)
        core.tick(WAIT_LOGIC)
        word = cap.obj.do_poll()
        core.trap_return()
        return word

    # ------------------------------------------------------------------
    # Shared-memory regions for long messages (>120 B)
    # ------------------------------------------------------------------
    def shared_buffer(self, a: Process, b: Process,
                      nbytes: int) -> Tuple[int, int, int]:
        """Map (lazily, growing) a shared buffer between two processes.

        Returns ``(va_in_a, va_in_b, pa)``.  Real pages are mapped into
        both page tables, exactly the user-level sharing the paper's
        seL4 evaluation uses for long messages.
        """
        key = (min(a.koid, b.koid), max(a.koid, b.koid))
        existing = self._shared_bufs.get(key)
        size = _round_up(nbytes)
        if existing is not None and existing[3] >= size:
            return existing[:3]
        if existing is not None:
            a.aspace.page_table.unmap_range(existing[0], existing[3])
            b.aspace.page_table.unmap_range(existing[1], existing[3])
            self.machine.memory.free_contiguous(existing[2], existing[3])
        pa = self.machine.memory.alloc_contiguous(size)
        va_a = a.aspace._va_cursor
        a.aspace._va_cursor += size + PAGE_SIZE
        a.aspace.page_table.map_range(va_a, pa, size, PagePerm.RW)
        va_b = b.aspace._va_cursor
        b.aspace._va_cursor += size + PAGE_SIZE
        b.aspace.page_table.map_range(va_b, pa, size, PagePerm.RW)
        self._shared_bufs[key] = (va_a, va_b, pa, size)
        return va_a, va_b, pa

    # ------------------------------------------------------------------
    # The IPC data plane
    # ------------------------------------------------------------------
    def ipc_call(self, core: Core, caller: Thread, slot: int,
                 meta: tuple = (), payload: bytes = b"",
                 reply_capacity: int = 0, copies: int = 2,
                 cross_core: bool = False) -> Tuple[tuple, bytes]:
        """``seL4_Call``: request + reply through an endpoint.

        *copies* selects the long-message variant: 1 = seL4-onecopy
        (in-place shared buffer on the server side), 2 = seL4-twocopy.
        """
        if copies not in (1, 2):
            raise KernelError("copies must be 1 or 2")
        cspace = self.cspace_of(caller.process)
        start = core.cycles
        cap = cspace.lookup(slot, CapType.ENDPOINT, Right.SEND)
        #: The badge of the invoked cap identifies the caller to the
        #: server (seL4's badged-endpoint idiom).
        self.last_badge = cap.badge
        endpoint: Endpoint = cap.obj
        if not endpoint.bound:
            raise KernelError(f"{endpoint} has no receiver")
        server = endpoint.server_thread
        n = len(payload)

        breakdown = self._send_phases(core, caller, server, n,
                                      cross_core=cross_core)
        payload_obj, reply_writer = self._transfer(
            core, caller, server, payload, breakdown, copies,
            reply_capacity, cross_core)
        self.last_oneway_cycles = core.cycles - start
        self.last_breakdown = breakdown
        self.ipc_stats["calls"] += 1
        self.ipc_stats["bytes"] += n

        # --- the server runs (callee context) --------------------------
        core.current_thread = server
        handler_start = core.cycles
        reply_meta, reply = endpoint.deliver(meta, payload_obj)
        handler_cycles = core.cycles - handler_start

        # --- reply direction -------------------------------------------
        if isinstance(reply, int):
            raise KernelError(
                "in-place (int) replies are an XPC-transport feature; "
                "seL4 handlers must return bytes or None"
            )
        reply_bytes = reply_writer(reply or b"")
        self._send_phases(core, server, caller, len(reply_bytes),
                          cross_core=cross_core)
        core.current_thread = caller
        core.set_address_space(caller.process.aspace, charge=False)
        self.last_mech_cycles = (core.cycles - start) - handler_cycles
        return reply_meta, reply_bytes

    # -- internals ---------------------------------------------------------
    def _send_phases(self, core: Core, src: Thread, dst: Thread,
                     nbytes: int, cross_core: bool) -> IPCBreakdown:
        """Charge the per-phase domain-switch costs of one IPC direction."""
        p = self.params
        scale = min(1.0, nbytes / 4096) if nbytes > MSG_REGISTERS_MAX else 0.0
        extra = {k: int(v * scale) for k, v in p.phase_4k_extra.items()}
        bd = IPCBreakdown(
            trap=p.trap_enter + extra["trap"],
            ipc_logic=p.ipc_logic + extra["ipc_logic"],
            process_switch=p.process_switch + extra["process_switch"],
            restore=p.trap_restore + extra["restore"],
        )
        # §2.2's slow-path conditions: different priorities, different
        # cores, or a register-overflowing but sub-buffer message.
        slow = (cross_core
                or src.sched.priority != dst.sched.priority
                or MSG_REGISTERS_MAX < nbytes <= MSG_IPCBUF_MAX)
        core.trap(TrapCause.SYSCALL)
        core.tick(bd.trap - p.trap_enter)  # extras beyond the base trap
        core.tick(bd.ipc_logic)
        if slow:
            bd.path = "slow"
            core.tick(p.slowpath_extra)
            self.scheduler.block(core, src)
            self.scheduler.enqueue(core, dst)
            picked = self.scheduler.pick_next(core)
            if picked is not None:
                self.scheduler.context_switch(core, picked)
        if cross_core:
            bd.path = "cross-core"
            core.tick(p.ipi_cost + p.remote_wakeup)
        core.tick(bd.process_switch)
        core.set_address_space(dst.process.aspace, charge=False)
        core.tick(bd.restore - p.trap_restore)
        core.trap_return()
        return bd

    def _transfer(self, core: Core, caller: Thread, server: Thread,
                  payload: bytes, breakdown: IPCBreakdown, copies: int,
                  reply_capacity: int, cross_core: bool):
        """Move the request payload; return (payload_obj, reply_writer)."""
        from repro.ipc.transport import CopiedPayload

        p = self.params
        n = len(payload)
        remote_factor = 2.0 if cross_core else 1.0

        def _charge(nbytes: int, request_side: bool) -> None:
            if nbytes:
                cost = int(p.copy_cycles(nbytes) * remote_factor)
                if request_side:
                    # last_breakdown reports the one-way (request)
                    # direction, matching Table 1's presentation.
                    breakdown.transfer += cost
                self.transfer_cycles_total += cost
                core.tick(cost)
                self.bytes_copied = getattr(self, "bytes_copied", 0) + nbytes

        def charge_copy(nbytes: int) -> None:
            _charge(nbytes, request_side=True)

        def charge_reply_copy(nbytes: int) -> None:
            _charge(nbytes, request_side=False)

        if n <= MSG_REGISTERS_MAX:
            payload_obj = CopiedPayload(payload, reply_capacity)

            def reply_writer(reply: bytes) -> bytes:
                if len(reply) > MSG_REGISTERS_MAX:
                    charge_reply_copy(len(reply) * copies)
                return reply
            return payload_obj, reply_writer

        if n <= MSG_IPCBUF_MAX:
            charge_copy(n)  # kernel copies through the IPC buffer
            payload_obj = CopiedPayload(payload, reply_capacity)

            def reply_writer(reply: bytes) -> bytes:
                charge_reply_copy(len(reply))
                return reply
            return payload_obj, reply_writer

        # Long message: user-level shared memory.
        size = max(n, reply_capacity)
        va_a, va_b, pa = self.shared_buffer(
            caller.process, server.process, size)
        # Client fills the shared buffer (copy #1, always needed: "the
        # data still needs to be copied to the shared memory at first").
        self.machine.memory.write(pa, payload)
        charge_copy(n)
        if copies == 2:
            charge_copy(n)  # server copies out to defeat TOCTTOU
        payload_obj = CopiedPayload(self.machine.memory.read(pa, n),
                                    reply_capacity)

        def reply_writer(reply: bytes) -> bytes:
            if reply:
                self.machine.memory.write(pa, reply)
                charge_reply_copy(len(reply))
                if copies == 2:
                    charge_reply_copy(len(reply))
            return reply
        return payload_obj, reply_writer


def _round_up(nbytes: int) -> int:
    return (nbytes + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
