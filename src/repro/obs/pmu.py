"""The PMU model: per-core and per-engine hardware counter banks.

A real XPC deployment would expose its engine counters the way the
paper's authors read RocketChip's HPM counters (§5.6): per-core banks
sampled with snapshot/delta/reset semantics.  This module reproduces
that surface over the simulator:

* **derived counters** are sampled straight off the hardware models at
  snapshot time — core cycles and trap counts, TLB hit/miss/flush,
  engine xcall/xret/swapseg/prefetch/exception counts, x-entry engine
  cache hits and misses, relay-seg transfer/shrink/swap activity, and
  the link-stack depth high-watermark;
* **event counters** are pushed by instrumentation sites through
  :meth:`PMU.add` — most importantly the cycles-by-phase breakdown of
  Figure 5 (``cycles.xcall.captest`` + ``cycles.xcall.xentry`` +
  ``cycles.xcall.linkpush`` always sums to the engine's reported
  ``xcall.cycles``).

The PMU never charges cycles and never mutates simulator state; reads
are free, exactly like the memory-mapped counter reads the paper's
record-and-replay methodology relies on.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

#: Counter names reported as *levels* (sampled raw, never
#: baseline-subtracted by reset): high-watermarks and populations.
LEVEL_SUFFIXES = (".hwm", ".depth", ".alive", ".queued")


def _is_level(name: str) -> bool:
    return name.endswith(LEVEL_SUFFIXES)


class PMUSnapshot:
    """An immutable sample of every bank: ``{bank: {counter: value}}``."""

    def __init__(self, banks: Dict[str, Dict[str, int]]) -> None:
        self._banks = {label: dict(counters)
                       for label, counters in banks.items()}

    @property
    def banks(self) -> Dict[str, Dict[str, int]]:
        return {label: dict(counters)
                for label, counters in self._banks.items()}

    def bank(self, label: str) -> Dict[str, int]:
        return dict(self._banks.get(label, {}))

    def get(self, bank: str, counter: str, default: int = 0) -> int:
        return self._banks.get(bank, {}).get(counter, default)

    def total(self, counter: str) -> int:
        """Sum of *counter* across every bank that carries it."""
        return sum(counters.get(counter, 0)
                   for counters in self._banks.values())

    def labels(self) -> List[str]:
        return sorted(self._banks)

    def as_dict(self) -> dict:
        return self.banks

    def __sub__(self, older: "PMUSnapshot") -> "PMUSnapshot":
        """Delta between two snapshots (level counters keep the newer
        value — a high-watermark difference is meaningless)."""
        out: Dict[str, Dict[str, int]] = {}
        for label, counters in self._banks.items():
            old = older._banks.get(label, {})
            out[label] = {
                name: (value if _is_level(name)
                       else value - old.get(name, 0))
                for name, value in counters.items()
            }
        return PMUSnapshot(out)


class _CoreBank:
    """One core's counter bank: the core, its engine, its events."""

    def __init__(self, core, label: str) -> None:
        self.core = core
        self.label = label
        self.events: Dict[str, int] = {}
        self.baseline: Dict[str, int] = {}

    def sample_derived(self) -> Dict[str, int]:
        core = self.core
        out = {
            "cycles": core.cycles,
            "traps": core.trap_count,
            "tlb.hits": core.tlb.stats.hits,
            "tlb.misses": core.tlb.stats.misses,
            "tlb.flushes": core.tlb.stats.flushes,
        }
        engine = core.xpc_engine
        if engine is not None:
            stats = engine.stats
            out.update({
                "xcall.count": stats.xcalls,
                "xcall.cycles": stats.xcall_cycles,
                "xret.count": stats.xrets,
                "xret.cycles": stats.xret_cycles,
                "swapseg.count": stats.swapsegs,
                "prefetch.count": stats.prefetches,
                "xpc.exceptions": stats.exceptions,
                "relay.transfers": stats.seg_transfers,
                "relay.shrinks": stats.seg_shrinks,
                "relay.bytes_passed": stats.seg_bytes_passed,
            })
            if engine.cache is not None:
                out["xentry_cache.hits"] = engine.cache.hits
                out["xentry_cache.misses"] = engine.cache.misses
        return out

    def sample(self) -> Dict[str, int]:
        raw = self.sample_derived()
        raw.update(self.events)
        return {
            name: (value if _is_level(name)
                   else value - self.baseline.get(name, 0))
            for name, value in raw.items()
        }

    def reset(self) -> None:
        self.events.clear()
        self.baseline = self.sample_derived()


class _KernelBank:
    """Control-plane levels sampled off one kernel instance."""

    def __init__(self, kernel, label: str) -> None:
        self.kernel = kernel
        self.label = label

    def sample(self) -> Dict[str, int]:
        kernel = self.kernel
        hwm = spilled = depth = 0
        for thread in kernel.threads:
            stack = thread.xpc.link_stack
            hwm = max(hwm, stack.high_watermark)
            spilled += stack.spilled_depth
            depth += stack.depth
        return {
            "link_stack.hwm": hwm,
            "link_stack.depth": depth,
            "link_stack.spilled.depth": spilled,
            "processes.alive": sum(1 for p in kernel.processes if p.alive),
            "threads.alive": sum(1 for t in kernel.threads if t.alive),
            "sched.queued": kernel.scheduler.queued,
        }


class PMU:
    """The machine-wide PMU: one bank per core plus kernel banks.

    Cores register through :meth:`attach_machine` (called automatically
    by :class:`~repro.hw.machine.Machine` while a session is active) or
    lazily on the first :meth:`add` for an unknown core.
    """

    __snap_state__ = ("_core_banks", "_kernel_banks", "_machines",
                      "_kernels")

    def __init__(self) -> None:
        self._core_banks: Dict[int, _CoreBank] = {}   # id(core) -> bank
        self._kernel_banks: Dict[int, _KernelBank] = {}
        self._machines = 0
        self._kernels = 0

    def __deepcopy__(self, memo: dict) -> "PMU":
        """Banks are keyed by ``id(core)``/``id(kernel)``; a snapshot
        copy must re-key by the *copied* objects' ids or the restored
        PMU would sample the pre-snapshot machine."""
        dup = PMU.__new__(PMU)
        memo[id(self)] = dup
        dup._machines = self._machines
        dup._kernels = self._kernels
        dup._core_banks = {}
        for bank in self._core_banks.values():
            new_bank = copy.deepcopy(bank, memo)
            dup._core_banks[id(new_bank.core)] = new_bank
        dup._kernel_banks = {}
        for kbank in self._kernel_banks.values():
            new_kbank = copy.deepcopy(kbank, memo)
            dup._kernel_banks[id(new_kbank.kernel)] = new_kbank
        return dup

    def __snap_fingerprint__(self):
        """Canonical identity: banks in registration order, without the
        raw ``id()`` keys (which differ across restores by design)."""
        return ("PMU", self._machines, self._kernels,
                list(self._core_banks.values()),
                list(self._kernel_banks.values()))

    # -- registration --------------------------------------------------
    def attach_machine(self, machine) -> None:
        prefix = "" if self._machines == 0 else f"m{self._machines}."
        self._machines += 1
        for core in machine.cores:
            self._ensure_core(core, f"{prefix}core{core.core_id}")

    def attach_kernel(self, kernel) -> None:
        label = "kernel" if self._kernels == 0 else f"kernel{self._kernels}"
        self._kernels += 1
        self._kernel_banks[id(kernel)] = _KernelBank(kernel, label)

    def _ensure_core(self, core, label: Optional[str] = None) -> _CoreBank:
        bank = self._core_banks.get(id(core))
        if bank is None:
            bank = _CoreBank(core, label or f"core{core.core_id}")
            self._core_banks[id(core)] = bank
        return bank

    # -- event counters ------------------------------------------------
    def add(self, core, name: str, n: int = 1) -> None:
        """Increment event counter *name* in *core*'s bank."""
        events = self._ensure_core(core).events
        events[name] = events.get(name, 0) + n

    # -- snapshot / delta / reset --------------------------------------
    def snapshot(self) -> PMUSnapshot:
        banks: Dict[str, Dict[str, int]] = {}
        for bank in self._core_banks.values():
            banks[bank.label] = bank.sample()
        for kbank in self._kernel_banks.values():
            banks[kbank.label] = kbank.sample()
        return PMUSnapshot(banks)

    @staticmethod
    def delta(older: PMUSnapshot, newer: PMUSnapshot) -> PMUSnapshot:
        return newer - older

    def reset(self) -> None:
        """Zero every bank: event counters clear, derived counters
        re-baseline, so the next snapshot reads deltas from here."""
        for bank in self._core_banks.values():
            bank.reset()
