"""``python -m repro.obs`` — render perf reports and Chrome traces
from run artifacts.

Artifacts are the JSON files :meth:`repro.obs.ObsSession.report`
produces; benchmarks drop them under ``benchmarks/obs/`` when run with
``REPRO_OBS=1``.  Examples:

    python -m repro.obs                          # report every artifact
    python -m repro.obs benchmarks/obs/fig7_fs_xpc.json
    python -m repro.obs --trace out.trace.json   # merged Perfetto trace
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.obs.report import merge_traces, render_report

DEFAULT_ARTIFACT_DIR = Path("benchmarks/obs")


def _collect(paths: List[str]) -> List[Path]:
    if not paths:
        paths = [str(DEFAULT_ARTIFACT_DIR)]
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        elif path.is_file():
            files.append(path)
        else:
            raise SystemExit(f"repro.obs: no such artifact: {path}")
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render perf reports / Chrome traces from "
                    "repro.obs run artifacts.")
    parser.add_argument(
        "paths", nargs="*",
        help=f"artifact files or directories (default: "
             f"{DEFAULT_ARTIFACT_DIR}/)")
    parser.add_argument(
        "--report", metavar="OUT", default="-",
        help="write the rendered report here ('-' = stdout, default)")
    parser.add_argument(
        "--trace", metavar="OUT",
        help="write a merged Chrome trace_event JSON (load it at "
             "ui.perfetto.dev or chrome://tracing)")
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows in the hot-path table (default 20)")
    opts = parser.parse_args(argv)

    files = _collect(opts.paths)
    if not files:
        print("repro.obs: no artifacts found (run benchmarks with "
              "REPRO_OBS=1 first)", file=sys.stderr)
        return 1

    artifacts = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            artifacts.append(json.load(handle))

    report = "\n\n".join(
        render_report(artifact, top=opts.top) for artifact in artifacts)

    # Cross-artifact loss summary: silent data loss in any run makes
    # every aggregate above it suspect, so it gets the closing line.
    def _total(key: str) -> int:
        return sum(a.get("spans", {}).get(key, 0) for a in artifacts)

    summary = (f"summary: {len(artifacts)} artifacts, "
               f"{_total('finished')} spans finished, "
               f"{_total('dropped')} dropped, "
               f"{_total('legacy_dropped')} legacy events dropped, "
               f"{_total('truncated')} truncated, "
               f"{_total('repaired')} repaired")
    report += "\n\n" + summary
    if opts.report == "-":
        print(report)
    else:
        Path(opts.report).write_text(report + "\n", encoding="utf-8")
        print(f"repro.obs: report -> {opts.report}", file=sys.stderr)

    if opts.trace:
        trace = merge_traces(artifacts)
        with open(opts.trace, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
        print(f"repro.obs: {len(trace['traceEvents'])} events -> "
              f"{opts.trace}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
