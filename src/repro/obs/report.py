"""The perf-report pipeline: span aggregation and plain-text rendering.

Turns one run artifact (the dict :meth:`ObsSession.report` produces,
usually persisted as ``benchmarks/obs/*.json``) into the per-run perf
report ``python -m repro.obs`` prints: top hot paths by self-cycles,
PMU counter tables, registry counters, and histogram percentiles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.report import render_table


def aggregate_spans(spans: Iterable) -> List[dict]:
    """Aggregate finished :class:`~repro.obs.span.Span` objects by name.

    ``self`` cycles are the span's duration minus the durations of its
    *direct* children — the classic profile decomposition, so hot-path
    ranking points at the layer that actually burned the cycles.
    """
    spans = list(spans)
    child_cycles: Dict[int, int] = {}
    for span in spans:
        if span.parent_id is not None:
            child_cycles[span.parent_id] = (
                child_cycles.get(span.parent_id, 0) + span.duration)
    rows: Dict[str, dict] = {}
    for span in spans:
        row = rows.setdefault(span.name, {
            "name": span.name, "cat": span.cat, "count": 0,
            "total_cycles": 0, "self_cycles": 0, "max_cycles": 0,
        })
        self_cycles = span.duration - child_cycles.get(span.span_id, 0)
        row["count"] += 1
        row["total_cycles"] += span.duration
        row["self_cycles"] += max(self_cycles, 0)
        row["max_cycles"] = max(row["max_cycles"], span.duration)
    out = sorted(rows.values(),
                 key=lambda r: r["self_cycles"], reverse=True)
    for row in out:
        row["avg_cycles"] = round(row["total_cycles"] / row["count"], 1)
    return out


def render_hot_paths(summary: Sequence[dict], top: int = 20) -> str:
    rows = [[r["name"], r["cat"], r["count"], r["total_cycles"],
             r["self_cycles"], r["avg_cycles"], r["max_cycles"]]
            for r in summary[:top]]
    title = "Top hot paths (by self cycles)"
    if len(summary) > top:
        title += f" — top {top} of {len(summary)}"
    return render_table(
        title,
        ["span", "cat", "calls", "total cyc", "self cyc", "avg", "max"],
        rows)


def render_pmu(pmu: Dict[str, Dict[str, int]]) -> str:
    rows = []
    for bank in sorted(pmu):
        for counter in sorted(pmu[bank]):
            rows.append([bank, counter, pmu[bank][counter]])
    return render_table("PMU counters", ["bank", "counter", "value"], rows)


def render_counters(metrics: dict) -> str:
    rows = []
    for name, data in sorted(metrics.get("counters", {}).items()):
        rows.append([name, data["value"], data["updated_cycle"]])
    for name, data in sorted(metrics.get("gauges", {}).items()):
        rows.append([f"{name} (gauge)", data["value"],
                     data["updated_cycle"]])
    return render_table("Registry counters & gauges",
                        ["metric", "value", "last cycle"], rows)


def render_histograms(metrics: dict) -> str:
    rows = []
    for name, data in sorted(metrics.get("histograms", {}).items()):
        pct = data.get("percentiles", {})
        rows.append([name, data["count"], data["mean"],
                     pct.get("p50", "-"), pct.get("p90", "-"),
                     pct.get("p99", "-"), data["max"]])
    return render_table(
        "Histograms (cycles unless noted)",
        ["histogram", "count", "mean", "p50", "p90", "p99", "max"], rows)


def render_report(artifact: dict, top: int = 20) -> str:
    """The full perf report for one run artifact."""
    title = artifact.get("title", "run")
    spans = artifact.get("spans", {})
    header = (f"perf report: {title}\n"
              f"spans: {spans.get('finished', 0)} finished, "
              f"{spans.get('dropped', 0)} dropped, "
              f"{spans.get('truncated', 0)} truncated, "
              f"{spans.get('repaired', 0)} repaired")
    loss = (spans.get("dropped", 0)
            + spans.get("legacy_dropped", 0))
    if loss:
        # Data loss is a report headline, not a buried field: a ring
        # that overflowed means the hot-path table under-counts.
        header += (f"\nWARNING: {loss} events lost "
                   f"({spans.get('dropped', 0)} spans past ring "
                   f"capacity, {spans.get('legacy_dropped', 0)} legacy "
                   f"trace events) — raise REPRO_OBS_SPANS")
    sections = [header]
    profile = artifact.get("profile")
    if profile:
        flag = ("complete" if profile.get("complete")
                else "INCOMPLETE")
        header = (f"cycle profile: {profile.get('attributed_cycles', 0)}"
                  f" of {profile.get('clock_cycles', 0)} clock cycles "
                  f"attributed ({flag}), "
                  f"{len(profile.get('collapsed', {}))} stacks")
        sections.append(header)
    summary = artifact.get("span_summary") or []
    if summary:
        sections.append(render_hot_paths(summary, top))
    pmu = artifact.get("pmu") or {}
    if pmu:
        sections.append(render_pmu(pmu))
    metrics = artifact.get("metrics") or {}
    if metrics.get("counters") or metrics.get("gauges"):
        sections.append(render_counters(metrics))
    if metrics.get("histograms"):
        sections.append(render_histograms(metrics))
    return "\n\n".join(sections)


def merge_traces(artifacts: Sequence[dict]) -> dict:
    """One Chrome trace from many artifacts (pid = run title)."""
    events: List[dict] = []
    for artifact in artifacts:
        events.extend(artifact.get("trace_events", []))
    events.sort(key=lambda e: e.get("ts", 0))
    return {"traceEvents": events, "displayTimeUnit": "ns"}
