"""The metrics registry: counters, gauges, and histograms on the cycle clock.

Every instrumentation site in the stack reports through a
:class:`MetricsRegistry` (never by poking counter state directly — the
``obs-discipline`` lint rule enforces that).  Metrics are *keyed on the
simulated cycle clock*: each update carries the cycle at which it
happened, so a metric can be correlated with the span timeline and the
PMU snapshots of the same run.

Nothing in this module charges cycles or touches simulator state: the
registry is a pure observer, which is what keeps obs-on and obs-off runs
cycle-identical.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import percentile

#: Histograms keep at most this many raw samples; older samples are
#: discarded ring-buffer style but ``count``/``total`` keep accumulating.
DEFAULT_HISTOGRAM_CAPACITY = 65_536


class Metric:
    """Common identity for every metric kind."""

    kind = "metric"

    def __init__(self, name: str) -> None:
        self.name = name
        self.updated_cycle = 0      # cycle clock of the last update

    def _touch(self, cycle: Optional[int]) -> None:
        if cycle is not None and cycle > self.updated_cycle:
            self.updated_cycle = cycle


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0

    def inc(self, n: int = 1, cycle: Optional[int] = None) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n
        self._touch(cycle)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value,
                "updated_cycle": self.updated_cycle}


class Gauge(Metric):
    """A point-in-time value (queue depth, breaker state, ...)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0

    def set(self, value, cycle: Optional[int] = None) -> None:
        self.value = value
        self._touch(cycle)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value,
                "updated_cycle": self.updated_cycle}


class Histogram(Metric):
    """A distribution of observations (latencies in cycles, sizes...).

    Keeps a bounded window of raw samples for percentiles; ``count`` and
    ``total`` cover every observation ever made.  Optional *buckets*
    (sorted upper boundaries, right-closed like Prometheus: bucket *i*
    covers ``(bounds[i-1], bounds[i]]``) add fixed cumulative bins that
    never forget: once the sample ring has overflowed, percentiles fall
    back to boundary-exact bucket interpolation instead of silently
    computing over whatever window survived.
    """

    kind = "histogram"

    def __init__(self, name: str,
                 capacity: int = DEFAULT_HISTOGRAM_CAPACITY,
                 buckets: Optional[Sequence[float]] = None) -> None:
        if capacity <= 0:
            raise ValueError("histogram capacity must be positive")
        super().__init__(name)
        self.capacity = capacity
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._cursor = 0            # ring-buffer write position
        if buckets is not None:
            bounds = [float(b) for b in buckets]
            if not bounds:
                raise ValueError("bucket boundary list is empty")
            if sorted(set(bounds)) != bounds:
                raise ValueError(
                    "bucket boundaries must be strictly increasing")
            self.bucket_bounds: Optional[List[float]] = bounds
            # One bin per boundary plus the overflow bin above the last.
            self.bucket_counts: Optional[List[int]] = (
                [0] * (len(bounds) + 1))
        else:
            self.bucket_bounds = None
            self.bucket_counts = None

    def observe(self, value, cycle: Optional[int] = None) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.capacity
        if self.bucket_bounds is not None:
            self.bucket_counts[bisect_left(self.bucket_bounds,
                                           value)] += 1
        self._touch(cycle)

    @property
    def samples(self) -> Tuple[float, ...]:
        """The retained sample window (read-only)."""
        return tuple(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The *p*-th percentile of the distribution.

        While the sample ring still holds every observation the answer
        is exact (sorted-window interpolation).  Once observations have
        been evicted, a bucketed histogram switches to
        :meth:`bucket_percentile` — an estimate over the full history —
        instead of pretending the surviving window is the population.
        """
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if (self.bucket_bounds is not None
                and self.count > len(self._samples)):
            return self.bucket_percentile(p)
        return percentile(self._samples, p)

    def bucket_percentile(self, p: float) -> float:
        """Percentile estimated from the cumulative bucket counts.

        Uses the same fractional-rank convention as the sorted-list
        oracle (rank ``(p/100)·(count-1)``), locating each integer rank
        in its bucket by cumulative count and interpolating linearly
        inside the bucket.  Boundary-exact by construction: a bucket's
        bottom rank maps to its (clamped) lower bound and its top rank
        to the upper boundary itself — an estimate never bleeds past a
        boundary into a neighboring bucket, so a rank that the oracle
        resolves inside bucket *i* always yields a value within bucket
        *i*'s bounds, and ``p0``/``p100`` return the exact observed
        ``min``/``max``.  The overall result is clamped to
        ``[min, max]``.
        """
        if self.bucket_bounds is None:
            raise ValueError(f"histogram {self.name!r} has no buckets")
        if not self.count:
            raise ValueError(f"histogram {self.name!r} has no samples")
        p = min(max(p, 0.0), 100.0)
        rank = (p / 100.0) * (self.count - 1)
        lo_rank = int(rank)
        hi_rank = min(lo_rank + 1, self.count - 1)
        lo_v = self._value_at_rank(lo_rank)
        hi_v = self._value_at_rank(hi_rank)
        value = lo_v + (hi_v - lo_v) * (rank - lo_rank)
        return min(max(value, self.min), self.max)

    def _value_at_rank(self, rank: int) -> float:
        """Interpolated value of the *rank*-th (0-based) observation."""
        bounds = self.bucket_bounds
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            if n and rank <= cum + n - 1:
                lo = bounds[i - 1] if i > 0 else self.min
                hi = bounds[i] if i < len(bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return hi
                if n == 1:
                    # The bucket's only sample: the global min when
                    # this is the lowest nonempty bucket (lo is then
                    # the min itself), else the right-closed bound.
                    return lo if cum == 0 else hi
                # Linear inside the bucket: rank cum maps to lo, rank
                # cum+n-1 to hi — both boundaries belong to this
                # bucket (right-closed), never to a neighbor.
                return lo + (hi - lo) * ((rank - cum) / (n - 1))
            cum += n
        return self.max

    def as_dict(self) -> dict:
        out = {"kind": self.kind, "count": self.count, "total": self.total,
               "min": self.min, "max": self.max,
               "mean": round(self.mean, 3),
               "updated_cycle": self.updated_cycle}
        if self._samples:
            out["percentiles"] = {
                p: round(self.percentile(float(p.lstrip("p"))), 3)
                for p in ("p50", "p90", "p99")
            }
        if self.bucket_bounds is not None:
            out["buckets"] = {
                "bounds": list(self.bucket_bounds),
                "counts": list(self.bucket_counts),
            }
        return out


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Names are dotted paths (``kernel.link_spills``,
    ``fs.op_cycles.read``); the first component groups the owning
    subsystem in reports.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  capacity: int = DEFAULT_HISTOGRAM_CAPACITY,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get(name, Histogram, capacity=capacity,
                         buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_dict(self) -> dict:
        """Serializable view, grouped by metric kind."""
        out: Dict[str, dict] = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for name in self.names():
            metric = self._metrics[name]
            out[metric.kind + "s"][name] = metric.as_dict()
        return out
