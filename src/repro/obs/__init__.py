"""repro.obs — the observability subsystem for the whole XPC stack.

One :class:`ObsSession` bundles the three measurement surfaces:

* :class:`~repro.obs.pmu.PMU` — per-core/per-engine hardware counter
  banks with snapshot/delta/reset semantics (cycles-by-phase matching
  the paper's Figure 5 breakdown);
* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges, and
  histograms keyed on the simulated cycle clock, fed by the kernel,
  the XPC runtime, the transports, and the servers;
* :class:`~repro.obs.span.SpanTracer` — causally-nested spans along the
  xcall chain, exportable as Chrome ``trace_event`` JSON (Perfetto).

Usage pattern at an instrumented site (null-sink default: the disarmed
cost is a single global attribute check, mirroring ``repro.faults``):

    import repro.obs as obs
    ...
    if obs.ACTIVE is not None:
        obs.ACTIVE.pmu.add(core, "cycles.xcall.captest", 6)

and in a test / benchmark driver:

    with obs.active(obs.ObsSession()) as session:
        run_workload()
    artifact = session.report("my-run")       # JSON-serializable
    open("run.trace.json", "w").write(session.spans.chrome_json())

Observation is free: nothing here calls ``tick`` or mutates simulator
state, so obs-on and obs-off runs produce byte-identical cycle counts
(asserted in CI).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

import repro.faults as faults
from repro.analysis.trace import TraceEvent, Tracer
from repro.obs.pmu import PMU, PMUSnapshot
from repro.obs.profiler import (CycleProfiler, ProfileNode,
                                diff_collapsed)
from repro.obs.registry import (Counter, Gauge, Histogram,
                                MetricsRegistry)
from repro.obs.span import Span, SpanTracer

__all__ = [
    "ACTIVE", "Counter", "CycleProfiler", "Gauge", "Histogram",
    "MetricsRegistry", "ObsSession", "PMU", "PMUSnapshot",
    "ProfileNode", "Span", "SpanTracer", "TraceEvent", "Tracer",
    "active", "diff_collapsed", "install", "prof_frame", "uninstall",
]

#: The installed session, or None.  Instrumented hot paths check this
#: before doing anything, so the disarmed cost is one global load.
ACTIVE: Optional["ObsSession"] = None


class ObsSession:
    """One run's worth of observability state.

    ``legacy`` optionally wires a :class:`repro.analysis.trace.Tracer`
    in as the span tracer's point-event sink (the pre-span view).
    """

    def __init__(self, span_capacity: int = 100_000,
                 legacy: Optional[Tracer] = None,
                 profile: bool = False) -> None:
        self.registry = MetricsRegistry()
        self.pmu = PMU()
        self.spans = SpanTracer(capacity=span_capacity, legacy=legacy)
        #: Cycle-attribution profiler, or None (the default: profiling
        #: off adds nothing beyond the existing ACTIVE check).
        self.profiler: Optional[CycleProfiler] = (
            CycleProfiler() if profile else None)
        self.spans.profiler = self.profiler

    # -- wiring (called by Machine/BaseKernel constructors) ------------
    def on_machine(self, machine) -> None:
        self.pmu.attach_machine(machine)

    def on_kernel(self, kernel) -> None:
        self.pmu.attach_kernel(kernel)

    def attach(self, machine, kernel=None) -> "ObsSession":
        """Register a machine (and kernel) built before this session
        was installed."""
        self.on_machine(machine)
        if kernel is not None:
            self.on_kernel(kernel)
        return self

    # -- fault-injection bridge (repro.faults.OBSERVER) ----------------
    def on_fault(self, point: str, action: dict) -> None:
        """An armed fault fired: count it and pin it to the timeline."""
        self.registry.counter(f"faults.injected.{point}").inc()
        self.spans.annotate(f"fault:{point}", args=action)

    # -- the per-run artifact ------------------------------------------
    def report(self, title: str = "run") -> dict:
        """JSON-serializable artifact: metrics + PMU + span summary +
        the full Chrome trace (what ``python -m repro.obs`` renders)."""
        from repro.obs.report import aggregate_spans
        snapshot = self.pmu.snapshot()
        legacy = self.spans.legacy
        artifact = {
            "title": title,
            "metrics": self.registry.as_dict(),
            "pmu": snapshot.as_dict(),
            "span_summary": aggregate_spans(self.spans.spans),
            "spans": {"finished": len(self.spans),
                      "dropped": self.spans.dropped,
                      "truncated": self.spans.truncated_total,
                      "repaired": self.spans.repaired_total,
                      "legacy_dropped": (legacy.dropped
                                         if legacy is not None else 0)},
            "trace_events": self.spans.chrome_events(pid=title),
        }
        if self.profiler is not None:
            artifact["profile"] = self.profiler.as_dict()
        return artifact


@contextmanager
def prof_frame(core, label: str):
    """Open a profiler attribution frame around the block, iff the
    installed session is profiling; free otherwise.  Instrumented
    layers call this *after* the usual ``if obs.ACTIVE is not None``
    guard, so the disarmed fast path never pays the generator."""
    session = ACTIVE
    profiler = session.profiler if session is not None else None
    if profiler is None:
        yield None
        return
    with profiler.frame(core, label):
        yield profiler


def install(session: Optional[ObsSession]) -> None:
    global ACTIVE
    ACTIVE = session
    faults.OBSERVER = session.on_fault if session is not None else None


def uninstall() -> None:
    install(None)


@contextmanager
def active(session: ObsSession):
    """Install *session* for the duration of the block (restoring the
    previous session, so nested scopes compose)."""
    global ACTIVE
    prev, prev_observer = ACTIVE, faults.OBSERVER
    install(session)
    try:
        yield session
    finally:
        ACTIVE = prev
        faults.OBSERVER = prev_observer
