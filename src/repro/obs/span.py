"""Span-based cross-call tracing on the simulated cycle clock.

A :class:`Span` covers one causally-delimited stretch of work — an IPC
transport call, an ``xcall``→``xret`` window, a trampoline handler, one
FS/net/crypto server operation.  Spans nest: each core keeps a LIFO of
open spans (the migrating-thread model makes nesting synchronous per
core), and the engine threads the ``xcall`` span through the linkage
record so the matching ``xret`` — or the kernel's §4.2 repair path —
closes exactly the span its record opened.

Exports Chrome ``trace_event`` JSON ("X" complete events plus "i"
instants for fault injections), loadable directly in Perfetto or
``chrome://tracing``; timestamps are simulated cycles rendered as
microseconds.

The finished-span store is a ring buffer with the same retain-newest
semantics as :class:`repro.analysis.trace.Tracer` (the legacy event
sink, which a span tracer can feed for the old point-event view).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional

from repro.analysis.trace import Tracer as LegacyTracer

DEFAULT_SPAN_CAPACITY = 100_000


class Span:
    """One timed, nestable unit of work."""

    __slots__ = ("span_id", "parent_id", "trace_id", "name", "cat",
                 "core_id", "start", "end", "args", "events")

    def __init__(self, span_id: int, parent_id: Optional[int],
                 trace_id: int, name: str, cat: str, core_id: int,
                 start: int, args: Optional[dict] = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.cat = cat
        self.core_id = core_id
        self.start = start
        self.end: Optional[int] = None
        self.args = dict(args) if args else {}
        self.events: List[dict] = []    # instant annotations

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> int:
        return (self.end - self.start) if self.end is not None else 0

    def annotate(self, name: str, cycle: int,
                 args: Optional[dict] = None) -> None:
        self.events.append({"name": name, "cycle": cycle,
                            "args": dict(args) if args else {}})

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id, "parent_id": self.parent_id,
            "trace_id": self.trace_id, "name": self.name,
            "cat": self.cat, "core": self.core_id,
            "start": self.start, "end": self.end,
            "args": dict(self.args), "events": list(self.events),
        }


class SpanTracer:
    """Per-core nested span recorder with a bounded finished-span ring.

    ``legacy`` is an optional :class:`repro.analysis.trace.Tracer`: every
    span begin/end is forwarded to it as the old point-event stream, so
    code written against the legacy sink keeps working under span
    tracing.
    """

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY,
                 legacy: Optional[LegacyTracer] = None) -> None:
        if capacity <= 0:
            raise ValueError("span capacity must be positive")
        self.capacity = capacity
        self.finished: deque = deque(maxlen=capacity)
        self.dropped = 0
        #: Spans force-closed because an outer span ended around them
        #: (kernel repair abandoning nested frames).
        self.truncated_total = 0
        #: Spans closed by the kernel's §4.2 repair path rather than a
        #: matching ``xret``.
        self.repaired_total = 0
        self.legacy = legacy
        #: Optional :class:`repro.obs.profiler.CycleProfiler` bridge —
        #: every span begin/end also pushes/pops an attribution frame,
        #: so span instrumentation shapes the flame tree for free.
        self.profiler = None
        self._open: Dict[int, List[Span]] = {}    # core_id -> stack
        self._cores: Dict[int, object] = {}       # core_id -> last core
        self._next_span_id = 1
        self._next_trace_id = 1
        #: The innermost span still open anywhere (the simulator is
        #: single-threaded, so "most recently begun" is well-defined);
        #: fault annotations land here.
        self.current: Optional[Span] = None

    # -- span lifecycle ------------------------------------------------
    def begin(self, core, name: str, cat: str = "xpc",
              **args) -> Span:
        """Open a span on *core* at its current cycle."""
        stack = self._open.setdefault(core.core_id, [])
        self._cores[core.core_id] = core
        parent = stack[-1] if stack else None
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        span = Span(self._next_span_id, parent_id, trace_id, name, cat,
                    core.core_id, core.cycles, args)
        self._next_span_id += 1
        stack.append(span)
        self.current = span
        if self.profiler is not None:
            self.profiler.push(core, f"{cat}:{name}",
                               span_id=span.span_id)
        if self.legacy is not None:
            self.legacy.emit(core, "span-begin", f"{cat}:{name}")
        return span

    def end(self, core, span: Optional[Span] = None, **args) -> Optional[Span]:
        """Close *span* (default: the innermost open span on *core*).

        Closing a non-top span — the kernel repair path abandoning the
        frames above it — also closes everything nested inside it, each
        marked ``truncated``.
        """
        stack = self._open.get(core.core_id)
        if not stack:
            return None
        if span is None:
            span = stack[-1]
        if span not in stack:
            return None
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.end = core.cycles
            top.args["truncated"] = True
            self.truncated_total += 1
            self._finish(top)
        span.end = core.cycles
        if args:
            span.args.update(args)
        if span.args.get("repaired"):
            self.repaired_total += 1
        self._finish(span)
        if self.profiler is not None:
            self.profiler.pop(core.core_id, span_id=span.span_id)
        self.current = None
        for frames in self._open.values():
            for open_span in frames:
                if (self.current is None
                        or open_span.span_id > self.current.span_id):
                    self.current = open_span
        if self.legacy is not None:
            self.legacy.emit(core, "span-end", f"{span.cat}:{span.name}")
        return span

    def _finish(self, span: Span) -> None:
        if len(self.finished) == self.capacity:
            self.dropped += 1
        self.finished.append(span)

    # -- annotations (fault injections etc.) ---------------------------
    def annotate(self, name: str, cycle: Optional[int] = None,
                 args: Optional[dict] = None) -> None:
        """Attach an instant annotation to the innermost open span,
        stamped with its core's current cycle by default."""
        span = self.current
        if span is None:
            return
        if cycle is None:
            core = self._cores.get(span.core_id)
            cycle = core.cycles if core is not None else span.start
        span.annotate(name, cycle, args)

    # -- introspection -------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Finished spans, oldest first."""
        return list(self.finished)

    def open_depth(self, core_id: int) -> int:
        return len(self._open.get(core_id, []))

    def find(self, name: str) -> List[Span]:
        return [s for s in self.finished if s.name == name]

    def __len__(self) -> int:
        return len(self.finished)

    # -- Chrome trace_event export -------------------------------------
    def chrome_events(self, pid: str = "repro") -> List[dict]:
        """``trace_event`` dicts: one "X" per span, one "i" per
        annotation.  ``ts`` is the span's start cycle (cycles rendered
        as microseconds — Perfetto's time axis then reads in cycles)."""
        events: List[dict] = []
        for span in self.finished:
            events.append({
                "name": span.name, "cat": span.cat, "ph": "X",
                "ts": span.start, "dur": span.duration,
                "pid": pid, "tid": span.core_id,
                "args": {"span_id": span.span_id,
                         "parent_id": span.parent_id,
                         "trace_id": span.trace_id, **span.args},
            })
            for note in span.events:
                events.append({
                    "name": note["name"], "cat": "fault", "ph": "i",
                    "ts": note["cycle"], "pid": pid,
                    "tid": span.core_id, "s": "t",
                    "args": dict(note["args"]),
                })
        events.sort(key=lambda e: (e["ts"], e["ph"] != "X"))
        return events

    def chrome_json(self, pid: str = "repro") -> str:
        return json.dumps({"traceEvents": self.chrome_events(pid),
                           "displayTimeUnit": "ns"}, indent=None)
