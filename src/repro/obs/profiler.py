"""Exact cycle-attribution profiling: every charged cycle gets a stack.

The simulator has exactly one charging primitive —
:meth:`repro.hw.cpu.Core.tick` (the single-charger discipline the
``cycle-accounting`` lint rule enforces) — so a profiler that observes
every ``tick`` attributes **100% of charged cycles by construction**:
the flame tree's total always equals the clock delta of the profiled
window (:meth:`CycleProfiler.complete` asserts exactly that).

Attribution context comes from three sources, all free when disarmed:

* **frames** — instrumented layers open a frame around a causal unit of
  work (``xpclib:call#3``, ``kernel:link_spill``); frames nest per core,
  forming the call path;
* **the span bridge** — every :class:`~repro.obs.span.SpanTracer` span
  begin/end also pushes/pops a profiler frame, so the existing span
  instrumentation (engine xcall windows, service handlers, fs/net ops)
  shapes the flame tree with no extra hooks;
* **phase splits** — a charge site that knows a finer decomposition of
  its next ``tick`` (the engine's Figure 5 ladder: captest + xentry +
  linkpush) registers it just before charging, and the cycles land in
  per-phase leaf children instead of the frame's self bucket.

Cycles charged with no frame open fall into the per-core root node, so
nothing is ever lost — the collapsed-stack export (`flamegraph.pl` /
speedscope "folded" format) always sums to the clock.

Like the rest of :mod:`repro.obs`, the profiler never ticks and never
mutates simulator state: profiler-on and profiler-off runs are
cycle-identical (CI byte-compares fig5/fig7 results both ways).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class ProfileNode:
    """One node of the weighted call tree."""

    __slots__ = ("label", "self_cycles", "children")

    def __init__(self, label: str) -> None:
        self.label = label
        self.self_cycles = 0
        self.children: Dict[str, "ProfileNode"] = {}

    def child(self, label: str) -> "ProfileNode":
        node = self.children.get(label)
        if node is None:
            node = ProfileNode(label)
            self.children[label] = node
        return node

    @property
    def total_cycles(self) -> int:
        return self.self_cycles + sum(c.total_cycles
                                      for c in self.children.values())

    def as_dict(self) -> dict:
        return {
            "name": self.label,
            "self": self.self_cycles,
            "total": self.total_cycles,
            "children": [c.as_dict()
                         for c in sorted(self.children.values(),
                                         key=lambda n: n.label)],
        }


class CycleProfiler:
    """Per-core attribution stacks over the single charging primitive.

    ``on_tick`` is called by :meth:`repro.hw.cpu.Core.tick` whenever a
    session with a profiler is installed; everything else is free
    bookkeeping around it.  Stacks are keyed by ``core_id`` (stable
    across snapshot/restore, unlike ``id(core)``), so a deepcopied
    profiler keeps attributing against the copied machine.
    """

    def __init__(self) -> None:
        self._roots: Dict[int, ProfileNode] = {}     # core_id -> tree root
        self._stacks: Dict[int, List[ProfileNode]] = {}
        self._splits: Dict[int, Sequence[Tuple[str, int]]] = {}
        self._span_depth: Dict[int, int] = {}        # span_id -> depth
        self._cores: Dict[int, object] = {}          # core_id -> core
        self._baseline: Dict[int, int] = {}          # core.cycles at arm
        self.attributed = 0
        #: pops that found no matching frame (mid-run arming, repairs
        #: racing the bridge) — nonzero means paths may be coarse, never
        #: that cycles were lost.
        self.mismatched_pops = 0
        #: phase splits whose parts did not sum to the charged cycles
        #: (the remainder lands in the frame's self bucket).
        self.bad_splits = 0

    # -- registration ---------------------------------------------------
    def _ensure(self, core, already_charged: int = 0) -> List[ProfileNode]:
        cid = core.core_id
        stack = self._stacks.get(cid)
        if stack is None:
            root = ProfileNode(f"core{cid}")
            self._roots[cid] = root
            stack = [root]
            self._stacks[cid] = stack
            self._cores[cid] = core
            self._baseline[cid] = core.cycles - already_charged
        return stack

    # -- frames ---------------------------------------------------------
    def push(self, core, label: str,
             span_id: Optional[int] = None) -> None:
        """Open frame *label* on *core*'s attribution stack."""
        stack = self._ensure(core)
        if span_id is not None:
            self._span_depth[span_id] = len(stack)
        stack.append(stack[-1].child(label))

    def pop(self, core_id: int, span_id: Optional[int] = None) -> None:
        """Close the innermost frame (or the one *span_id* opened,
        truncating anything still nested inside it)."""
        stack = self._stacks.get(core_id)
        if not stack:
            return
        if span_id is not None:
            depth = self._span_depth.pop(span_id, None)
            if depth is None:
                self.mismatched_pops += 1
                return
            del stack[depth:]
            return
        if len(stack) > 1:
            stack.pop()
        else:
            self.mismatched_pops += 1

    @contextmanager
    def frame(self, core, label: str):
        """``with profiler.frame(core, "kernel:spill"): ...``"""
        stack = self._ensure(core)
        depth = len(stack)
        self.push(core, label)
        try:
            yield
        finally:
            inner = self._stacks.get(core.core_id)
            if inner is not None and len(inner) > depth:
                del inner[depth:]

    # -- phase refinement ----------------------------------------------
    def phase_split(self, core,
                    parts: Sequence[Tuple[str, int]]) -> None:
        """Declare how the *next* tick on *core* decomposes into named
        phases.  Consumed by exactly one tick; parts that do not cover
        the whole charge leave the remainder in the frame itself."""
        self._ensure(core)
        self._splits[core.core_id] = parts

    # -- the hook Core.tick calls ---------------------------------------
    def on_tick(self, core, cycles: int) -> None:
        """Attribute *cycles* (already added to ``core.cycles``)."""
        if not cycles:
            self._splits.pop(core.core_id, None)
            return
        stack = self._ensure(core, already_charged=cycles)
        top = stack[-1]
        split = self._splits.pop(core.core_id, None)
        if split:
            remainder = cycles
            for phase, n in split:
                if n <= 0 or n > remainder:
                    continue
                top.child(phase).self_cycles += n
                remainder -= n
            if remainder:
                if remainder != cycles:
                    self.bad_splits += 1
                top.self_cycles += remainder
        else:
            top.self_cycles += cycles
        self.attributed += cycles

    # -- completeness ---------------------------------------------------
    def clock_cycles(self) -> int:
        """Cycles the profiled cores' clocks advanced while armed."""
        return sum(self._cores[cid].cycles - self._baseline[cid]
                   for cid in self._cores)

    def complete(self) -> bool:
        """The attribution invariant: flame total == clock total."""
        return self.attributed == self.clock_cycles()

    def open_depth(self, core_id: int) -> int:
        stack = self._stacks.get(core_id)
        return len(stack) - 1 if stack else 0

    # -- exports --------------------------------------------------------
    def roots(self) -> List[ProfileNode]:
        return [self._roots[cid] for cid in sorted(self._roots)]

    def collapsed(self) -> Dict[str, int]:
        """Weighted stacks in flamegraph.pl "folded" form:
        ``{"core0;xpclib:call#1;phase:captest": 12, ...}``."""
        out: Dict[str, int] = {}

        def walk(node: ProfileNode, path: str) -> None:
            if node.self_cycles:
                out[path] = out.get(path, 0) + node.self_cycles
            for child in node.children.values():
                walk(child, f"{path};{child.label}")

        for root in self.roots():
            walk(root, root.label)
        return out

    def collapsed_text(self) -> str:
        """The exact file format flamegraph.pl / speedscope load."""
        return "\n".join(f"{path} {cycles}"
                         for path, cycles in sorted(self.collapsed().items()))

    def flame_tree(self) -> List[dict]:
        return [root.as_dict() for root in self.roots()]

    def as_dict(self) -> dict:
        return {
            "attributed_cycles": self.attributed,
            "clock_cycles": self.clock_cycles(),
            "complete": self.complete(),
            "mismatched_pops": self.mismatched_pops,
            "bad_splits": self.bad_splits,
            "collapsed": self.collapsed(),
        }


def diff_collapsed(base: Dict[str, int], fresh: Dict[str, int],
                   min_delta: int = 0) -> List[dict]:
    """Per-stack cycle deltas between two collapsed profiles, biggest
    absolute regression first — the flame-tree diff the perf sentry
    prints when it pins a regression."""
    rows = []
    for path in sorted(set(base) | set(fresh)):
        b, f = base.get(path, 0), fresh.get(path, 0)
        if abs(f - b) > min_delta:
            rows.append({"path": path, "base": b, "fresh": f,
                         "delta": f - b})
    rows.sort(key=lambda r: (-abs(r["delta"]), r["path"]))
    return rows
