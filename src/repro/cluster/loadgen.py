"""Seeded synthetic-population load generation for the cluster.

Models the paper-scale question ROADMAP item 1 asks — what happens when
10^5–10^6 clients hit the stack — without simulating 10^5 closed loops:
an **open-loop** arrival process (the population is large enough that
arrivals are Poisson regardless of per-client think time), **Zipf** key
skew (the YCSB-standard hot-key model, here with an exact
inverse-CDF sampler so distribution properties are testable), and a
**diurnal burst schedule** (piecewise rate multipliers, wrapping) that
moves the offered load the way a day of real traffic does.

Everything is seeded: two generators built with the same arguments
yield byte-identical request streams (asserted in
``tests/cluster/test_loadgen.py`` and relied on by the capacity
benchmark's determinism check).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class ZipfSampler:
    """Exact Zipf(theta) over ranks [0, n) by inverse-CDF lookup.

    Rank probabilities are ``(1/(r+1)^theta) / H`` — monotonically
    decreasing in rank by construction, which is the property the
    rank-frequency tests pin.  ``theta = 0`` degenerates to uniform;
    YCSB's default skew is 0.99.
    """

    def __init__(self, n: int, theta: float = 0.99,
                 seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("need a positive rank count")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        self.seed = seed
        self.rng = random.Random(seed)
        weights = [1.0 / ((r + 1) ** theta) for r in range(n)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(acc / total)
        self._cdf = cdf

    def probability(self, rank: int) -> float:
        """P(rank) — exact, for the distribution-property tests."""
        lo = self._cdf[rank - 1] if rank else 0.0
        return self._cdf[rank] - lo

    def sample(self) -> int:
        return bisect.bisect_left(self._cdf, self.rng.random())


class OpenLoopArrivals:
    """Poisson arrivals: exponential gaps around ``mean_interval``.

    ``next_gap(multiplier)`` scales the *rate* by the diurnal
    multiplier (gap shrinks when traffic bursts).  The closed-form
    check: the sample mean of gaps at multiplier 1 converges on
    ``mean_interval``.
    """

    def __init__(self, mean_interval: float, seed: int = 0) -> None:
        if mean_interval <= 0:
            raise ValueError("mean inter-arrival must be positive")
        self.mean_interval = mean_interval
        self.rng = random.Random(seed ^ 0x9E3779B9)

    def next_gap(self, multiplier: float = 1.0) -> float:
        return self.rng.expovariate(multiplier / self.mean_interval)


class DiurnalSchedule:
    """Piecewise-constant rate multipliers over the cycle clock.

    ``phases`` is a sequence of ``(duration_cycles, multiplier)``; the
    schedule wraps (one simulated "day" repeats).  ``FLAT`` is the
    identity schedule.
    """

    def __init__(self, phases: Sequence[Tuple[int, float]]) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        if any(d <= 0 or m <= 0 for d, m in phases):
            raise ValueError("phase durations and multipliers must be "
                             "positive")
        self.phases = [(int(d), float(m)) for d, m in phases]
        self.period = sum(d for d, _ in self.phases)

    def multiplier_at(self, cycle: float) -> float:
        t = cycle % self.period
        for duration, mult in self.phases:
            if t < duration:
                return mult
            t -= duration
        return self.phases[-1][1]


FLAT = DiurnalSchedule([(1, 1.0)])


@dataclass
class Request:
    """One synthetic request: who, when, what."""

    seq: int
    arrival: int            # cycle stamp on the shared cluster timeline
    client_id: int
    key: str
    op: str                 # "read" / "update" / whatever the app maps
    value_bytes: int


class LoadGenerator:
    """The synthetic population: open loop + Zipf keys + diurnal shape.

    *clients* is the population size (client ids are drawn uniformly —
    with 10^5+ clients each sends rarely, which is exactly why the
    aggregate is open-loop Poisson).  *keys* is the keyspace; each
    request's key rank comes from the Zipf sampler, so key
    ``k000000`` is the globally hottest.  The ``mix`` maps op names to
    probabilities (YCSB-style, e.g. ``{"read": .95, "update": .05}``).
    """

    def __init__(self, clients: int = 100_000, keys: int = 4096,
                 mean_interval: float = 400.0,
                 theta: float = 0.99,
                 mix: Optional[Dict[str, float]] = None,
                 schedule: DiurnalSchedule = FLAT,
                 value_bytes: int = 64,
                 seed: int = 0) -> None:
        if clients <= 0 or keys <= 0:
            raise ValueError("population and keyspace must be positive")
        self.clients = clients
        self.keys = keys
        self.schedule = schedule
        self.value_bytes = value_bytes
        self.seed = seed
        self.zipf = ZipfSampler(keys, theta=theta, seed=seed ^ 0x5EED)
        self.arrivals = OpenLoopArrivals(mean_interval, seed=seed)
        self.rng = random.Random(seed ^ 0xC10C)
        mix = dict(mix or {"read": 0.95, "update": 0.05})
        total = sum(mix.values())
        self._ops = sorted(mix)
        self._op_cdf = []
        acc = 0.0
        for op in self._ops:
            acc += mix[op] / total
            self._op_cdf.append(acc)

    def key_for(self, rank: int) -> str:
        return f"k{rank:06d}"

    def _pick_op(self) -> str:
        return self._ops[bisect.bisect_left(self._op_cdf,
                                            self.rng.random())]

    def requests(self, n: int, start_cycle: int = 0) -> Iterator[Request]:
        """Yield *n* requests in arrival order (the whole stream is a
        pure function of the constructor arguments)."""
        t = float(start_cycle)
        for seq in range(n):
            t += self.arrivals.next_gap(self.schedule.multiplier_at(t))
            yield Request(
                seq=seq,
                arrival=int(t),
                client_id=self.rng.randrange(self.clients),
                key=self.key_for(self.zipf.sample()),
                op=self._pick_op(),
                value_bytes=self.value_bytes)

    def describe(self) -> dict:
        return {
            "clients": self.clients,
            "keys": self.keys,
            "mean_interval": self.arrivals.mean_interval,
            "theta": self.zipf.theta,
            "schedule_period": self.schedule.period,
            "seed": self.seed,
        }


def fast_capacity_plan(requests: Sequence[Request],
                       cost_per_request: int,
                       workers: int = 1) -> dict:
    """Opt-in fast stepping for capacity-sweep *planning*.

    Runs the arrival stream through the table-driven fast core's
    open-loop model (``repro.fastcore.batch``) with a flat per-request
    service cost, and summarizes latency — cheap enough to scan a grid
    of (workers, arrival rate) before committing the full fabric
    simulation to the interesting corner.  Planning only: capacity
    numbers that land in results.json still come from real
    :meth:`~repro.cluster.fabric.Cluster.serve` runs.
    """
    from repro.fastcore.batch import open_loop_completions
    arrivals = [r.arrival for r in requests]
    costs = [cost_per_request] * len(arrivals)
    completions, wall = open_loop_completions(arrivals, costs,
                                              workers=workers)
    latencies = sorted(c - a for c, a in zip(completions, arrivals))
    if not latencies:
        return {"requests": 0, "wall_cycles": 0, "p50": 0, "p99": 0}
    return {
        "requests": len(latencies),
        "wall_cycles": wall,
        "p50": latencies[len(latencies) // 2],
        "p99": latencies[min(len(latencies) - 1,
                             (len(latencies) * 99) // 100)],
    }
