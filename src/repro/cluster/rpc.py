"""Cross-node RPC: the net-hop cost model between node clocks.

An intra-node request is an ``xcall`` (tens of cycles through the XPC
engine); a cross-node request is a *network hop*, and the gap between
the two is what makes shard locality matter.  The model follows the
existing net-service stack's shape — serialize, NIC, wire, NIC — with
every charge on a real core clock:

* **serialize** — the sending frontend core marshals the request into
  a wire buffer: ``copy_cycles(payload)`` plus the fixed
  ``cluster_rpc_header``, charged on the *sender's* core (it is busy
  for that time), plus the NIC turnaround (``nic_loopback_fixed``).
* **wire** — ``rpc_wire_cycles(nbytes)`` of elapsed time (propagation
  + bytes at link bandwidth).  No core spins on it; it only delays the
  arrival stamp on the receiving node's clock.
* **deliver** — the receiving node pays its NIC turnaround + header
  demarshal on the worker core via the pool's open-loop arrival
  fast-forward, then the request enters the home pool like any local
  one.  The reply retraces the wire (its transit is added to the
  measured latency by the fabric; the caller was asynchronous, so no
  core blocks on it).

Node clocks are independent but causally coupled: a message sent at
sender-cycle *t* cannot arrive before ``t + wire`` on the receiver
(all clocks start from zero together), which the pool enforces by
fast-forwarding an idle worker core to the arrival stamp.

Partitions are modeled here: a severed (src, dst) pair fails the send
with :class:`ClusterPartitionedError` before any wire time elapses —
serialization was already spent, exactly like a real connect timeout —
and the failure feeds the home node's circuit breaker.
"""

from __future__ import annotations

from typing import Optional

import repro.faults as faults
from repro.cluster.node import Node, NodeDownError

__all__ = ["ClusterPartitionedError", "NodeDownError", "RpcLink",
           "remote_submit"]


class ClusterPartitionedError(Exception):
    """The network between two nodes is partitioned."""

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        super().__init__(f"network partition between n{src} and n{dst}")


class RpcLink:
    """The inter-node link: partition state + cost accounting."""

    def __init__(self, params) -> None:
        self.params = params
        #: severed unordered node-id pairs.
        self._cuts = set()
        self.messages = 0
        self.bytes = 0

    # -- partitions ----------------------------------------------------
    def partition(self, a: int, b: int) -> None:
        self._cuts.add(frozenset((a, b)))

    def heal(self, a: int, b: int) -> None:
        self._cuts.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._cuts.clear()

    def severed(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._cuts

    @property
    def partitions(self):
        return {tuple(sorted(cut)) for cut in self._cuts}

    # -- the hop -------------------------------------------------------
    def send(self, src: Node, dst: Node, nbytes: int) -> int:
        """Charge the sender side and return the arrival stamp on the
        receiver's timeline.  Raises before wire time on a partition or
        a dead receiver (serialization is already paid — that is the
        cost of finding out)."""
        params = self.params
        src.frontend_core.tick(params.copy_cycles(nbytes)
                               + params.cluster_rpc_header
                               + params.nic_loopback_fixed)
        if faults.ACTIVE is not None:
            action = faults.fire("cluster.partition")
            if action is not None:
                self.partition(src.node_id, dst.node_id)
        if self.severed(src.node_id, dst.node_id):
            raise ClusterPartitionedError(src.node_id, dst.node_id)
        if not dst.alive:
            raise NodeDownError(dst.node_id)
        self.messages += 1
        self.bytes += nbytes
        return src.frontend_core.cycles + params.rpc_wire_cycles(nbytes)

    def reply_transit(self, nbytes: int) -> int:
        """Wire + NIC + demarshal time for the reply leg (added to the
        request's measured latency by the fabric)."""
        return (self.params.rpc_wire_cycles(nbytes)
                + self.params.nic_loopback_fixed
                + self.params.cluster_rpc_header)


def remote_submit(link: RpcLink, src: Node, dst: Node, name: str,
                  meta: tuple, payload: bytes = b"",
                  reply_capacity: int = 0,
                  arrival_cycle: Optional[int] = None):
    """One cross-node request: hop to *dst*, enter its home pool.

    Returns the :class:`~repro.aio.batch.XPCFuture` from the remote
    pool; the arrival stamp it carries is the max of the request's own
    open-loop arrival and the wire-delayed delivery time, plus the
    receiver-side NIC/demarshal charge.
    """
    pool = dst.pool(name)       # breaker-gated; NodeDownError if dead
    delivered = link.send(src, dst, len(payload))
    if arrival_cycle is not None:
        delivered = max(delivered, arrival_cycle)
    delivered += (link.params.nic_loopback_fixed
                  + link.params.cluster_rpc_header)
    src.rpc_out += 1
    dst.rpc_in += 1
    return pool.submit(meta, payload, reply_capacity,
                       arrival_cycle=delivered)
