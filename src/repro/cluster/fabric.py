"""The cluster: N nodes, one deterministic cross-node event loop.

A :class:`Cluster` hosts N :class:`~repro.cluster.node.Node`\\ s on
independent cycle clocks, a :class:`ShardedNameServer` homing every key
on one node, and an :class:`RpcLink` pricing the cross-node hops.  The
event loop (:meth:`run`) consumes a load generator's request stream in
arrival order; each request enters at a *frontend* node (client
affinity: ``client_id`` mod live nodes) and is served either by an
intra-node ``xcall`` (frontend == home — the shard-local fast path) or
a cross-node RPC (serialize + wire + deliver).  Every ``control_every``
requests the loop hits a *control step*: pools drain, completions are
harvested into the fabric's own always-on
:class:`~repro.obs.registry.MetricsRegistry` (the control plane must
not depend on ``repro.obs`` being armed), SLO engines are consulted and
pools autoscale, and armed fault points may kill a node or cut a link.

Determinism: the stream is seeded, nodes are visited in id order, and
no wall-clock or hash-order state leaks in — two runs with the same
arguments produce identical per-node cycle counts and an identical
:meth:`trace_hash` (the capacity benchmark asserts this).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import repro.faults as faults
from repro.aio.ring import XPCRingFullError
from repro.cluster.loadgen import LoadGenerator, Request
from repro.cluster.naming import ShardedNameServer
from repro.cluster.node import Node, NodeDownError
from repro.cluster.rpc import ClusterPartitionedError, RpcLink, remote_submit
from repro.obs.registry import MetricsRegistry
from repro.params import CycleParams, DEFAULT_PARAMS
from repro.prof.slo import SLOEngine
from repro.sel4 import Sel4Kernel
from repro.services.nameserver import ServiceUnavailableError

#: request -> (meta, payload, reply_capacity): the default app encoding
#: (a tiny KV wire format; real apps install their own via serve()).
def default_encoder(req: Request) -> Tuple[tuple, bytes, int]:
    payload = req.key.encode()
    if req.op != "read":
        payload += b"=" + b"v" * req.value_bytes
    return (req.op, req.seq), payload, max(req.value_bytes, 16)


@dataclass
class _ServiceSpec:
    """How one sharded service is installed on every node."""

    name: str
    factory: Callable[[Node], Callable]     # node -> pool handler
    encoder: Callable[[Request], Tuple[tuple, bytes, int]]
    workers: Optional[int]
    autoscale: bool
    slo_p99: Optional[int]
    pool_kwargs: dict


class _TraceHash:
    """A sha256 accumulator that survives snapshot deepcopies.

    Raw ``_hashlib.HASH`` leaves refuse pickling, which would make a
    whole :class:`Cluster` unsnapshottable; ``.copy()`` clones the
    mid-stream digest state exactly, so a restored fabric extends the
    same trace and fingerprints by its digest-so-far.
    """

    def __init__(self) -> None:
        self._h = hashlib.sha256()

    def update(self, data: bytes) -> None:
        self._h.update(data)

    def hexdigest(self) -> str:
        return self._h.hexdigest()

    def __deepcopy__(self, memo: dict) -> "_TraceHash":
        clone = object.__new__(_TraceHash)
        clone._h = self._h.copy()
        memo[id(self)] = clone
        return clone

    def __snap_fingerprint__(self) -> str:
        return self._h.hexdigest()


@dataclass
class _Inflight:
    """One dispatched request awaiting harvest."""

    req: Request
    node_id: int
    remote: bool
    future: object


@dataclass
class ClusterRunStats:
    """What one :meth:`Cluster.run` measured."""

    requests: int = 0
    completed: int = 0
    failed: int = 0
    remote: int = 0
    local: int = 0
    wall_cycles: int = 0
    latencies: List[int] = field(default_factory=list)

    def percentile(self, p: float) -> int:
        if not self.latencies:
            return 0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1,
                   max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def req_per_kcycle(self) -> float:
        if not self.wall_cycles:
            return 0.0
        return 1000.0 * self.completed / self.wall_cycles


class Cluster:
    """N simulated machines behind one sharded serving fabric."""

    def __init__(self, nodes: int = 2, cores_per_node: int = 2,
                 mem_bytes: int = 64 * 1024 * 1024,
                 params: Optional[CycleParams] = None,
                 vnodes: int = 64,
                 kernel_cls=Sel4Kernel,
                 breaker_threshold: int = 3,
                 breaker_cooldown: int = 100_000,
                 slo_window_cycles: int = 25_000) -> None:
        if nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.params = params or DEFAULT_PARAMS
        self.cores_per_node = cores_per_node
        self.mem_bytes = mem_bytes
        self.kernel_cls = kernel_cls
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.slo_window_cycles = slo_window_cycles
        #: The fabric's own metrics: always on, never cycle-charged —
        #: autoscaling decisions must not depend on repro.obs being
        #: armed, or obs-on and obs-off runs would diverge.
        self.registry = MetricsRegistry()
        self.naming = ShardedNameServer(vnodes=vnodes)
        self.link = RpcLink(self.params)
        self.nodes: Dict[int, Node] = {}
        self._services: Dict[str, _ServiceSpec] = {}
        self._next_node_id = 0
        self._inflight: List[_Inflight] = []
        self._trace = _TraceHash()
        self._trace_records = 0
        self.node_deaths = 0
        for _ in range(nodes):
            self.add_node()

    # -- membership ----------------------------------------------------
    def add_node(self, cores: Optional[int] = None) -> Node:
        """Join a fresh node; already-registered services install onto
        it immediately (elastic scale-out) and the ring rebalances."""
        node = Node(self._next_node_id,
                    cores=cores or self.cores_per_node,
                    mem_bytes=self.mem_bytes, params=self.params,
                    kernel_cls=self.kernel_cls,
                    breaker_threshold=self.breaker_threshold,
                    breaker_cooldown=self.breaker_cooldown)
        self._next_node_id += 1
        self.nodes[node.node_id] = node
        self.naming.node_join(node)
        for spec in self._services.values():
            self._install(node, spec)
        return node

    def kill_node(self, node_id: int) -> None:
        """Machine death: ring rebalance, survivors absorb the shards."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.kill()
        self.naming.node_death(node_id)
        self.node_deaths += 1
        self.registry.counter("cluster.node_deaths").inc(
            cycle=self.wall_cycles)

    def live_nodes(self) -> List[Node]:
        return self.naming.live_nodes()

    # -- partitions ----------------------------------------------------
    def partition(self, a: int, b: int) -> None:
        self.link.partition(a, b)

    def heal(self, a: int, b: int) -> None:
        self.link.heal(a, b)

    # -- service installation ------------------------------------------
    def serve(self, name: str, factory: Callable[[Node], Callable],
              encoder: Callable = default_encoder,
              workers: Optional[int] = None,
              autoscale: bool = False,
              slo_p99: Optional[int] = None,
              **pool_kwargs) -> None:
        """Install a sharded service on every live node.

        *factory* builds the pool handler per node (each node owns its
        backend state — that is what sharding means here); *encoder*
        maps a :class:`Request` onto the service's wire format.  With
        ``autoscale=True`` each node's pool starts at one active worker
        and grows/shrinks from its own p99 SLO (``slo_p99``, simulated
        cycles) evaluated over the fabric registry.
        """
        if name in self._services:
            raise KeyError(f"service {name!r} already installed")
        if autoscale and slo_p99 is None:
            raise ValueError("autoscale needs an slo_p99 target")
        spec = _ServiceSpec(name=name, factory=factory, encoder=encoder,
                            workers=workers, autoscale=autoscale,
                            slo_p99=slo_p99, pool_kwargs=dict(pool_kwargs))
        self._services[name] = spec
        for node in self.live_nodes():
            self._install(node, spec)

    def _install(self, node: Node, spec: _ServiceSpec) -> None:
        pool = node.serve(spec.name, spec.factory(node),
                          workers=spec.workers, **spec.pool_kwargs)
        self.naming.publish(spec.name, node)
        if spec.autoscale:
            pool.slo = SLOEngine(
                self.registry,
                [f"p99(cluster.{node.name}.req_latency_cycles) "
                 f"< {spec.slo_p99}"],
                window_cycles=self.slo_window_cycles,
                burn_windows=4, alert_burn=0.25)
            pool.scale_to(1)

    # -- dispatch ------------------------------------------------------
    def frontend_for(self, client_id: int) -> Node:
        live = self.live_nodes()
        if not live:
            raise NodeDownError(-1)
        return live[client_id % len(live)]

    def dispatch(self, name: str, req: Request) -> bool:
        """Route one request; False when it failed at the fabric layer
        (partition, dead home, open breaker, full ring)."""
        spec = self._services[name]
        meta, payload, reply_capacity = spec.encoder(req)
        frontend = self.frontend_for(req.client_id)
        frontend.wait_until(req.arrival)
        for attempt in (0, 1):
            try:
                # Advance the home's idle clock to the arrival stamp
                # before the breaker gate: cooldowns burn on the shared
                # open-loop timeline, not only while the node is busy.
                self.naming.home(req.key).wait_until(req.arrival)
                home = self.naming.resolve(name, req.key)
            except ServiceUnavailableError:
                self._count_failure(name, "breaker_open")
                return False
            except (NodeDownError, KeyError):
                self._count_failure(name, "resolve")
                return False
            try:
                if home is frontend:
                    future = home.pool(name).submit(
                        meta, payload, reply_capacity,
                        arrival_cycle=req.arrival)
                    remote = False
                else:
                    future = remote_submit(
                        self.link, frontend, home, name, meta, payload,
                        reply_capacity, arrival_cycle=req.arrival)
                    remote = True
            except NodeDownError:
                # The home died under us: rebalance and retry once —
                # the ring now homes the key on a survivor.
                self.naming.node_death(home.node_id)
                if attempt == 0:
                    continue
                self._count_failure(name, "node_down")
                return False
            except ClusterPartitionedError:
                self.naming.report_failure(name, home)
                self._count_failure(name, "partition")
                return False
            except ServiceUnavailableError:
                self._count_failure(name, "breaker_open")
                return False
            except XPCRingFullError:
                self._count_failure(name, "ring_full")
                return False
            self._inflight.append(_Inflight(req=req, node_id=home.node_id,
                                            remote=remote, future=future))
            self.registry.counter(
                "cluster.remote" if remote else "cluster.local").inc(
                    cycle=self.wall_cycles)
            self.naming.report_success(name, home)
            return True
        return False

    def _count_failure(self, name: str, reason: str) -> None:
        self.registry.counter(f"cluster.failed.{reason}").inc(
            cycle=self.wall_cycles)

    # -- the control step ----------------------------------------------
    def control_step(self, stats: Optional[ClusterRunStats] = None) -> int:
        """Drain, harvest, autoscale — one beat of the fabric's loop.

        Returns the number of requests harvested.  Armed
        ``cluster.node_death`` faults land here (the deterministic
        point between request batches where a machine can vanish).
        """
        if faults.ACTIVE is not None:
            action = faults.fire("cluster.node_death")
            if action is not None:
                victims = [n.node_id for n in self.live_nodes()]
                victim = action.get("node", victims[-1] if victims else None)
                if victim is not None and victim in self.nodes:
                    self.kill_node(victim)
        for node in self.live_nodes():
            for pool in node.live_pools:
                pool.drain()
        harvested = self._harvest(stats)
        for node in self.live_nodes():
            for pool in node.live_pools:
                if pool.slo is not None:
                    pool.autoscale(node.now)
            self.registry.gauge(
                f"cluster.{node.name}.active_workers").set(
                    sum(p.active_workers for p in node.live_pools),
                    cycle=node.now)
        return harvested

    def _harvest(self, stats: Optional[ClusterRunStats]) -> int:
        done = 0
        still: List[_Inflight] = []
        for inflight in self._inflight:
            future = inflight.future
            if not future.done:
                still.append(inflight)
                continue
            done += 1
            node = self.nodes[inflight.node_id]
            try:
                _, reply = future.result()
                reply_bytes = len(reply)
                ok = True
            except Exception:
                reply_bytes = 0
                ok = False
            latency = future.complete_cycle - inflight.req.arrival
            if inflight.remote:
                latency += self.link.reply_transit(reply_bytes)
            self._record(inflight, latency, ok, node)
            if stats is not None:
                stats.completed += 1 if ok else 0
                stats.failed += 0 if ok else 1
                stats.remote += 1 if inflight.remote else 0
                stats.local += 0 if inflight.remote else 1
                if ok:
                    stats.latencies.append(latency)
        self._inflight = still
        return done

    def _record(self, inflight: _Inflight, latency: int, ok: bool,
                node: Node) -> None:
        self.registry.histogram("cluster.req_latency_cycles").observe(
            latency, cycle=node.now)
        self.registry.histogram(
            f"cluster.{node.name}.req_latency_cycles").observe(
                latency, cycle=node.now)
        if not ok:
            self.registry.counter("cluster.request_errors").inc(
                cycle=node.now)
        self._trace.update(
            f"{inflight.req.seq}:{inflight.req.key}:{inflight.node_id}:"
            f"{int(inflight.remote)}:{latency}:{int(ok)};".encode())
        self._trace_records += 1

    # -- the event loop ------------------------------------------------
    def run(self, name: str, load: LoadGenerator, requests: int,
            control_every: int = 64) -> ClusterRunStats:
        """Drive *requests* synthetic requests through service *name*."""
        stats = ClusterRunStats()
        base_wall = self.wall_cycles
        for req in load.requests(requests, start_cycle=base_wall):
            stats.requests += 1
            if not self.dispatch(name, req):
                stats.failed += 1
            if stats.requests % control_every == 0:
                self.control_step(stats)
        while self._inflight:
            before = len(self._inflight)
            self.control_step(stats)
            if len(self._inflight) == before:
                # Nothing drains any more (dead nodes hold the rest).
                for inflight in self._inflight:
                    stats.failed += 1
                self._inflight.clear()
                break
        stats.wall_cycles = self.wall_cycles - base_wall
        return stats

    # -- introspection -------------------------------------------------
    @property
    def wall_cycles(self) -> int:
        """Cluster wall-clock: the busiest live node's clock (all
        clocks share cycle zero)."""
        live = [n for n in self.nodes.values() if n.alive]
        if not live:
            return 0
        return max(node.now for node in live)

    def trace_hash(self) -> str:
        """Content hash over every harvested request record — two runs
        of the same seeded workload must agree byte-for-byte."""
        return self._trace.hexdigest()

    def stats(self) -> dict:
        return {
            "nodes": {nid: node.stats()
                      for nid, node in sorted(self.nodes.items())},
            "wall_cycles": self.wall_cycles,
            "rpc_messages": self.link.messages,
            "rpc_bytes": self.link.bytes,
            "partitions": sorted(self.link.partitions),
            "node_deaths": self.node_deaths,
            "trace_records": self._trace_records,
            "trace_hash": self.trace_hash(),
        }
