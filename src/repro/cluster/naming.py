"""The sharded name server: consistent hashing over per-node naming.

One :class:`ShardedNameServer` fronts the cluster's directory: a name
is *sharded* — served by every live node, with each key homed on one
node by the :class:`~repro.cluster.hashring.HashRing` — and resolution
delegates to the home node's local
:class:`~repro.services.nameserver.NameServer`, so the circuit-breaker
health story (OPEN on consecutive failures, HALF_OPEN probes after a
cooldown) applies per ``(name, node)`` exactly as it does on one
machine.

Membership changes rebalance the ring: a join moves ~1/N of the key
space onto the new node, a leave/death moves the dead node's ~1/N onto
the survivors, and everything else stays put (tested in
``tests/cluster/test_naming.py``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.hashring import HashRing
from repro.cluster.node import Node, NodeDownError


class ShardedNameServer:
    """name → (home node for a key, local sid) over a hash ring."""

    def __init__(self, vnodes: int = 64) -> None:
        self.ring = HashRing(vnodes=vnodes)
        self.nodes: Dict[int, Node] = {}
        #: name -> node ids serving it (sharded names live everywhere).
        self._names: Dict[str, set] = {}
        self.rebalances = 0

    # -- membership ----------------------------------------------------
    def node_join(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise KeyError(f"node {node.node_id} already joined")
        self.nodes[node.node_id] = node
        self.ring.add(node.node_id)
        self.rebalances += 1

    def node_leave(self, node_id: int) -> None:
        """Graceful departure: the node's shards re-home to survivors."""
        self.nodes.pop(node_id)
        self.ring.remove(node_id)
        for serving in self._names.values():
            serving.discard(node_id)
        self.rebalances += 1

    def node_death(self, node_id: int) -> None:
        """Ungraceful: same ring math, but the node stays known (dead)
        so in-flight lookups report :class:`NodeDownError` cleanly."""
        node = self.nodes.get(node_id)
        if node is not None:
            node.alive = False
        if node_id in self.ring:
            self.ring.remove(node_id)
            self.rebalances += 1
        for serving in self._names.values():
            serving.discard(node_id)

    def live_nodes(self) -> List[Node]:
        return [self.nodes[nid] for nid in self.ring.nodes()]

    # -- publication ---------------------------------------------------
    def publish(self, name: str, node: Node) -> None:
        """Record that *node* serves *name* (its pool must already be
        published in the node-local nameserver)."""
        if not node.serves(name):
            raise KeyError(
                f"{node.name} has no local pool published as {name!r}")
        self._names.setdefault(name, set()).add(node.node_id)

    def unpublish(self, name: str, node: Node) -> None:
        serving = self._names.get(name, set())
        serving.discard(node.node_id)
        if node.serves(name):
            node.retire(name)

    def names(self) -> List[str]:
        return sorted(self._names)

    # -- resolution ----------------------------------------------------
    def home(self, key) -> Node:
        """The live node owning *key*'s shard."""
        node = self.nodes[self.ring.owner(key)]
        if not node.alive:
            raise NodeDownError(node.node_id)
        return node

    def resolve(self, name: str, key) -> Node:
        """Home node for (name, key), breaker-gated.

        Raises ``KeyError`` for an unpublished name,
        :class:`NodeDownError` for a dead home, and the home node's
        ``ServiceUnavailableError`` while its breaker is open.
        """
        serving = self._names.get(name)
        if not serving:
            raise KeyError(f"no node publishes {name!r}")
        node = self.home(key)
        if node.node_id not in serving:
            raise KeyError(f"{node.name} does not serve {name!r}")
        node.nameserver.resolve(name)   # breaker gate
        return node

    # -- health (delegated to the home node's breakers) ----------------
    def report_failure(self, name: str, node: Node) -> None:
        node.nameserver.report_failure(name)

    def report_success(self, name: str, node: Node) -> None:
        node.nameserver.report_success(name)

    def breaker(self, name: str, node: Node):
        return node.nameserver.breaker(name)

    def shard_map(self, keys) -> Dict[object, int]:
        """key -> home node id (diagnostic snapshot for invariants)."""
        return {key: self.ring.owner(key) for key in keys}
