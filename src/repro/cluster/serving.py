"""Shard-local application services for the cluster fabric.

Each class here is a *shard* of a familiar app — the state one node
owns for its slice of the key space — packaged as a transport-style
``handler(meta, payload)`` plus the matching request encoder, so
:meth:`repro.cluster.fabric.Cluster.serve` can install it on every node
(``factory=KVShard`` works as-is: the factory contract is simply
``node -> handler``).

Handlers charge their CPU on the worker core actually draining them:
:class:`ShardHandler` exposes a ``serving(core)`` context manager in
the shape :class:`~repro.aio.server.RingService` expects
(``serve_context``), the same idiom the FS/net servers use to rebind
their transport's charging core during a drain.  ``Node.serve`` wires
it automatically.

Three app families, mirroring the paper's §5.4 evaluation suite:

* :class:`KVShard` — an in-memory YCSB-style record store (the
  capacity benchmark's workhorse: cheap, uniform service time).
* :class:`StaticShard` — the httpd static site, speaking the real HTTP
  wire format from :mod:`repro.apps.httpd` (parse/build functions are
  reused, not reimplemented).
* :class:`SqliteShard` — the mini-SQLite database over a full per-node
  FS stack (journal, pager, B+tree), the heavyweight shard whose
  statement costs come from the real :class:`~repro.apps.sqlite.db`.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Optional, Tuple

from repro.apps.httpd import build_request, build_response, parse_request
from repro.apps.sqlite.db import Database
from repro.cluster.hashring import stable_hash
from repro.cluster.loadgen import Request
from repro.ipc.transport import Payload
from repro.runtime.supervisor import GrantOnRestart
from repro.sel4 import Sel4XPCTransport
from repro.services.fs.server import build_fs_stack

#: KV record touch: hash probe + record codec, YCSB-server scale.
KV_BASE_CYCLES = 1_500
KV_CODEC_PER_BYTE = 0.5

#: Static-file serving: header parse + cache probe per request.
HTTP_BASE_CYCLES = 2_500
HTTP_BODY_PER_BYTE = 0.25


class ShardHandler:
    """Base shard: a pool handler that charges the draining core.

    Subclasses implement :meth:`handle`; :meth:`_tick` inside it
    charges the core currently serving (rebound per request by the
    ``serving`` context manager the pool enters around each SQE).
    """

    def __init__(self, node) -> None:
        self.node = node
        self._core = None
        self.requests = 0

    @contextmanager
    def serving(self, core):
        prev = self._core
        self._core = core
        try:
            yield
        finally:
            self._core = prev

    def _tick(self, cycles: int) -> None:
        core = self._core if self._core is not None \
            else self.node.frontend_core
        core.tick(int(cycles))

    def __call__(self, meta: tuple, payload: Payload):
        self.requests += 1
        return self.handle(meta, payload)

    def handle(self, meta: tuple, payload: Payload):
        raise NotImplementedError


class KVShard(ShardHandler):
    """This node's slice of a YCSB-style key/value table.

    Wire format (see :func:`kv_encoder`): ``meta = (op, seq)``,
    payload ``key`` for reads and ``key=value`` for updates.
    """

    def __init__(self, node) -> None:
        super().__init__(node)
        self.store = {}
        self.reads = 0
        self.updates = 0
        self.misses = 0

    def handle(self, meta: tuple, payload: Payload):
        op = meta[0]
        raw = payload.read()
        key, _, value = raw.partition(b"=")
        self._tick(KV_BASE_CYCLES + len(raw) * KV_CODEC_PER_BYTE)
        if op == "update":
            self.store[bytes(key)] = bytes(value)
            self.updates += 1
            return ("ok",) + tuple(meta[1:]), b"1"
        self.reads += 1
        stored = self.store.get(bytes(key))
        if stored is None:
            self.misses += 1
            return ("miss",) + tuple(meta[1:]), b""
        return ("ok",) + tuple(meta[1:]), stored


def kv_encoder(req: Request) -> Tuple[tuple, bytes, int]:
    payload = req.key.encode()
    if req.op != "read":
        payload += b"=" + b"v" * req.value_bytes
    return (req.op, req.seq), payload, max(req.value_bytes, 16)


class StaticShard(ShardHandler):
    """The httpd static site, sharded: every node pre-renders the pages
    its slice of the URL space could be asked for (content is a pure
    function of the path + site seed, so any owner renders the same
    bytes — what a CDN origin shard looks like).
    """

    def __init__(self, node, page_bytes: int = 512,
                 site_seed: int = 7) -> None:
        super().__init__(node)
        self.page_bytes = page_bytes
        self.site_seed = site_seed
        self.hits = 0
        self.not_found = 0

    def page_for(self, path: str) -> Optional[bytes]:
        if not path.startswith("/k"):
            return None
        rng = random.Random((self.site_seed << 32)
                            ^ (stable_hash(path) & 0xFFFFFFFF))
        body = (f"<html><body>{path}:".encode()
                + bytes(rng.getrandbits(8)
                        for _ in range(self.page_bytes)))
        return body + b"</body></html>"

    def handle(self, meta: tuple, payload: Payload):
        path = parse_request(payload.read())
        if path is None:
            self._tick(HTTP_BASE_CYCLES)
            return ("http", 400) + tuple(meta[1:]), \
                build_response(400, b"bad request")
        body = self.page_for(path)
        if body is None:
            self.not_found += 1
            self._tick(HTTP_BASE_CYCLES)
            return ("http", 404) + tuple(meta[1:]), \
                build_response(404, b"not found")
        self.hits += 1
        self._tick(HTTP_BASE_CYCLES + len(body) * HTTP_BODY_PER_BYTE)
        return ("http", 200) + tuple(meta[1:]), build_response(200, body)


def http_encoder(req: Request) -> Tuple[tuple, bytes, int]:
    return (("GET", req.seq), build_request(f"/{req.key}"),
            req.value_bytes + 1024)


class SqliteShard(ShardHandler):
    """The mini-SQLite database as one node's shard.

    Builds the full per-node storage stack — XPC transport, block
    device + FS server pair, journaled :class:`Database` — on the
    node's own kernel, then serves the KV wire format against a single
    table.  Statement costs (parse/plan/codec) and every page I/O are
    charged by the real sqlite/FS code paths; the ``serving`` context
    is the *transport's*, so nested FS calls issue from (and charge)
    the draining worker core.
    """

    def __init__(self, node, table: str = "usertable",
                 disk_blocks: int = 4096) -> None:
        super().__init__(node)
        self.table = table
        client_proc = node.kernel.create_process(f"{node.name}-db")
        client_thread = node.kernel.create_thread(client_proc)
        node.kernel.run_thread(node.frontend_core, client_thread)
        self.transport = Sel4XPCTransport(node.kernel, node.frontend_core,
                                          client_thread)
        _, self.fs, _ = build_fs_stack(self.transport, node.kernel,
                                       disk_blocks=disk_blocks)
        self.db = Database(self.fs, path=f"/{node.name}-db")
        self.db.create_table(table)
        self.reads = 0
        self.updates = 0
        self.misses = 0
        # Nested FS calls must charge the draining worker's core.
        self.serving = self.transport.serving

    def on_pool(self, pool) -> None:
        """Grant every worker thread (and restarted generations) the
        onward xcall-cap for the FS server — the same chain-cap wiring
        :meth:`repro.services.fs.server.FSServer.serve_async` does for
        its blockdev hop, one level up."""
        fs_sid = self.fs.sid
        for worker in pool.workers:
            self.transport.grant_to_thread(
                fs_sid, worker.supervisor.thread(worker.service_name))
            worker.supervisor.on_restart.append(
                GrantOnRestart(self.transport, fs_sid,
                               worker.supervisor))

    def handle(self, meta: tuple, payload: Payload):
        op = meta[0]
        raw = payload.read()
        key, _, value = raw.partition(b"=")
        key = bytes(key)
        if op == "update":
            self.updates += 1
            if self.db.get(self.table, key) is None:
                self.db.insert(self.table, key, bytes(value))
            else:
                self.db.update(self.table, key, bytes(value))
            return ("ok",) + tuple(meta[1:]), b"1"
        self.reads += 1
        stored = self.db.get(self.table, key)
        if stored is None:
            self.misses += 1
            return ("miss",) + tuple(meta[1:]), b""
        return ("ok",) + tuple(meta[1:]), stored
