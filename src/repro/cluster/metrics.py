"""Cluster-wide metric rollups and the obs mirror.

The fabric keeps its own always-on :class:`MetricsRegistry` (control
decisions — autoscaling — must be identical whether or not an
observability session is armed).  This module is the read side: a
:func:`rollup` over that registry plus the per-node simulator state,
shaped for the capacity report, and :func:`mirror_to_obs`, which copies
the fabric's counters into an active :mod:`repro.obs` session *after*
a run so cluster metrics appear alongside kernel/aio metrics in obs
reports without ever feeding back into control.
"""

from __future__ import annotations

from typing import Optional

import repro.obs as obs


def node_rollup(cluster, node) -> dict:
    """One node's serving view: clock, RPC traffic, pool posture, p99."""
    hist = cluster.registry.get(
        f"cluster.{node.name}.req_latency_cycles")
    out = {
        "node": node.name,
        "alive": node.alive,
        "wall_cycles": node.now,
        "rpc_in": node.rpc_in,
        "rpc_out": node.rpc_out,
        "active_workers": sum(p.active_workers
                              for p in node.live_pools),
        "provisioned_workers": sum(len(p.workers)
                                   for p in node.live_pools),
        "scale_events": sum(p.scale_events for p in node.live_pools),
        "completed": sum(p.completed for p in node.live_pools),
        "requests": None if hist is None else hist.count,
    }
    if hist is not None and hist.count:
        out["p50_cycles"] = round(hist.percentile(50), 1)
        out["p99_cycles"] = round(hist.percentile(99), 1)
        out["mean_cycles"] = round(hist.mean, 1)
    return out


def rollup(cluster) -> dict:
    """The whole fabric: per-node rollups + cluster-level aggregates."""
    hist = cluster.registry.get("cluster.req_latency_cycles")
    counters = {
        name: cluster.registry.get(name).value
        for name in cluster.registry.names()
        if cluster.registry.get(name).kind == "counter"
    }
    out = {
        "nodes": [node_rollup(cluster, node)
                  for _, node in sorted(cluster.nodes.items())],
        "live_nodes": len(cluster.live_nodes()),
        "wall_cycles": cluster.wall_cycles,
        "counters": counters,
        "rpc_messages": cluster.link.messages,
        "rpc_bytes": cluster.link.bytes,
        "trace_hash": cluster.trace_hash(),
    }
    if hist is not None and hist.count:
        out["requests"] = hist.count
        out["p50_cycles"] = round(hist.percentile(50), 1)
        out["p99_cycles"] = round(hist.percentile(99), 1)
        out["mean_cycles"] = round(hist.mean, 1)
    return out


def hot_shard(cluster) -> Optional[str]:
    """The node that served the most requests (skew diagnostic)."""
    busiest, count = None, -1
    for node in cluster.nodes.values():
        hist = cluster.registry.get(
            f"cluster.{node.name}.req_latency_cycles")
        served = 0 if hist is None else hist.count
        if served > count:
            busiest, count = node.name, served
    return busiest


def mirror_to_obs(cluster) -> int:
    """Copy the fabric's counters/gauges into the active obs session.

    A one-way, after-the-fact export (no-op without a session): obs
    never becomes an input to the fabric's control loop, so runs stay
    cycle-identical with obs on or off.  Returns metrics mirrored.
    """
    if obs.ACTIVE is None:
        return 0
    registry = obs.ACTIVE.registry
    mirrored = 0
    for name in cluster.registry.names():
        metric = cluster.registry.get(name)
        if metric.kind == "counter":
            target = registry.counter(name)
            delta = metric.value - target.value
            if delta > 0:
                target.inc(delta, cycle=metric.updated_cycle)
        elif metric.kind == "gauge":
            registry.gauge(name).set(metric.value,
                                     cycle=metric.updated_cycle)
        else:
            target = registry.histogram(name)
            for sample in metric.samples:
                target.observe(sample, cycle=metric.updated_cycle)
        mirrored += 1
    return mirrored
