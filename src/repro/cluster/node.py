"""One machine of the cluster: kernel + engines + pools + nameserver.

A :class:`Node` owns a full single-machine stack — a
:class:`~repro.hw.machine.Machine` (its own cycle clock), a kernel, and
one :class:`~repro.aio.pool.WorkerPool` per served name — plus the
node-local :class:`~repro.services.nameserver.NameServer` whose circuit
breakers gate resolution, exactly as on a single-machine deployment.
The cluster's sharded directory (:mod:`repro.cluster.naming`) hashes
over these per-node name servers rather than replacing them.

Core 0 is the node's *frontend* core: it runs the RPC client side
(serialization charges for remote sends land there), while cores 1..K
host the pool workers.  Nothing outside :mod:`repro.cluster.node`,
:mod:`repro.cluster.rpc`, and :mod:`repro.cluster.fabric` may reach
through a Node into its ``kernel``/``machine`` — that is the
cluster-discipline lint rule; remote work goes through the RPC layer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.aio.pool import WorkerPool
from repro.hw.machine import Machine
from repro.params import CycleParams
from repro.sel4 import Sel4Kernel
from repro.services.nameserver import NameServer


class NodeDownError(Exception):
    """The target node is dead (machine-level failure)."""

    def __init__(self, node_id) -> None:
        self.node_id = node_id
        super().__init__(f"node {node_id!r} is down")


class _NodeDirectory:
    """The transport-shaped adapter behind the node-local NameServer.

    The per-node name server only needs a cycle source (for breaker
    cooldowns) and a capability-grant hook; pools manage their own
    grants at construction, so the grant hook is a no-op here.
    """

    def __init__(self, node: "Node") -> None:
        self.node = node

    @property
    def core(self):
        return self.node.machine.core0

    def grant_to_thread(self, sid: int, thread) -> None:
        """Pools grant caps at construction; nothing to do here."""


class Node:
    """One simulated machine serving named pools behind a nameserver."""

    def __init__(self, node_id: int, cores: int = 2,
                 mem_bytes: int = 64 * 1024 * 1024,
                 params: Optional[CycleParams] = None,
                 kernel_cls=Sel4Kernel,
                 breaker_threshold: int = 3,
                 breaker_cooldown: int = 100_000) -> None:
        self.node_id = node_id
        self.name = f"n{node_id}"
        self.machine = Machine(cores=cores, mem_bytes=mem_bytes,
                               params=params)
        self.kernel = kernel_cls(self.machine)
        self.alive = True
        self.nameserver = NameServer(
            _NodeDirectory(self), breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown)
        self.pools: List[WorkerPool] = []
        self._sids: Dict[str, int] = {}
        #: Cross-node traffic counters (the fabric maintains these).
        self.rpc_in = 0
        self.rpc_out = 0

    # -- serving -------------------------------------------------------
    def serve(self, name: str, handler: Callable,
              workers: Optional[int] = None, **pool_kwargs) -> WorkerPool:
        """Start a worker pool for *name* and publish it locally.

        Workers occupy cores 1..workers (core 0 stays the frontend);
        a single-core node runs the worker on core 0.
        """
        if name in self._sids:
            raise KeyError(f"{self.name} already serves {name!r}")
        cores = self.machine.cores[1:] if len(self.machine.cores) > 1 \
            else self.machine.cores
        if workers is not None:
            cores = cores[:workers]
        if hasattr(handler, "serving"):
            # Shard handlers charge app CPU on the draining core via
            # the FS/net servers' serve_context idiom.
            pool_kwargs.setdefault("serve_context", handler.serving)
        pool = WorkerPool(self.kernel, handler, cores,
                          name=f"{self.name}.{name}", **pool_kwargs)
        if hasattr(handler, "on_pool"):
            # Shards with onward server->server calls (sqlite -> FS ->
            # blockdev) grant their worker threads the chain caps here.
            handler.on_pool(pool)
        sid = len(self.pools)
        self.pools.append(pool)
        self._sids[name] = sid
        self.nameserver.publish(name, sid)
        return pool

    def pool(self, name: str) -> WorkerPool:
        """Resolve *name* through the local nameserver (breaker-gated)."""
        if not self.alive:
            raise NodeDownError(self.node_id)
        return self.pools[self.nameserver.resolve(name)]

    def serves(self, name: str) -> bool:
        return name in self._sids

    def retire(self, name: str) -> None:
        """Cleanly take *name* out of service: every worker goes down
        through its supervisor's retire path (killed without a restart,
        all charges on the worker's core) and the local binding is
        unpublished — no stale entry left to die by breaker timeout."""
        sid = self._sids.pop(name)
        pool = self.pools[sid]
        for worker in pool.workers:
            worker.supervisor.retire(worker.service_name)
        # Hold the sid slot (other pools' sids must stay stable) but
        # drop the pool itself so control loops skip it.
        self.pools[sid] = None
        self.nameserver.unpublish(name)

    # -- the node clock ------------------------------------------------
    def wait_until(self, cycle: int) -> None:
        """Idle-advance the frontend core to *cycle* (an arrival stamp
        on the shared open-loop timeline).  A node's wall clock keeps
        moving while it waits for traffic — which is what breaker
        cooldowns and SLO windows are measured against; without this, a
        node whose every request is rejected at the directory would
        freeze its own clock and never finish a cooldown."""
        if self.alive and cycle > self.frontend_core.cycles:
            self.frontend_core.tick(cycle - self.frontend_core.cycles)

    @property
    def frontend_core(self):
        return self.machine.core0

    @property
    def now(self) -> int:
        """Node wall-clock: the busiest core's cycle count."""
        return max(core.cycles for core in self.machine.cores)

    # -- failure -------------------------------------------------------
    def kill(self) -> None:
        """Machine-level death: every process on the node is gone.

        The fabric removes the node from the shard ring and re-homes
        its keys; in-flight requests surface :class:`NodeDownError`.
        """
        self.alive = False

    @property
    def live_pools(self) -> List[WorkerPool]:
        """The pools still in service (retired slots skipped)."""
        return [pool for pool in self.pools if pool is not None]

    def stats(self) -> dict:
        return {
            "node": self.name,
            "alive": self.alive,
            "wall_cycles": self.now,
            "rpc_in": self.rpc_in,
            "rpc_out": self.rpc_out,
            "pools": {name: {
                "active_workers": self.pools[sid].active_workers,
                "submitted": self.pools[sid].submitted,
                "completed": self.pools[sid].completed,
                "scale_events": self.pools[sid].scale_events,
            } for name, sid in sorted(self._sids.items())},
        }
