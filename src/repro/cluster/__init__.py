"""repro.cluster — the multi-node serving fabric.

Scales the single-machine XPC stack out: N :class:`Node`\\ s (each a
full machine + kernel + worker pools) behind a :class:`Cluster` with a
consistent-hash :class:`ShardedNameServer`, cycle-priced cross-node
RPC, a seeded synthetic-population :class:`LoadGenerator`, and
SLO-driven per-node autoscaling.  See DESIGN.md §16 and
``benchmarks/test_cluster_capacity.py`` for the capacity-planning story
this underwrites.
"""

from repro.cluster.fabric import Cluster, ClusterRunStats, default_encoder
from repro.cluster.hashring import HashRing, stable_hash
from repro.cluster.loadgen import (DiurnalSchedule, LoadGenerator,
                                   OpenLoopArrivals, Request, ZipfSampler)
from repro.cluster.metrics import (hot_shard, mirror_to_obs,
                                   node_rollup, rollup)
from repro.cluster.naming import ShardedNameServer
from repro.cluster.node import Node, NodeDownError
from repro.cluster.rpc import ClusterPartitionedError, RpcLink, remote_submit
from repro.cluster.serving import (KVShard, SqliteShard, StaticShard,
                                   http_encoder, kv_encoder)

__all__ = [
    "Cluster", "ClusterRunStats", "ClusterPartitionedError",
    "DiurnalSchedule", "HashRing", "KVShard", "LoadGenerator", "Node",
    "NodeDownError", "OpenLoopArrivals", "Request", "RpcLink",
    "ShardedNameServer", "SqliteShard", "StaticShard", "ZipfSampler",
    "default_encoder", "hot_shard", "http_encoder", "kv_encoder",
    "mirror_to_obs", "node_rollup", "remote_submit", "rollup",
    "stable_hash",
]
