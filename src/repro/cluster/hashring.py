"""Consistent hashing with virtual nodes — the cluster's shard map.

The ring places ``vnodes`` virtual points per node on a 64-bit circle
(SHA-1 based, so placement is deterministic and immune to
``PYTHONHASHSEED``); a key is owned by the first virtual point at or
after its own hash.  Virtual nodes smooth the per-node load imbalance
to a few percent, and — the property the fabric leans on — a node
join/leave moves only the keys between its virtual points and their
predecessors: ~1/N of the key space instead of a full reshuffle.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

_SPACE = 1 << 64


def stable_hash(data) -> int:
    """A 64-bit hash that is stable across interpreter runs."""
    if isinstance(data, str):
        data = data.encode()
    elif not isinstance(data, (bytes, bytearray)):
        data = repr(data).encode()
    return int.from_bytes(hashlib.sha1(bytes(data)).digest()[:8], "big")


class HashRing:
    """node-id → vnode points on a 2^64 circle; key → owning node."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("need at least one virtual node per node")
        self.vnodes = vnodes
        #: sorted vnode hash points, parallel to :attr:`_owners`.
        self._points: List[int] = []
        self._owners: List[object] = []
        self._nodes: Dict[object, List[int]] = {}

    # -- membership ----------------------------------------------------
    def add(self, node_id) -> None:
        if node_id in self._nodes:
            raise KeyError(f"node {node_id!r} already on the ring")
        points = []
        for v in range(self.vnodes):
            h = stable_hash(f"{node_id}#{v}")
            idx = bisect.bisect(self._points, h)
            self._points.insert(idx, h)
            self._owners.insert(idx, node_id)
            points.append(h)
        self._nodes[node_id] = points

    def remove(self, node_id) -> None:
        points = self._nodes.pop(node_id, None)
        if points is None:
            raise KeyError(f"node {node_id!r} is not on the ring")
        for h in points:
            idx = bisect.bisect_left(self._points, h)
            while self._owners[idx] != node_id:
                idx += 1        # hash collision between vnodes
            del self._points[idx]
            del self._owners[idx]

    def __contains__(self, node_id) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[object]:
        try:
            return sorted(self._nodes)
        except TypeError:           # mixed/unorderable ids
            return sorted(self._nodes, key=repr)

    # -- lookup --------------------------------------------------------
    def owner(self, key):
        """The node owning *key* (first vnode clockwise of its hash)."""
        if not self._points:
            raise LookupError("hash ring is empty")
        idx = bisect.bisect(self._points, stable_hash(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def assignments(self, keys: Iterable) -> Dict[object, object]:
        return {key: self.owner(key) for key in keys}

    @staticmethod
    def moved_fraction(before: Dict, after: Dict) -> float:
        """Fraction of keys whose owner changed between two snapshots
        of :meth:`assignments` (the rebalance cost of a ring change)."""
        if not before:
            return 0.0
        moved = sum(1 for key, owner in before.items()
                    if after.get(key) != owner)
        return moved / len(before)

    def spread(self, samples: int = 4096) -> Tuple[float, float]:
        """(min, max) per-node share over *samples* probe keys —
        a balance diagnostic for tests and the capacity report."""
        counts: Dict[object, int] = {n: 0 for n in self._nodes}
        for i in range(samples):
            counts[self.owner(f"probe-{i}")] += 1
        shares = [c / samples for c in counts.values()]
        return min(shares), max(shares)
