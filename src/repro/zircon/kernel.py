"""The Zircon-like kernel personality.

Synchronous call semantics are layered over async channels exactly the
way Fuchsia's FIDL does it: write request → wake server → server reads,
handles, writes reply → wake client → client reads.  Every direction
pays a syscall, a handle-table check, a kernel copy, and a port-wait
wake-up with scheduler involvement — Zircon "does not optimize the
scheduling in the IPC path" (paper §5.2).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.hw.cpu import Core, TrapCause
from repro.kernel.kernel import BaseKernel, KernelError
from repro.kernel.objects import Right
from repro.kernel.process import Process, Thread
from repro.zircon.channel import (
    ChannelEnd, HandleTable, Message, channel_create,
)


class ZirconKernel(BaseKernel):
    """Zircon personality on top of the common control plane."""

    def __init__(self, machine, name: str = "Zircon") -> None:
        super().__init__(machine, name)
        self._handles: Dict[int, HandleTable] = {}
        self.last_oneway_cycles = 0

    def handle_table(self, process: Process) -> HandleTable:
        table = self._handles.get(process.koid)
        if table is None:
            table = HandleTable()
            self._handles[process.koid] = table
        return table

    # ------------------------------------------------------------------
    # Channel syscalls
    # ------------------------------------------------------------------
    def create_channel(self, a: Process, b: Process,
                       name: str = "chan") -> Tuple[int, int]:
        """Create a channel pair; returns (handle_in_a, handle_in_b)."""
        end_a, end_b = channel_create(name)
        return (self.handle_table(a).install(end_a),
                self.handle_table(b).install(end_b))

    def channel_write(self, core: Core, thread: Thread, handle: int,
                      msg: Message) -> None:
        """``zx_channel_write``: trap + handle check + copy in.

        Handles listed in ``msg.handles`` are *moved*: removed from the
        sender's table, carried as kernel objects, and re-installed in
        the receiver's table at read time (Zircon's handle transfer).
        """
        p = self.params
        core.trap(TrapCause.SYSCALL)
        core.tick(p.zircon_syscall + p.zircon_handle_check)
        end = self.handle_table(thread.process).get(
            handle, Right.WRITE)
        if not isinstance(end, ChannelEnd):
            raise KernelError("handle is not a channel")
        table = self.handle_table(thread.process)
        moved = []
        for sent_handle in msg.handles:
            obj = table.get(sent_handle)   # validates before the move
            core.tick(p.zircon_handle_check)
            table.close_keep_object(sent_handle)
            moved.append(obj)
        core.tick(p.copy_from_user_setup + p.copy_cycles(len(msg.data)))
        end.write(Message(msg.meta, msg.data, tuple(moved)))
        core.trap_return()

    def channel_read(self, core: Core, thread: Thread,
                     handle: int) -> Message:
        """``zx_channel_read``: trap + handle check + copy out.

        Transferred handles are installed into the reader's table; the
        returned message's ``handles`` are the *new* handle values.
        """
        p = self.params
        core.trap(TrapCause.SYSCALL)
        core.tick(p.zircon_syscall + p.zircon_handle_check)
        end = self.handle_table(thread.process).get(handle, Right.READ)
        if not isinstance(end, ChannelEnd):
            raise KernelError("handle is not a channel")
        msg = end.read()
        table = self.handle_table(thread.process)
        installed = tuple(table.install(obj) for obj in msg.handles)
        if installed:
            core.tick(p.zircon_handle_check * len(installed))
        core.tick(p.copy_to_user_setup + p.copy_cycles(len(msg.data)))
        core.trap_return()
        return Message(msg.meta, msg.data, installed)

    def port_wait_wakeup(self, core: Core, sleeper: Thread,
                         waker: Thread, cross_core: bool = False) -> None:
        """Block on a port and get woken: the expensive part of the
        simulated-synchronous pattern (scheduler round trip included)."""
        p = self.params
        core.tick(p.zircon_port_wait)
        self.scheduler.block(core, waker)
        self.scheduler.enqueue(core, sleeper)
        picked = self.scheduler.pick_next(core)
        if picked is not None:
            self.scheduler.context_switch(core, picked)
        if cross_core:
            core.tick(p.ipi_cost + p.remote_wakeup)

    # ------------------------------------------------------------------
    # Synchronous call emulation (FIDL-style)
    # ------------------------------------------------------------------
    def sync_call(self, core: Core, client: Thread, server: Thread,
                  client_handle: int, server_handle: int,
                  handler, meta: tuple, payload: bytes,
                  cross_core: bool = False) -> Tuple[tuple, bytes]:
        """One simulated-synchronous round trip over a channel pair."""
        from repro.ipc.transport import CopiedPayload

        start = core.cycles
        self.channel_write(core, client, client_handle,
                           Message(meta, payload))
        self.port_wait_wakeup(core, server, client, cross_core)
        request = self.channel_read(core, server, server_handle)
        self.last_oneway_cycles = core.cycles - start
        self.ipc_stats["calls"] += 1
        self.ipc_stats["bytes"] += len(payload)

        core.current_thread = server
        core.set_address_space(server.process.aspace, charge=False)
        handler_start = core.cycles
        reply_meta, reply = handler(
            request.meta, CopiedPayload(request.data))
        handler_cycles = core.cycles - handler_start
        if isinstance(reply, int):
            raise KernelError(
                "in-place (int) replies are an XPC-transport feature"
            )
        reply = reply or b""

        self.channel_write(core, server, server_handle,
                           Message(reply_meta, reply))
        self.port_wait_wakeup(core, client, server, cross_core)
        response = self.channel_read(core, client, client_handle)
        core.current_thread = client
        core.set_address_space(client.process.aspace, charge=False)
        self.last_mech_cycles = (core.cycles - start) - handler_cycles
        return response.meta, response.data
