"""Zircon-like channels and per-process handle tables.

Zircon IPC is asynchronous message passing over channel pairs: a
``channel_write`` copies the message from user space into a kernel
packet, a ``channel_read`` copies it out on the other side — the kernel
"twofold copy" of paper Figure 10(a) — and synchronous call semantics
(as Fuchsia's file system interfaces need) are *simulated* on top with a
wait per direction, which is why one round trip costs tens of thousands
of cycles (paper §1, §5.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.kernel.objects import KernelObject, Right


class HandleError(Exception):
    """Bad handle, wrong type, or missing rights."""


@dataclass
class Message:
    """One kernel-buffered channel packet."""

    meta: tuple
    data: bytes
    handles: tuple = ()


class ChannelEnd(KernelObject):
    """One endpoint of a channel pair."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.peer: Optional["ChannelEnd"] = None
        self.queue: Deque[Message] = deque()
        self.closed = False

    def write(self, msg: Message) -> None:
        if self.peer is None or self.peer.closed:
            raise HandleError("peer closed")
        self.peer.queue.append(msg)

    def read(self) -> Message:
        if not self.queue:
            raise HandleError("channel empty (would block)")
        return self.queue.popleft()


def channel_create(name: str = "chan") -> Tuple[ChannelEnd, ChannelEnd]:
    a = ChannelEnd(f"{name}.a")
    b = ChannelEnd(f"{name}.b")
    a.peer, b.peer = b, a
    return a, b


class HandleTable:
    """Per-process handle table (Zircon handle = index + rights)."""

    def __init__(self) -> None:
        self._table: Dict[int, Tuple[KernelObject, Right]] = {}
        self._next = 1

    def install(self, obj: KernelObject,
                rights: Right = Right.ALL) -> int:
        handle = self._next
        self._next += 1
        self._table[handle] = (obj, rights)
        return handle

    def get(self, handle: int, need: Right = Right.NONE) -> KernelObject:
        entry = self._table.get(handle)
        if entry is None:
            raise HandleError(f"bad handle {handle}")
        obj, rights = entry
        if need & ~rights:
            raise HandleError(f"handle {handle} lacks rights {need!r}")
        return obj

    def close(self, handle: int) -> None:
        entry = self._table.pop(handle, None)
        if entry is None:
            raise HandleError(f"double close of handle {handle}")
        obj = entry[0]
        if isinstance(obj, ChannelEnd):
            obj.closed = True

    def close_keep_object(self, handle: int) -> None:
        """Remove the table entry without killing the object — the
        kernel uses this when a handle is moved through a channel."""
        if self._table.pop(handle, None) is None:
            raise HandleError(f"moving unknown handle {handle}")

    def __len__(self) -> int:
        return len(self._table)
