"""A Zircon-like kernel: handle tables, async channels, and the
simulated-synchronous call pattern — plus the Zircon-XPC port."""

from repro.zircon.channel import (
    ChannelEnd, HandleTable, HandleError, Message, channel_create,
)
from repro.zircon.kernel import ZirconKernel
from repro.zircon.xpcglue import ZirconTransport, ZirconXPCTransport

__all__ = [
    "ChannelEnd", "HandleTable", "HandleError", "Message",
    "channel_create", "ZirconKernel", "ZirconTransport",
    "ZirconXPCTransport",
]
