"""Zircon transports: baseline channels and the Zircon-XPC port."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hw.cpu import Core
from repro.ipc.transport import ServerRegistration, Transport
from repro.ipc.xpc_transport import XPCTransport
from repro.kernel.process import Thread
from repro.zircon.kernel import ZirconKernel


class ZirconTransport(Transport):
    """Baseline Zircon: FIDL-style synchronous calls over channels."""

    name = "Zircon"
    __snap_state__ = Transport.__snap_state__ + (
        "kernel", "core", "client_thread", "_channels")

    def __init__(self, kernel: ZirconKernel, core: Core,
                 client_thread: Thread) -> None:
        super().__init__()
        self.kernel = kernel
        self.core = core
        self.client_thread = client_thread
        self._channels: Dict[int, Tuple[int, int]] = {}

    def _bind(self, reg: ServerRegistration) -> None:
        client_h, server_h = self.kernel.create_channel(
            self.client_thread.process, reg.server_process, reg.name)
        self._channels[reg.sid] = (client_h, server_h)

    def call(self, sid: int, meta: tuple = (), payload: bytes = b"",
             reply_capacity: int = 0,
             cross_core: bool = False,
             window_slice=None) -> Tuple[tuple, bytes]:
        reg = self._reg(sid)
        self.call_count += 1
        self.bytes_moved += len(payload)
        client_h, server_h = self._channels[sid]
        self.kernel.run_thread(self.core, self.client_thread)
        result = self.kernel.sync_call(
            self.core, self.client_thread, reg.server_thread,
            client_h, server_h, reg.handler, meta, payload,
            cross_core=cross_core)
        self.ipc_cycles += self.kernel.last_mech_cycles
        return result


class ZirconXPCTransport(XPCTransport):
    """The Zircon-XPC port: XPC data plane + the FIDL wrapper's
    residual per-call library overhead (paper §5.1)."""

    name = "Zircon-XPC"
    lib_overhead = 60
