"""Measurement helpers: CDFs, percentiles, normalization, means."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def cdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points (value, fraction <= value)."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    points = []
    for i, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, i / n)
        else:
            points.append((value, i / n))
    return points


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def normalize(values: Dict[str, float],
              baseline: str) -> Dict[str, float]:
    """Divide every series value by the baseline's (paper Fig. 8)."""
    base = values[baseline]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {name: value / base for name, value in values.items()}


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(fast_cycles: float, slow_cycles: float) -> float:
    """How many times faster *fast* is than *slow* (>1 = faster)."""
    if fast_cycles <= 0:
        raise ValueError("cycles must be positive")
    return slow_cycles / fast_cycles


def throughput_mb_s(nbytes: int, cycles: int,
                    freq_hz: float = 100e6) -> float:
    """Bytes-over-cycles as MB/s at the FPGA clock (100 MHz)."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return nbytes / (cycles / freq_hz) / 1e6


def ops_per_sec(ops: int, cycles: int, freq_hz: float = 100e6) -> float:
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return ops / (cycles / freq_hz)
