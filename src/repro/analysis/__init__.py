"""Measurement and reporting helpers for the benchmark harness."""

from repro.analysis.stats import (
    cdf, geomean, normalize, ops_per_sec, percentile, speedup,
    throughput_mb_s,
)
from repro.analysis.report import render_series, render_table

__all__ = [
    "cdf", "geomean", "normalize", "ops_per_sec", "percentile",
    "speedup", "throughput_mb_s", "render_series", "render_table",
]
