"""Event tracing: observe the machine's IPC activity over time.

Attach a :class:`Tracer` to cores and XPC engines and every trap,
address-space switch, xcall, xret, and swapseg is recorded with its
cycle timestamp — the simulator equivalent of the paper's Panda
record-and-replay methodology (§5.6).  Used for debugging transports
and for the timeline assertions in the test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    core_id: int
    kind: str          # "trap" | "trap-ret" | "as-switch" | "xcall" ...
    detail: str = ""

    def __str__(self) -> str:
        return (f"[{self.cycle:>10}] core{self.core_id} "
                f"{self.kind:<10} {self.detail}")


class Tracer:
    """A bounded in-memory event recorder.

    The buffer is a ring: when full, the *oldest* event is evicted so
    the window always holds the most recent activity (what you want
    when something goes wrong at the end of a long run).  ``dropped``
    counts the evictions.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0

    @property
    def events(self) -> List[TraceEvent]:
        """The retained window, oldest first."""
        return list(self._events)

    # ------------------------------------------------------------------
    def emit(self, core, kind: str, detail: str = "") -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(core.cycles, core.core_id, kind, detail))

    # ------------------------------------------------------------------
    def attach(self, machine) -> "Tracer":
        """Attach to every core and engine of *machine*."""
        for core in machine.cores:
            core.tracer = self
        for engine in machine.engines:
            engine.tracer = self
        return self

    def detach(self, machine) -> None:
        for core in machine.cores:
            core.tracer = None
        for engine in machine.engines:
            engine.tracer = None

    # ------------------------------------------------------------------
    def filter(self, kind: Optional[str] = None,
               core_id: Optional[int] = None) -> List[TraceEvent]:
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if core_id is not None:
            out = [e for e in out if e.core_id == core_id]
        return out

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def spans(self, open_kind: str, close_kind: str) -> List[int]:
        """Durations (cycles) between matching open/close events,
        LIFO-paired per core (xcall/xret nesting)."""
        stacks: Dict[int, List[int]] = {}
        durations: List[int] = []
        for event in self._events:
            if event.kind == open_kind:
                stacks.setdefault(event.core_id, []).append(event.cycle)
            elif event.kind == close_kind:
                stack = stacks.get(event.core_id)
                if stack:
                    durations.append(event.cycle - stack.pop())
        return durations

    def to_text(self, limit: int = 50) -> str:
        events = self.events
        lines = [str(e) for e in events[:limit]]
        if len(events) > limit:
            lines.append(f"... {len(events) - limit} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} older events dropped "
                         f"(capacity)")
        return "\n".join(lines)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
