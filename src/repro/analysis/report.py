"""Plain-text table/series renderers used by the benchmark harness.

Every benchmark prints the same rows/series the paper's table or
figure reports, through these helpers, so ``pytest benchmarks/ -s``
regenerates a text version of the evaluation section.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Aligned monospace table with a title rule."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, "=" * len(title), fmt(headers), rule]
    lines += [fmt(row) for row in str_rows]
    return "\n".join(lines)


def render_series(title: str, x_label: str,
                  series: Dict[str, Dict], x_values: Sequence,
                  fmt: str = "{:.2f}") -> str:
    """A figure as a table: one column per x, one row per series."""
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, points in series.items():
        row = [name]
        for x in x_values:
            value = points.get(x)
            row.append("-" if value is None else fmt.format(value))
        rows.append(row)
    return render_table(title, headers, rows)
