"""Plain-text table/series renderers used by the benchmark harness.

Every benchmark prints the same rows/series the paper's table or
figure reports, through these helpers, so ``pytest benchmarks/ -s``
regenerates a text version of the evaluation section.
"""

from __future__ import annotations

import unicodedata
from typing import Dict, Iterable, List, Sequence


def display_width(text: str) -> int:
    """Terminal cell width of *text*: East-Asian wide/fullwidth
    characters occupy two cells, combining marks occupy none."""
    width = 0
    for ch in text:
        if unicodedata.combining(ch):
            continue
        width += 2 if unicodedata.east_asian_width(ch) in "WF" else 1
    return width


def _pad(cell: str, width: int) -> str:
    return cell + " " * max(width - display_width(cell), 0)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Aligned monospace table with a title rule.

    Robust to ragged input: short rows are padded with empty cells and
    long rows grow extra (untitled) columns instead of crashing.
    Alignment uses terminal display width, so CJK file names and other
    wide glyphs keep columns straight.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    ncols = max([len(headers)] + [len(r) for r in str_rows])
    headers = list(headers) + [""] * (ncols - len(headers))
    str_rows = [row + [""] * (ncols - len(row)) for row in str_rows]
    widths = [display_width(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], display_width(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(_pad(c, w)
                         for c, w in zip(cells, widths)).rstrip()

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1)) if widths else ""
    lines = [title, "=" * max(display_width(title), 1), fmt(headers),
             rule]
    lines += [fmt(row) for row in str_rows]
    return "\n".join(lines)


def render_series(title: str, x_label: str,
                  series: Dict[str, Dict], x_values: Sequence,
                  fmt: str = "{:.2f}") -> str:
    """A figure as a table: one column per x, one row per series."""
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, points in series.items():
        row = [name]
        for x in x_values:
            value = points.get(x)
            row.append("-" if value is None else fmt.format(value))
        rows.append(row)
    return render_table(title, headers, rows)
