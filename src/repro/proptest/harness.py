"""The differential harness: one program, every mechanism, one oracle.

For each executor the harness builds a fresh machine inside its own
:class:`~repro.obs.ObsSession` (PMU banks attach at machine creation),
runs the program, and then checks three things:

1. **Outcomes** — every op's observable outcome equals the oracle's,
   byte for byte.  This is the differential property: five mechanisms
   and the batched/faulted variants must disagree with the reference
   model in nothing observable.
2. **Clock sanity** — cycles are *never* compared exactly across
   mechanisms (they differ by design; that difference is the paper).
   Instead: per-op cycle deltas are non-negative (the simulated clock
   is monotone), and the obs PMU's phase partition holds on every bank
   that did xcalls (``cycles.xcall.{captest,xentry,linkpush}`` is a
   complete partition of ``xcall.cycles`` — Figure 5's identity).
3. **Model agreement** — when a program did enough successful sync
   calls to be a signal, the measured mechanism-cycle totals must agree
   in *direction* with the analytic Table-7 model: XPC's per-chain cost
   is below L4's in the model, so the seL4-XPC executor must spend
   fewer mechanism cycles than the seL4 baseline on the same ops.
4. **Fast-core equivalence** — the one exception to "never compare
   cycles across executors": the table-driven ``fastcore`` executor
   re-implements the seL4-XPC reference, so when both are in the
   roster their per-op cycle deltas must be *identical*, op by op.
   A mismatch is a :class:`Divergence` (expected/actual carry the two
   deltas as ``("cycles", n)``), so the shrinker can chase it like any
   outcome bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import repro.obs as obs
import repro.san as san
from repro.compare.mechanisms import by_name
from repro.proptest.executors import (ExecutionReport,
                                      default_executor_factories)
from repro.proptest.grammar import CallOp, Program
from repro.proptest.oracle import Oracle

#: Minimum successful sync calls before cycle totals carry enough
#: signal for the cross-mechanism direction check.
MODEL_CHECK_MIN_CALLS = 5

#: The executor pair the direction check compares (present in the
#: default roster; skipped when either is missing from a custom one).
MODEL_CHECK_PAIR = ("seL4-XPC", "seL4-twocopy")

#: The strict-equivalence pair: (fast re-implementation, reference).
EQUIVALENCE_PAIR = ("fastcore", "seL4-XPC")


@dataclass
class Divergence:
    """One op whose observed outcome differs from the oracle's."""

    executor: str
    op_index: int
    expected: tuple
    actual: tuple

    def describe(self) -> str:
        return (f"{self.executor}: op {self.op_index} expected "
                f"{self.expected!r}, got {self.actual!r}")


@dataclass
class DiffResult:
    """Everything one differential run of one program produced."""

    program: Program
    expected: List[tuple]
    reports: List[ExecutionReport]
    divergences: List[Divergence] = field(default_factory=list)
    #: Failed invariants (monotonicity, PMU identity, model direction):
    #: real failures, but not op-level divergences a shrinker can chase.
    invariant_failures: List[str] = field(default_factory=list)
    #: Total simulated cycles burned across all executors (budgeting).
    sim_cycles: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.invariant_failures


def expected_outcomes(program: Program) -> List[tuple]:
    return Oracle().expected(program)


def run_one(factory: Callable[[], object],
            program: Program) -> Tuple[ExecutionReport, object, int]:
    """Run *program* on a fresh executor under its own obs session.

    With ``REPRO_XPCSAN=1`` in the environment, every executor (not
    just the ``+xpcsan`` roster variant) also runs under a fresh XPCSan
    session, and its findings land in ``report.san_issues``.

    Returns ``(report, pmu_snapshot, sim_cycles)``.
    """
    session = obs.ObsSession()
    san_session = san.from_env()
    with obs.active(session):
        if san_session is not None:
            with san.active(san_session):
                executor = factory()
                report = executor.run(program)
        else:
            executor = factory()
            report = executor.run(program)
        snapshot = session.pmu.snapshot()
        sim_cycles = sum(core.cycles for core in executor.machine.cores)
    if san_session is not None and report.san_issues is None:
        report.san_issues = [issue.describe()
                             for issue in san_session.issues]
    return report, snapshot, sim_cycles


def _check_clock(report: ExecutionReport, snapshot) -> List[str]:
    problems = []
    for i, delta in enumerate(report.op_cycles):
        if delta < 0:
            problems.append(f"{report.executor}: op {i} moved the "
                            f"clock backwards ({delta})")
    for label in snapshot.labels():
        bank = snapshot.bank(label)
        total = bank.get("xcall.cycles", 0)
        if not total:
            continue
        phases = (bank.get("cycles.xcall.captest", 0)
                  + bank.get("cycles.xcall.xentry", 0)
                  + bank.get("cycles.xcall.linkpush", 0))
        if phases != total:
            problems.append(
                f"{report.executor}: PMU bank {label} phase partition "
                f"{phases} != xcall.cycles {total}")
    return problems


def _check_model_direction(program: Program, expected: List[tuple],
                           reports: List[ExecutionReport]) -> List[str]:
    ok_calls = sum(
        1 for op, outcome in zip(program.ops, expected)
        if isinstance(op, CallOp) and outcome and outcome[0] == "ok")
    if ok_calls < MODEL_CHECK_MIN_CALLS:
        return []
    by_exec: Dict[str, ExecutionReport] = {r.executor: r for r in reports}
    xpc_name, base_name = MODEL_CHECK_PAIR
    xpc, base = by_exec.get(xpc_name), by_exec.get(base_name)
    if xpc is None or base is None:
        return []
    # The analytic model's claim, restated for one hop of a typical
    # payload; the measurement must point the same way.
    model_xpc = by_name("XPC").chain_cycles(1, 256)
    model_l4 = by_name("L4").chain_cycles(1, 256)
    problems = []
    if not model_xpc < model_l4:
        problems.append(
            f"model inversion: XPC {model_xpc} >= L4 {model_l4}")
    measured_xpc = sum(xpc.op_ipc_cycles)
    measured_base = sum(base.op_ipc_cycles)
    if not measured_xpc < measured_base:
        problems.append(
            f"measured inversion over {ok_calls} ok calls: "
            f"{xpc_name} spent {measured_xpc} mechanism cycles, "
            f"{base_name} only {measured_base}")
    return problems


def _check_fast_equivalence(
        reports: List[ExecutionReport]) -> List[Divergence]:
    """Op-by-op cycle identity between the fast core and the reference.

    Outcome equality is already enforced against the oracle for both;
    what makes the fast core trustworthy as a *simulator* is that its
    precomputed tables charge exactly what the reference engine ticks.
    """
    by_exec: Dict[str, ExecutionReport] = {r.executor: r for r in reports}
    fast_name, ref_name = EQUIVALENCE_PAIR
    fast, ref = by_exec.get(fast_name), by_exec.get(ref_name)
    if fast is None or ref is None:
        return []
    divergences = []
    for i, (ref_delta, fast_delta) in enumerate(
            zip(ref.op_cycles, fast.op_cycles)):
        if ref_delta != fast_delta:
            divergences.append(Divergence(
                fast_name, i, ("cycles", ref_delta),
                ("cycles", fast_delta)))
    return divergences


def run_differential(program: Program,
                     factories: Optional[list] = None) -> DiffResult:
    """Run *program* on every executor and diff against the oracle."""
    if factories is None:
        factories = default_executor_factories()
    expected = expected_outcomes(program)
    reports: List[ExecutionReport] = []
    divergences: List[Divergence] = []
    invariant_failures: List[str] = []
    sim_cycles = 0
    for _name, factory in factories:
        report, snapshot, cycles = run_one(factory, program)
        reports.append(report)
        sim_cycles += cycles
        invariant_failures.extend(_check_clock(report, snapshot))
        for issue in report.san_issues or ():
            invariant_failures.append(f"{report.executor}: {issue}")
        for i, (want, got) in enumerate(zip(expected, report.outcomes)):
            if want != got:
                divergences.append(
                    Divergence(report.executor, i, want, got))
    divergences.extend(_check_fast_equivalence(reports))
    invariant_failures.extend(
        _check_model_direction(program, expected, reports))
    return DiffResult(program, expected, reports, divergences,
                      invariant_failures, sim_cycles)
