"""Executors: run one program through one real IPC mechanism.

Each executor owns a freshly built machine and interprets the same op
grammar the oracle models, but through the *actual* stack: the XPC
transport (seL4-XPC / Zircon-XPC), the trap-based baselines
(seL4-onecopy / seL4-twocopy / Zircon channels), and the aio
``Batcher``/``RingService`` ring for the async ops.  A faulting wrapper
replays any of them under a seeded :class:`~repro.faults.FaultPlan`
armed only with *recovery-transparent* points, so outcomes must still
match the oracle.

Semantics the executors must earn, not assume:

* On XPC transports, ``denied`` comes from the engine's xcall-cap test
  (grants/revocations go through the kernel's cap bitmap), theft comes
  from a real ``swapseg`` and the §3.3 return-time check, and
  ``peer-died`` comes from invalidated x-entries or §4.2 repair.
* Trap-based baselines have no xcall-caps, no relay segments and no
  return-time check, so the executor enforces the same policy at the
  library level (the paper's point: XPC moves these checks into
  hardware without changing what callers observe).
* Submits defer: they bind to the target's current generation and
  execute at the wait — through a per-generation ring on the batched
  executor, through a second always-granted client on the sync ones
  (the ring's drain entry belongs to the ring client, so sync-cap
  revocation never affects async traffic).

This module deliberately knows nothing about the oracle: the lint rule
``proptest-discipline`` (repro.verify) forbids importing it from here,
so executor and oracle cannot accidentally share their semantics code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import repro.faults as faults
import repro.san as san
from repro.aio.batch import Batcher, XPCRequestError
from repro.aio.server import RingService
from repro.faults import FaultPlan
from repro.hw.machine import Machine
from repro.ipc.transport import RelayPayload
from repro.ipc.xpc_transport import XPCTransport
from repro.kernel.kernel import BaseKernel
from repro.proptest.grammar import (
    CallOp, GrantOp, KillOp, PreemptOp, Program, RegisterOp, RevokeOp,
    SubmitOp, WaitOp, counter_bytes, xform_bytes,
)
from repro.sel4 import Sel4Kernel, Sel4Transport, Sel4XPCTransport
from repro.xpc.errors import (InvalidXCallCapError, InvalidXEntryError,
                              XPCPeerDiedError)
from repro.zircon import ZirconKernel, ZirconTransport, ZirconXPCTransport

#: Machines are small: programs are short and payloads tiny.
MEM_BYTES = 32 * 1024 * 1024

#: Exception-name → error kind, for errors a ring drain contained into
#: an SQE_ERR completion (the CQE carries the exception's class name).
_NAME_KINDS = {
    "XPCPeerDiedError": "peer-died",
    "InvalidXEntryError": "peer-died",
    "ProcessCrashFault": "peer-died",
    "InvalidXCallCapError": "denied",
}


def classify_exception(exc: BaseException) -> str:
    """Map a mechanism exception onto the outcome algebra's kinds."""
    if isinstance(exc, XPCRequestError):
        name = exc.reply_meta[0] if exc.reply_meta else ""
        return _NAME_KINDS.get(name, "handler-error")
    if isinstance(exc, (XPCPeerDiedError, InvalidXEntryError)):
        return "peer-died"
    if isinstance(exc, InvalidXCallCapError):
        return "denied"
    return "handler-error"


@dataclass
class ExecutionReport:
    """What one executor observed running one program."""

    executor: str
    outcomes: List[tuple]
    #: Simulated-clock delta of each op (monotonicity is an invariant).
    op_cycles: List[int]
    #: Mechanism-only (``ipc_cycles``) delta of each op, for the
    #: cross-mechanism ordering check — never compared exactly.
    op_ipc_cycles: List[int]
    #: The plan's replayable trace when run under a faulting wrapper.
    fault_trace: Optional[list] = None
    #: XPCSan findings when run under a sanitizing wrapper (must stay
    #: empty — any entry is an ownership/race invariant failure).
    san_issues: Optional[List[str]] = None


@dataclass
class _GenRec:
    """Executor-side state for one generation of one service name."""

    name: str
    kind: str
    process: object
    thread: object
    main_sid: int = -1
    async_sid: int = -1
    batcher: Optional[Batcher] = None
    ring: Optional[RingService] = None
    alive: bool = True
    granted: bool = False
    counter: int = 0
    kv: dict = field(default_factory=dict)


def _run_steps(executor, program: Program) -> ExecutionReport:
    """The shared program loop: drive *executor* one op at a time.

    Works on anything exposing ``step``/``core``/``_ipc_total`` — the
    bare executors, the faulting/sanitizing wrappers, and (via
    ``repro.snap``'s worlds) a restored mid-program executor resuming
    from an op-boundary snapshot.
    """
    outcomes, op_cycles, op_ipc = [], [], []
    for op in program.ops:
        cycles0 = executor.core.cycles
        ipc0 = executor._ipc_total()
        outcomes.append(executor.step(op))
        op_cycles.append(executor.core.cycles - cycles0)
        op_ipc.append(executor._ipc_total() - ipc0)
    return ExecutionReport(executor.name, outcomes, op_cycles, op_ipc)


class _ServiceHandler:
    """The per-registration service behaviour as a callable object.

    Deliberately not a closure: snapshots deepcopy the executor graph
    and these attributes follow the copy, where closure cells would
    keep pointing at the pre-snapshot generation record.
    """

    def __init__(self, executor: "_ExecutorBase", rec: "_GenRec") -> None:
        self.executor = executor
        self.rec = rec

    def __call__(self, meta: tuple, payload):
        rec = self.rec
        kind = rec.kind
        if kind == "echo":
            return ("echo",) + meta[1:], payload.read()
        if kind == "xform":
            return ("xf",) + meta[1:], xform_bytes(payload.read())
        if kind == "counter":
            rec.counter += meta[1]
            return (("cnt", rec.counter), counter_bytes(rec.counter))
        if kind == "kv":
            verb, key = meta[0], meta[1]
            if verb == "put":
                data = payload.read()
                rec.kv[key] = data
                return ("put", key, len(data)), None
            value = rec.kv.get(key)
            if value is None:
                raise KeyError(key)
            return ("get", key, len(value)), value
        if kind == "chain":
            return self.executor._chain_hop(meta, payload)
        if kind == "thief":
            return self.executor._thief_action(rec, meta)
        raise ValueError(f"unknown kind {kind!r}")


class _ExecutorBase:
    """Shared program loop, service registry and handler factory."""

    #: True when policy (grants, liveness, theft) is enforced by the
    #: mechanism itself rather than by this library.
    mechanism_enforces = False
    #: Sync executors on distinct mechanisms are comparable in
    #: ``ipc_cycles`` terms (same ops, different mechanism).
    comparable = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.services = {}            # name -> current _GenRec
        self.all_recs = []            # every generation ever registered
        self.pending = []             # [(rec|None, SubmitOp, future|None)]
        self.kernel: BaseKernel = None
        self.core = None
        self._gen_seq = 0             # deterministic registration labels

    # -- the program loop ---------------------------------------------
    def run(self, program: Program) -> ExecutionReport:
        return _run_steps(self, program)

    def step(self, op) -> tuple:
        """Execute one op; mechanism bugs become typed outcomes."""
        try:
            return self._step(op)
        except Exception as exc:     # a mechanism bug escaped its op:
            # surface it as a typed outcome the oracle can never
            # produce, so the diff (and the shrinker) still work.
            return ("crash", type(exc).__name__)

    def _step(self, op) -> tuple:
        if isinstance(op, RegisterOp):
            return self._do_register(op)
        if isinstance(op, GrantOp):
            return self._do_grant(op)
        if isinstance(op, RevokeOp):
            return self._do_revoke(op)
        if isinstance(op, KillOp):
            return self._do_kill(op)
        if isinstance(op, PreemptOp):
            self.kernel.preempt(self.core)
            return ("ok",)
        if isinstance(op, CallOp):
            return self._do_call(op)
        if isinstance(op, SubmitOp):
            rec = self.services.get(op.name)
            future = self._enqueue(rec, op) if rec is not None else None
            self.pending.append((rec, op, future))
            return ("queued",)
        if isinstance(op, WaitOp):
            outcomes = self._complete_pending()
            self.pending = []
            return ("batch", tuple(outcomes))
        raise TypeError(f"unknown op {op!r}")

    # -- control plane --------------------------------------------------
    def _do_register(self, op: RegisterOp) -> tuple:
        process = self.kernel.create_process(f"{op.name}.{op.kind}")
        thread = self.kernel.create_thread(process)
        rec = _GenRec(op.name, op.kind, process, thread)
        self._bind_service(rec)
        self.services[op.name] = rec
        self.all_recs.append(rec)
        self._wire_chains(rec)
        return ("ok",)

    def _do_grant(self, op: GrantOp) -> tuple:
        rec = self.services.get(op.name)
        if rec is None:
            return ("error", "no-service")
        rec.granted = True
        self._apply_grant(rec, True)
        return ("ok",)

    def _do_revoke(self, op: RevokeOp) -> tuple:
        rec = self.services.get(op.name)
        if rec is None:
            return ("error", "no-service")
        rec.granted = False
        self._apply_grant(rec, False)
        return ("ok",)

    def _do_kill(self, op: KillOp) -> tuple:
        rec = self.services.get(op.name)
        if rec is None:
            return ("error", "no-service")
        if rec.alive:
            self.kernel.kill_process(rec.process, lazy=op.lazy,
                                     core=self.core)
            rec.alive = False
        return ("ok",)

    # -- sync calls ------------------------------------------------------
    def _do_call(self, op: CallOp) -> tuple:
        rec = self.services.get(op.name)
        if rec is None:
            return ("error", "no-service")
        if not self.mechanism_enforces:
            denied = self._policy_check(rec)
            if denied is not None:
                return denied
        try:
            meta, data = self._sync_call(rec, op.meta, op.payload,
                                         op.reply_capacity)
        except Exception as exc:     # typed divergence, never a crash
            return ("error", classify_exception(exc))
        return ("ok", meta, data)

    def _policy_check(self, rec: _GenRec) -> Optional[tuple]:
        """Baseline-library policy: what XPC hardware checks for free."""
        if not rec.granted:
            return ("error", "denied")
        if not rec.alive:
            return ("error", "peer-died")
        if rec.kind == "thief":
            # A baseline server that scribbles on the shared buffer
            # protocol is torn down by the kernel; callers see a death.
            return ("error", "peer-died")
        return None

    # -- the service handlers -------------------------------------------
    def _make_handler(self, rec: _GenRec) -> Callable:
        return _ServiceHandler(self, rec)

    def _chain_hop(self, meta: tuple, payload) -> tuple:
        """One onward hop (§4.4): fold the inner outcome into the reply."""
        _fwd, target_name, handover, inner_meta = meta
        rec = self.services.get(target_name)
        if rec is None:
            return ("via-err", "no-service"), None
        if not self.mechanism_enforces:
            if not rec.alive:
                return ("via-err", "peer-died"), None
            if rec.kind == "thief":
                return ("via-err", "peer-died"), None
        data = payload.read()
        try:
            if handover and isinstance(payload, RelayPayload):
                # Slide the live window down the chain: re-mask, no copy.
                inner_reply, inner_bytes = self._inner_call(
                    rec, inner_meta, b"", len(data),
                    payload.window_slice(0, len(data)))
            else:
                inner_reply, inner_bytes = self._inner_call(
                    rec, inner_meta, data, max(len(data), 512), None)
        except Exception as exc:
            return ("via-err", classify_exception(exc)), None
        return ("via",) + inner_reply, inner_bytes

    def _thief_action(self, rec: _GenRec, meta: tuple) -> tuple:
        raise RuntimeError("baseline thieves never execute")

    # -- hooks the concrete executors fill in ---------------------------
    def _bind_service(self, rec: _GenRec) -> None:
        raise NotImplementedError

    def _wire_chains(self, rec: _GenRec) -> None:
        """Cross-grant so chain servers can call every known service."""

    def _apply_grant(self, rec: _GenRec, granted: bool) -> None:
        """Propagate a grant/revocation into the mechanism (XPC only)."""

    def _sync_call(self, rec, meta, payload, reply_capacity):
        raise NotImplementedError

    def _inner_call(self, rec, meta, payload, reply_capacity,
                    window_slice):
        raise NotImplementedError

    def _enqueue(self, rec: _GenRec, op: SubmitOp):
        return None

    def _complete_pending(self) -> List[tuple]:
        raise NotImplementedError

    def _ipc_total(self) -> int:
        return 0


class SyncExecutor(_ExecutorBase):
    """Synchronous transport executor: one spec from the Table 7 world.

    Async ops run through a *second* transport instance on a dedicated
    client thread whose capabilities are never revoked — the sync
    analogue of the batcher's ring client — at the wait, in submission
    order (batching defers execution; it does not reorder it).
    """

    comparable = True

    def __init__(self, name: str, kernel_cls, transport_cls,
                 transport_kwargs=None, is_xpc: bool = False,
                 cores: int = 2) -> None:
        super().__init__(name)
        self.is_xpc = is_xpc
        self.mechanism_enforces = is_xpc
        self.machine = Machine(cores=cores, mem_bytes=MEM_BYTES)
        self.kernel = kernel_cls(self.machine)
        self.core = self.machine.core0
        kwargs = dict(transport_kwargs or {})
        client = self.kernel.create_process("fuzz-client")
        self.client_thread = self.kernel.create_thread(client)
        self.kernel.run_thread(self.core, self.client_thread)
        self.transport = transport_cls(self.kernel, self.core,
                                       self.client_thread, **kwargs)
        async_proc = self.kernel.create_process("fuzz-async")
        self.async_thread = self.kernel.create_thread(async_proc)
        self.kernel.run_thread(self.core, self.async_thread)
        self.transport_async = transport_cls(self.kernel, self.core,
                                             self.async_thread, **kwargs)
        self.kernel.run_thread(self.core, self.client_thread)

    # -- wiring ---------------------------------------------------------
    def _bind_service(self, rec: _GenRec) -> None:
        handler = self._make_handler(rec)
        label = f"{rec.name}.g{self._gen_seq}"
        self._gen_seq += 1
        rec.main_sid = self.transport.register(
            label, handler, rec.process, rec.thread)
        rec.async_sid = self.transport_async.register(
            f"{label}.async", handler, rec.process, rec.thread)
        if self.is_xpc:
            # Registration auto-grants the registering client; the
            # oracle's world starts ungranted until an explicit grant.
            self.transport.revoke_from_thread(rec.main_sid,
                                              self.client_thread)
        self.kernel.run_thread(self.core, self.client_thread)

    def _wire_chains(self, rec: _GenRec) -> None:
        # Every chain generation *ever* registered can call onward —
        # pending submits bound to a superseded chain generation still
        # complete at the wait and must reach then-current targets.
        if not self.is_xpc:
            return          # baseline nested calls reuse the client cap
        for other in self.all_recs:
            if other.kind == "chain" and other is not rec:
                self.transport.grant_to_thread(rec.main_sid, other.thread)
        if rec.kind == "chain":
            for other in self.all_recs:
                self.transport.grant_to_thread(other.main_sid, rec.thread)

    def _apply_grant(self, rec: _GenRec, granted: bool) -> None:
        if not self.is_xpc:
            return
        if granted:
            self.transport.grant_to_thread(rec.main_sid,
                                           self.client_thread)
        else:
            self.transport.revoke_from_thread(rec.main_sid,
                                              self.client_thread)

    # -- calls -----------------------------------------------------------
    def _sync_call(self, rec, meta, payload, reply_capacity):
        return self.transport.call(rec.main_sid, meta, payload,
                                   reply_capacity=reply_capacity)

    def _inner_call(self, rec, meta, payload, reply_capacity,
                    window_slice):
        return self.transport.call(rec.main_sid, meta, payload,
                                   reply_capacity=reply_capacity,
                                   window_slice=window_slice)

    def _thief_action(self, rec: _GenRec, meta: tuple) -> tuple:
        # A real theft: park the handed-over window in our seg-list and
        # leave a fresh scratch window in seg-reg.  §3.3's return-time
        # check must catch the mismatch at xret.
        core = self.transport.current_core
        _seg, slot = self.kernel.create_relay_seg(core, rec.process, 4096)
        core.xpc_engine.swapseg(slot)
        return ("stolen",) + meta[1:], None

    # -- async ops -------------------------------------------------------
    def _complete_pending(self) -> List[tuple]:
        outcomes = []
        for rec, op, _future in self.pending:
            if rec is None:
                outcomes.append(("error", "no-service"))
                continue
            if not self.is_xpc and not rec.alive:
                outcomes.append(("error", "peer-died"))
                continue
            transport = self.transport_async if self.is_xpc \
                else self.transport
            sid = rec.async_sid if self.is_xpc else rec.main_sid
            try:
                meta, data = transport.call(
                    sid, op.meta, op.payload,
                    reply_capacity=op.reply_capacity)
            except Exception as exc:
                outcomes.append(("error", classify_exception(exc)))
                continue
            outcomes.append(("ok", meta, data))
        return outcomes

    def _ipc_total(self) -> int:
        return self.transport.ipc_cycles + self.transport_async.ipc_cycles


class BatchedExecutor(_ExecutorBase):
    """The aio path: submits go through a per-generation ring.

    Sync ops use a plain :class:`XPCTransport`; each registration also
    stands up a :class:`RingService` drain entry on the server thread
    and a :class:`Batcher` on its own ring-client thread.  A wait
    flushes every involved batcher — one ``xcall`` per ring — and reads
    the futures in submission order.
    """

    mechanism_enforces = True

    def __init__(self, name: str = "XPC-batched") -> None:
        super().__init__(name)
        self.machine = Machine(cores=2, mem_bytes=MEM_BYTES)
        self.kernel = BaseKernel(self.machine)
        self.core = self.machine.core0
        client = self.kernel.create_process("fuzz-client")
        self.client_thread = self.kernel.create_thread(client)
        self.kernel.run_thread(self.core, self.client_thread)
        self.transport = XPCTransport(self.kernel, self.core,
                                      self.client_thread)
        self.ring_client_proc = self.kernel.create_process("fuzz-rings")

    def _bind_service(self, rec: _GenRec) -> None:
        handler = self._make_handler(rec)
        label = f"{rec.name}.g{self._gen_seq}"
        self._gen_seq += 1
        rec.main_sid = self.transport.register(
            label, handler, rec.process, rec.thread)
        self.transport.revoke_from_thread(rec.main_sid, self.client_thread)
        # The batched front door: drain entry on the same server thread,
        # ring on a dedicated client thread (one seg-reg per ring).
        self.kernel.run_thread(self.core, rec.thread)
        rec.ring = RingService(self.kernel, self.core, rec.thread,
                               handler, name=label)
        ring_client = self.kernel.create_thread(self.ring_client_proc)
        self.kernel.grant_xcall_cap(self.core, rec.process, ring_client,
                                    rec.ring.entry_id)
        rec.batcher = Batcher(self.kernel, self.core, ring_client,
                              rec.ring.entry_id, seg_bytes=16 * 1024,
                              entries=32, max_batch=64, name=label)
        self.kernel.run_thread(self.core, self.client_thread)

    def _wire_chains(self, rec: _GenRec) -> None:
        for other in self.all_recs:
            if other.kind == "chain" and other is not rec:
                self.transport.grant_to_thread(rec.main_sid, other.thread)
        if rec.kind == "chain":
            for other in self.all_recs:
                self.transport.grant_to_thread(other.main_sid, rec.thread)

    def _apply_grant(self, rec: _GenRec, granted: bool) -> None:
        if granted:
            self.transport.grant_to_thread(rec.main_sid,
                                           self.client_thread)
        else:
            self.transport.revoke_from_thread(rec.main_sid,
                                              self.client_thread)

    def _sync_call(self, rec, meta, payload, reply_capacity):
        return self.transport.call(rec.main_sid, meta, payload,
                                   reply_capacity=reply_capacity)

    def _inner_call(self, rec, meta, payload, reply_capacity,
                    window_slice):
        return self.transport.call(rec.main_sid, meta, payload,
                                   reply_capacity=reply_capacity,
                                   window_slice=window_slice)

    def _thief_action(self, rec: _GenRec, meta: tuple) -> tuple:
        core = self.transport.current_core
        _seg, slot = self.kernel.create_relay_seg(core, rec.process, 4096)
        core.xpc_engine.swapseg(slot)
        return ("stolen",) + meta[1:], None

    def _enqueue(self, rec: _GenRec, op: SubmitOp):
        return rec.batcher.submit(op.meta, op.payload, op.reply_capacity)

    def _complete_pending(self) -> List[tuple]:
        flushed = []
        for rec, _op, _future in self.pending:
            if rec is not None and rec.batcher not in flushed:
                flushed.append(rec.batcher)
        for batcher in flushed:
            batcher.flush()
        outcomes = []
        for rec, _op, future in self.pending:
            if rec is None:
                outcomes.append(("error", "no-service"))
                continue
            try:
                meta, data = future.result()
            except Exception as exc:
                outcomes.append(("error", classify_exception(exc)))
                continue
            outcomes.append(("ok", meta, data))
        return outcomes

    def _ipc_total(self) -> int:
        return self.transport.ipc_cycles


class FaultingExecutor:
    """Run an inner executor with recovery-transparent faults armed.

    Every armed point is *recovery-transparent*: TLB staleness, engine
    cache staleness, link-stack overflow spills, timer preemptions, and
    stale ring-head re-reads cost cycles but change no observable
    outcome — so the oracle's expectations still hold verbatim (the SFP
    argument: call-flow integrity must survive injected faults).
    """

    TRANSPARENT_POINTS = (
        ("hw.tlb.stale_entry", 0.05),
        ("xpc.engine_cache.stale_entry", 0.05),
        ("xpc.linkstack.overflow", 0.02),
        ("kernel.preempt", 0.02),
        ("aio.stale_head", 0.05),
    )

    def __init__(self, inner, fault_seed: int = 0) -> None:
        self.inner = inner
        self.name = f"{inner.name}+faults"
        self.plan = FaultPlan(fault_seed)
        for point, probability in self.TRANSPARENT_POINTS:
            self.plan.arm(point, probability=probability, times=None)

    @property
    def machine(self):
        return self.inner.machine

    @property
    def kernel(self):
        return self.inner.kernel

    @property
    def core(self):
        return self.inner.core

    @property
    def comparable(self):
        return False        # fault overhead skews mechanism cycles

    def _ipc_total(self) -> int:
        return self.inner._ipc_total()

    def step(self, op) -> tuple:
        """One op with the plan armed.  Nothing fires between ops (the
        fire sites all sit inside op machinery), so per-op arming is
        trace-identical to arming around the whole run — and it lets a
        snapshot restored at an op boundary resume mid-plan."""
        with faults.active(self.plan):
            return self.inner.step(op)

    def run(self, program: Program) -> ExecutionReport:
        report = _run_steps(self, program)
        report.fault_trace = [ev.as_dict() for ev in self.plan.trace]
        return report


class SanExecutor:
    """Run an inner executor with XPCSan armed.

    XPCSan is a pure observer (cycle-neutral, like obs), so outcomes and
    cycle counts match the unwrapped executor exactly; what it *adds* is
    the per-core access log over relay-seg ownership, ring indices, and
    link-stack entries.  Any conflicting unsynchronized access lands in
    ``report.san_issues``, which the harness treats as an invariant
    failure — the runtime analogue of the §3.3 single-owner proof.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.name = f"{inner.name}+xpcsan"
        #: One session for the executor's whole life (executors are
        #: single-use), owned here so snapshots capture its log.
        self.session = san.SanSession()

    @property
    def machine(self):
        return self.inner.machine

    @property
    def kernel(self):
        return self.inner.kernel

    @property
    def core(self):
        return self.inner.core

    @property
    def comparable(self):
        # Cycle-identical to the inner executor, but keep it out of the
        # cross-mechanism ordering set like the other wrappers.
        return False

    def _ipc_total(self) -> int:
        return self.inner._ipc_total()

    def step(self, op) -> tuple:
        with san.active(self.session):
            return self.inner.step(op)

    def run(self, program: Program) -> ExecutionReport:
        report = _run_steps(self, program)
        report.san_issues = [issue.describe()
                             for issue in self.session.issues]
        return report


# ---------------------------------------------------------------------------
# The executor roster
# ---------------------------------------------------------------------------

def default_executor_factories():
    """name → zero-arg factory, one per mechanism under differential
    test.  Fresh machines every call: programs never share state."""
    # Deferred import: fastexec reuses this module's program loop.
    from repro.proptest.fastexec import FastCoreExecutor
    return [
        ("seL4-twocopy", lambda: SyncExecutor(
            "seL4-twocopy", Sel4Kernel, Sel4Transport, {"copies": 2})),
        ("seL4-onecopy", lambda: SyncExecutor(
            "seL4-onecopy", Sel4Kernel, Sel4Transport, {"copies": 1})),
        ("Zircon", lambda: SyncExecutor(
            "Zircon", ZirconKernel, ZirconTransport)),
        ("seL4-XPC", lambda: SyncExecutor(
            "seL4-XPC", Sel4Kernel, Sel4XPCTransport, is_xpc=True)),
        ("Zircon-XPC", lambda: SyncExecutor(
            "Zircon-XPC", ZirconKernel, ZirconXPCTransport, is_xpc=True)),
        ("XPC-batched", lambda: BatchedExecutor()),
        ("seL4-XPC+faults", lambda: FaultingExecutor(SyncExecutor(
            "seL4-XPC", Sel4Kernel, Sel4XPCTransport, is_xpc=True),
            fault_seed=17)),
        ("XPC-batched+faults", lambda: FaultingExecutor(
            BatchedExecutor(), fault_seed=23)),
        ("seL4-XPC+xpcsan", lambda: SanExecutor(SyncExecutor(
            "seL4-XPC", Sel4Kernel, Sel4XPCTransport, is_xpc=True))),
        # The table-driven fast core (repro.fastcore): held to identical
        # outcomes AND identical per-op cycles vs the seL4-XPC reference
        # by the harness's equivalence gate.
        ("fastcore", lambda: FastCoreExecutor()),
    ]
