"""The oracle: a pure reference model of XPC-visible semantics.

No cycles, no segments, no kernels — just the ownership, capability and
message rules the paper's protocol promises (§3–§4), small enough to
audit by eye.  Every executor must produce exactly these observable
outcomes; anything else is a divergence worth a counterexample.

The model the paper implies, op by op:

* **register** starts a new *generation* of a name.  The previous
  generation stays alive (its x-entries are not torn down) but new
  traffic binds to the new one.
* **grant / revoke** toggle the *client's* sync-call capability — the
  engine's xcall-cap test (§3.2).  The async ring entry belongs to the
  ring's own client thread, so revocation never touches submits.
* **kill** invalidates the current generation's x-entries (§4.2):
  later calls — and pending submits bound to it — surface peer-death.
* A **sync call** is checked in the engine's order: unknown name →
  ``no-service``; capability cleared → ``denied`` (the cap test fires
  before the x-entry load); generation dead → ``peer-died``; then the
  handler runs.  A handler exception is a typed ``handler-error``; a
  thief (a callee that swapsegs the handed-over window away) trips the
  §3.3 return-time integrity check and surfaces as ``peer-died``.
* **submit** binds a request to the target's current generation and
  parks it; **wait** completes all pending requests in submission
  order, each evaluated against the world *at the wait* (batching
  defers execution, it does not snapshot state).
* **chain** services call onward (§4.4): the inner outcome is folded
  into the reply — ``("via",) + inner_meta`` on success,
  ``("via-err", kind)`` on an inner error — so one outer outcome
  captures the whole hop.
"""

from __future__ import annotations

from typing import List, Optional

from repro.proptest.grammar import (
    CallOp, GrantOp, KillOp, PreemptOp, Program, RegisterOp, RevokeOp,
    SubmitOp, WaitOp, counter_bytes, xform_bytes,
)

OK = ("ok",)


class _Gen:
    """One generation of one service name."""

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.alive = True
        self.granted = False
        self.counter = 0
        self.kv = {}


class Oracle:
    """Interpret a program; :meth:`expected` returns all outcomes."""

    def __init__(self) -> None:
        self.services = {}                     # name -> current _Gen
        self.pending: List[tuple] = []         # (gen|None, meta, payload)

    # -- public -------------------------------------------------------
    def expected(self, program: Program) -> List[tuple]:
        return [self.step(op) for op in program.ops]

    def step(self, op) -> tuple:
        if isinstance(op, RegisterOp):
            self.services[op.name] = _Gen(op.name, op.kind)
            return OK
        if isinstance(op, GrantOp):
            gen = self.services.get(op.name)
            if gen is None:
                return ("error", "no-service")
            gen.granted = True
            return OK
        if isinstance(op, RevokeOp):
            gen = self.services.get(op.name)
            if gen is None:
                return ("error", "no-service")
            gen.granted = False
            return OK
        if isinstance(op, KillOp):
            gen = self.services.get(op.name)
            if gen is None:
                return ("error", "no-service")
            gen.alive = False
            return OK
        if isinstance(op, PreemptOp):
            return OK
        if isinstance(op, CallOp):
            return self._sync_call(op.name, op.meta, op.payload)
        if isinstance(op, SubmitOp):
            self.pending.append((self.services.get(op.name), op.meta,
                                 op.payload))
            return ("queued",)
        if isinstance(op, WaitOp):
            outcomes = tuple(self._async_call(gen, meta, payload)
                             for gen, meta, payload in self.pending)
            self.pending = []
            return ("batch", outcomes)
        raise TypeError(f"unknown op {op!r}")

    # -- call semantics ------------------------------------------------
    def _sync_call(self, name: str, meta: tuple,
                   payload: bytes) -> tuple:
        gen = self.services.get(name)
        if gen is None:
            return ("error", "no-service")
        if not gen.granted:
            return ("error", "denied")
        if not gen.alive:
            return ("error", "peer-died")
        return self._dispatch(gen, meta, payload)

    def _async_call(self, gen: Optional[_Gen], meta: tuple,
                    payload: bytes) -> tuple:
        if gen is None:
            return ("error", "no-service")
        if not gen.alive:
            return ("error", "peer-died")
        return self._dispatch(gen, meta, payload)

    def _dispatch(self, gen: _Gen, meta: tuple, payload: bytes) -> tuple:
        if gen.kind == "thief":
            # §3.3: seg-reg no longer matches the linkage record at
            # xret; the trap is repaired into a peer death (§4.2).
            return ("error", "peer-died")
        if gen.kind == "echo":
            return ("ok", ("echo",) + meta[1:], payload)
        if gen.kind == "xform":
            return ("ok", ("xf",) + meta[1:], xform_bytes(payload))
        if gen.kind == "counter":
            gen.counter += meta[1]
            return ("ok", ("cnt", gen.counter), counter_bytes(gen.counter))
        if gen.kind == "kv":
            verb, key = meta[0], meta[1]
            if verb == "put":
                gen.kv[key] = payload
                return ("ok", ("put", key, len(payload)), b"")
            value = gen.kv.get(key)
            if value is None:
                return ("error", "handler-error")
            return ("ok", ("get", key, len(value)), value)
        if gen.kind == "chain":
            return self._chain(meta, payload)
        raise ValueError(f"unknown kind {gen.kind!r}")

    def _chain(self, meta: tuple, payload: bytes) -> tuple:
        _fwd, target_name, _handover, inner_meta = meta
        target = self.services.get(target_name)
        if target is None:
            return ("ok", ("via-err", "no-service"), b"")
        if not target.alive:
            return ("ok", ("via-err", "peer-died"), b"")
        inner = self._dispatch(target, inner_meta, payload)
        if inner[0] == "error":
            return ("ok", ("via-err", inner[1]), b"")
        _ok, inner_reply_meta, inner_bytes = inner
        return ("ok", ("via",) + inner_reply_meta, inner_bytes)
