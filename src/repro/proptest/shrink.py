"""Deterministic shrinking and replayable failure artifacts.

When a program diverges, ddmin (Zeller's delta debugging) plus a greedy
single-op sweep reduce it to a locally-minimal program that still
diverges.  The grammar is closed under op removal (unknown names become
typed ``no-service`` outcomes, grants and kills are idempotent), so
every candidate the shrinker tries is a valid program — no repair step,
no generated garbage.

The result is saved as a JSON artifact under ``proptest-failures/``
that replays exactly: the program, the expected and observed outcomes,
and the executors that disagreed.  Artifact names are derived from the
program's content hash — deterministic across machines and reruns.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, List, Optional

from repro.proptest.grammar import (Program, SCHEMA, outcome_from_jsonable,
                                    outcome_to_jsonable)
from repro.proptest.harness import DiffResult, run_differential

#: Default artifact directory (git-ignored; CI uploads it on failure).
ARTIFACT_DIR = "proptest-failures"


def make_predicate(factories: Optional[list] = None,
                   executors: Optional[List[str]] = None
                   ) -> Callable[[Program], bool]:
    """True iff the program still diverges (cached by op sequence).

    *executors* restricts the check to the mechanisms that failed the
    original run — sound (a minimized program that reproduces on one
    executor is a counterexample) and much faster than re-running the
    full roster per ddmin probe.
    """
    cache = {}

    def diverges(program: Program) -> bool:
        key = program.ops
        if key in cache:
            return cache[key]
        result = run_differential(program, factories=_filtered(
            factories, executors))
        verdict = bool(result.divergences)
        cache[key] = verdict
        return verdict

    return diverges


def _filtered(factories, executors):
    if factories is None and executors is None:
        return None
    from repro.proptest.executors import default_executor_factories
    pool = factories if factories is not None \
        else default_executor_factories()
    if executors is None:
        return pool
    picked = [(name, f) for name, f in pool if name in executors]
    return picked or pool


def shrink(program: Program,
           predicate: Callable[[Program], bool]) -> Program:
    """Minimize *program* while *predicate* stays true."""
    if not predicate(program):
        return program
    program = _ddmin(program, predicate)
    return _greedy(program, predicate)


def _ddmin(program: Program, predicate) -> Program:
    granularity = 2
    while len(program) >= 2:
        chunk = max(1, (len(program) + granularity - 1) // granularity)
        reduced = False
        for start in range(0, len(program), chunk):
            candidate = program.without(
                range(start, min(start + chunk, len(program))))
            if len(candidate) and predicate(candidate):
                program = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(program):
                break
            granularity = min(granularity * 2, len(program))
    return program


def _greedy(program: Program, predicate) -> Program:
    changed = True
    while changed and len(program) > 1:
        changed = False
        for i in range(len(program)):
            candidate = program.without([i])
            if predicate(candidate):
                program = candidate
                changed = True
                break
    return program


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

def artifact_name(program: Program) -> str:
    digest = hashlib.sha256(
        program.to_json().encode("utf-8")).hexdigest()[:12]
    return f"counterexample-{digest}-{len(program)}ops.json"


def save_artifact(program: Program, result: DiffResult,
                  out_dir: str = ARTIFACT_DIR) -> str:
    """Write a replayable counterexample; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "schema": SCHEMA,
        "program": program.to_dict(),
        "expected": [outcome_to_jsonable(o) for o in result.expected],
        "divergences": [
            {"executor": d.executor, "op_index": d.op_index,
             "expected": outcome_to_jsonable(d.expected),
             "actual": outcome_to_jsonable(d.actual)}
            for d in result.divergences
        ],
        "invariant_failures": list(result.invariant_failures),
        "fault_traces": {
            r.executor: r.fault_trace for r in result.reports
            if r.fault_trace
        },
    }
    path = os.path.join(out_dir, artifact_name(program))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> Program:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown artifact schema {payload.get('schema')!r}")
    return Program.from_dict(payload["program"])


def load_artifact_expectations(path: str) -> List[tuple]:
    """The outcomes the oracle expected when the artifact was written."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    return [outcome_from_jsonable(o) for o in payload.get("expected", [])]


def minimize_failure(program: Program, result: DiffResult,
                     factories: Optional[list] = None) -> Program:
    """Shrink against exactly the executors that originally failed."""
    failing = sorted({d.executor for d in result.divergences})
    predicate = make_predicate(factories, failing or None)
    return shrink(program, predicate)
