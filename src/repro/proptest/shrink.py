"""Deterministic shrinking and replayable failure artifacts.

When a program diverges, ddmin (Zeller's delta debugging) plus a greedy
single-op sweep reduce it to a locally-minimal program that still
diverges.  The grammar is closed under op removal (unknown names become
typed ``no-service`` outcomes, grants and kills are idempotent), so
every candidate the shrinker tries is a valid program — no repair step,
no generated garbage.

The result is saved as a JSON artifact under ``proptest-failures/``
that replays exactly: the program, the expected and observed outcomes,
and the executors that disagreed.  Artifact names are derived from the
program's content hash — deterministic across machines and reruns.

Shrinking is snapshot-accelerated by default: every ddmin/greedy probe
shares a prefix with some already-executed candidate, so instead of
replaying each candidate from op 0 the predicate restores the longest
cached :mod:`repro.snap` checkpoint and runs only the suffix.  The
verdicts are identical to the replay-from-scratch predicate (the
deterministic-resume contract CI enforces); only the work changes —
``tests/snap`` asserts a ≥3× reduction in executed ops on the
checked-in §3.3 counterexample.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, List, Optional

from repro.proptest.grammar import (Program, SCHEMA, outcome_from_jsonable,
                                    outcome_to_jsonable)
from repro.proptest.harness import (DiffResult, expected_outcomes,
                                    run_differential)

#: Default artifact directory (git-ignored; CI uploads it on failure).
ARTIFACT_DIR = "proptest-failures"


def make_predicate(factories: Optional[list] = None,
                   executors: Optional[List[str]] = None
                   ) -> Callable[[Program], bool]:
    """True iff the program still diverges (cached by op sequence).

    *executors* restricts the check to the mechanisms that failed the
    original run — sound (a minimized program that reproduces on one
    executor is a counterexample) and much faster than re-running the
    full roster per ddmin probe.
    """
    cache = {}
    pool = _filtered(factories, executors)

    def diverges(program: Program) -> bool:
        key = program.ops
        if key in cache:
            return cache[key]
        result = run_differential(program, factories=pool)
        diverges.probes += 1
        diverges.ops_executed += len(program.ops) * len(result.reports)
        verdict = bool(result.divergences)
        cache[key] = verdict
        return verdict

    diverges.probes = 0
    diverges.ops_executed = 0
    return diverges


def make_snapshot_predicate(factories: Optional[list] = None,
                            executors: Optional[List[str]] = None,
                            max_cached: int = 128
                            ) -> Callable[[Program], bool]:
    """Divergence predicate with snapshot-resumed probes.

    Verdicts match :func:`make_predicate` exactly (outcome-vs-oracle
    divergence on the same executor pool); the difference is cost:

    * each probe restores the longest cached checkpoint matching the
      candidate's prefix and runs only the suffix — sound because
      resume is byte-identical to straight-line execution, including
      mid-plan fault state (the checkpoint's op sequence *is* the
      candidate's prefix, so nothing downstream can tell);
    * each probe stops at the first divergent outcome — the oracle is
      sequential, so ``expected[i]`` depends only on ``ops[:i+1]`` and
      the verdict ("*some* op diverges") never needs the tail.

    The index of the divergence that decided the last ``True`` verdict
    is published as ``predicate.last_divergence``; since outcomes
    depend only on preceding ops, truncating a diverging program right
    after that index always preserves divergence —
    :func:`minimize_failure` uses it to drop the tail in one step
    before ddmin starts.
    """
    from repro.snap import capture, restore  # verify-ok: layering
    from repro.snap.world import ExecutorWorld  # verify-ok: layering

    pool = _filtered(factories, executors)
    if pool is None:
        from repro.proptest.executors import default_executor_factories
        pool = default_executor_factories()
    verdicts = {}
    #: ops-prefix tuple -> {executor name: Snapshot at that boundary};
    #: insertion order doubles as FIFO eviction order.
    checkpoints = {}

    def _evict() -> None:
        while len(checkpoints) > max_cached:
            del checkpoints[next(iter(checkpoints))]

    def _probe_one(name: str, factory, ops: tuple,
                   expected: List[tuple]) -> Optional[int]:
        """Index of the first divergent op on this executor, or None."""
        prefix = ops
        while prefix and not (prefix in checkpoints
                              and name in checkpoints[prefix]):
            prefix = prefix[:-1]
        if prefix:
            world = restore(checkpoints[prefix][name])
        else:
            world = ExecutorWorld(factory())
        # The cached prefix was healthy when captured (a probe stops
        # stepping at its first divergence and never checkpoints past
        # it), so only the freshly-run suffix needs comparing.
        for i in range(len(prefix), len(ops)):
            got = world.step(ops[i])
            diverges.ops_executed += 1
            if got != expected[i]:
                return i
            per_exec = checkpoints.setdefault(ops[:i + 1], {})
            if name not in per_exec:
                per_exec[name] = capture(world, op_index=i + 1)
        _evict()
        return None

    def diverges(program: Program) -> bool:
        key = program.ops
        if key in verdicts:
            return verdicts[key]
        diverges.probes += 1
        expected = expected_outcomes(program)
        verdict = False
        for name, factory in pool:
            where = _probe_one(name, factory, key, expected)
            if where is not None:
                verdict = True
                diverges.last_divergence = where
                break
        verdicts[key] = verdict
        return verdict

    diverges.probes = 0
    diverges.ops_executed = 0
    diverges.last_divergence = None
    return diverges


def _filtered(factories, executors):
    if factories is None and executors is None:
        return None
    from repro.proptest.executors import default_executor_factories
    pool = factories if factories is not None \
        else default_executor_factories()
    if executors is None:
        return pool
    picked = [(name, f) for name, f in pool if name in executors]
    return picked or pool


def shrink(program: Program,
           predicate: Callable[[Program], bool]) -> Program:
    """Minimize *program* while *predicate* stays true."""
    if not predicate(program):
        return program
    program = _ddmin(program, predicate)
    return _greedy(program, predicate)


def _ddmin(program: Program, predicate) -> Program:
    granularity = 2
    while len(program) >= 2:
        chunk = max(1, (len(program) + granularity - 1) // granularity)
        reduced = False
        for start in range(0, len(program), chunk):
            candidate = program.without(
                range(start, min(start + chunk, len(program))))
            if len(candidate) and predicate(candidate):
                program = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(program):
                break
            granularity = min(granularity * 2, len(program))
    return program


def _greedy(program: Program, predicate) -> Program:
    changed = True
    while changed and len(program) > 1:
        changed = False
        for i in range(len(program)):
            candidate = program.without([i])
            if predicate(candidate):
                program = candidate
                changed = True
                break
    return program


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

def artifact_name(program: Program) -> str:
    digest = hashlib.sha256(
        program.to_json().encode("utf-8")).hexdigest()[:12]
    return f"counterexample-{digest}-{len(program)}ops.json"


def save_artifact(program: Program, result: DiffResult,
                  out_dir: str = ARTIFACT_DIR) -> str:
    """Write a replayable counterexample; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "schema": SCHEMA,
        "program": program.to_dict(),
        "expected": [outcome_to_jsonable(o) for o in result.expected],
        "divergences": [
            {"executor": d.executor, "op_index": d.op_index,
             "expected": outcome_to_jsonable(d.expected),
             "actual": outcome_to_jsonable(d.actual)}
            for d in result.divergences
        ],
        "invariant_failures": list(result.invariant_failures),
        "fault_traces": {
            r.executor: r.fault_trace for r in result.reports
            if r.fault_trace
        },
    }
    path = os.path.join(out_dir, artifact_name(program))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> Program:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown artifact schema {payload.get('schema')!r}")
    return Program.from_dict(payload["program"])


def load_artifact_expectations(path: str) -> List[tuple]:
    """The outcomes the oracle expected when the artifact was written."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    return [outcome_from_jsonable(o) for o in payload.get("expected", [])]


def minimize_failure(program: Program, result: DiffResult,
                     factories: Optional[list] = None,
                     use_snapshots: bool = True) -> Program:
    """Shrink against exactly the executors that originally failed."""
    failing = sorted({d.executor for d in result.divergences})
    if any(d.expected and d.expected[0] == "cycles"
           for d in result.divergences):
        # A fast-core cycle divergence is only visible to the full
        # differential predicate (the snapshot predicate compares
        # outcomes against the oracle, never cycles), and only when
        # *both* halves of the equivalence pair are in the probe pool.
        from repro.proptest.harness import EQUIVALENCE_PAIR
        pool_names = sorted(set(failing) | set(EQUIVALENCE_PAIR))
        return shrink(program, make_predicate(factories, pool_names))
    if not use_snapshots:
        return shrink(program, make_predicate(factories, failing or None))
    predicate = make_snapshot_predicate(factories, failing or None)
    if predicate(program) and predicate.last_divergence is not None:
        # Outcomes depend only on preceding ops, so everything past the
        # first divergence is dead weight: truncate before ddmin.  The
        # truncated program provably still diverges (at its last op).
        program = Program(program.ops[:predicate.last_divergence + 1],
                          seed=program.seed)
    return shrink(program, predicate)
