"""The fuzzer's operation grammar: typed ops, programs, outcomes.

A *program* is a finite sequence of operations over a small vocabulary
of named services.  The grammar is deliberately closed under op
*removal*: any subsequence of a generated program is itself a valid
program (unknown names resolve to a typed ``no-service`` outcome, kills
and grants are idempotent), which is what lets the shrinker delete ops
freely without manufacturing undefined behaviour.

Observable outcomes form a tiny algebra shared by the oracle and every
executor:

* ``("ok", reply_meta, reply_bytes)`` — a completed request/response;
* ``("error", kind)`` with ``kind`` one of ``no-service`` / ``denied``
  / ``peer-died`` / ``handler-error``;
* ``("queued",)`` — a submit was accepted into the async window;
* ``("batch", (outcome, ...))`` — a wait op, carrying the submitted
  requests' outcomes in submission order;
* ``("ok",)`` — a control-plane op (register/grant/revoke/kill/preempt)
  that took effect.

Cycle counts are deliberately *not* part of an outcome — mechanisms
differ there by design; the harness checks only clock monotonicity and
the obs PMU phase identities.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Tuple

#: Service behaviours the generator can instantiate.
SERVICE_KINDS = ("echo", "xform", "counter", "kv", "chain", "thief")

#: Typed error kinds an op can surface.
ERROR_KINDS = ("no-service", "denied", "peer-died", "handler-error")

#: Artifact schema tag (bump on incompatible changes).
SCHEMA = "repro.proptest/1"


def xform_bytes(data: bytes) -> bytes:
    """The ``xform`` service's transform: xor-whiten, then reverse.

    Lives in the grammar (not the oracle) because it is part of the
    *specification* of the service vocabulary: the oracle predicts it
    and every executor's handler must implement exactly this.
    """
    return bytes(b ^ 0x5A for b in data)[::-1]


def counter_bytes(total: int) -> bytes:
    """The ``counter`` service's reply payload for a running total."""
    return total.to_bytes(8, "little")


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RegisterOp:
    """Create a fresh process+thread serving *name* with behaviour
    *kind*.  Re-registering a name starts a new *generation*; the old
    one stays alive (async submits bound to it still complete)."""
    name: str
    kind: str
    op = "register"


@dataclass(frozen=True)
class GrantOp:
    """Grant the client the right to sync-call *name*."""
    name: str
    op = "grant"


@dataclass(frozen=True)
class RevokeOp:
    """Revoke the client's sync-call right for *name*.  The async ring
    entry is a separate capability and is unaffected (by design: the
    batcher's drain entry belongs to the ring client thread)."""
    name: str
    op = "revoke"


@dataclass(frozen=True)
class KillOp:
    """Kill *name*'s current generation (§4.2 teardown); idempotent."""
    name: str
    lazy: bool = True
    op = "kill"


@dataclass(frozen=True)
class PreemptOp:
    """A timer preemption lands on the client core mid-program."""
    op = "preempt"


@dataclass(frozen=True)
class CallOp:
    """Synchronous request/response through the mechanism under test."""
    name: str
    meta: tuple
    payload: bytes = b""
    reply_capacity: int = 0
    op = "call"


@dataclass(frozen=True)
class SubmitOp:
    """Queue one async request to *name*; completes at the next wait.

    Submission *binds* the request to the target's current generation —
    a later re-register does not redirect it."""
    name: str
    meta: tuple
    payload: bytes = b""
    reply_capacity: int = 0
    op = "submit"


@dataclass(frozen=True)
class WaitOp:
    """Flush and complete every pending submit, in submission order."""
    op = "wait"


OP_TYPES = {cls.op: cls for cls in
            (RegisterOp, GrantOp, RevokeOp, KillOp, PreemptOp,
             CallOp, SubmitOp, WaitOp)}


@dataclass(frozen=True)
class Program:
    """An immutable op sequence plus the seed that produced it."""

    ops: Tuple = ()
    seed: int = 0

    def __len__(self) -> int:
        return len(self.ops)

    def without(self, indices) -> "Program":
        """A copy with the ops at *indices* removed (shrinker step)."""
        drop = set(indices)
        return Program(tuple(op for i, op in enumerate(self.ops)
                             if i not in drop), self.seed)

    # -- JSON round-trip ----------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "ops": [_op_to_dict(op) for op in self.ops]}

    @classmethod
    def from_dict(cls, data: dict) -> "Program":
        return cls(tuple(_op_from_dict(d) for d in data["ops"]),
                   data.get("seed", 0))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Program":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Op / meta / outcome (de)serialisation
# ---------------------------------------------------------------------------

def meta_to_jsonable(meta):
    """Tuples (possibly nested, possibly holding bytes) → JSON lists."""
    if isinstance(meta, tuple):
        return {"t": [meta_to_jsonable(m) for m in meta]}
    if isinstance(meta, bytes):
        return {"b": meta.hex()}
    return meta


def meta_from_jsonable(data):
    if isinstance(data, dict) and "t" in data:
        return tuple(meta_from_jsonable(m) for m in data["t"])
    if isinstance(data, dict) and "b" in data:
        return bytes.fromhex(data["b"])
    return data


def _op_to_dict(op) -> dict:
    out = {"op": op.op}
    for fname in getattr(op, "__dataclass_fields__", {}):
        value = getattr(op, fname)
        if isinstance(value, bytes):
            value = {"b": value.hex()}
        elif isinstance(value, tuple):
            value = meta_to_jsonable(value)
        out[fname] = value
    return out


def _op_from_dict(data: dict):
    cls = OP_TYPES[data["op"]]
    kwargs = {}
    for fname, fdef in cls.__dataclass_fields__.items():
        if fname not in data:
            continue
        value = data[fname]
        if isinstance(value, dict):
            value = meta_from_jsonable(value)
        if fdef.type in ("bytes",) and isinstance(value, str):
            value = bytes.fromhex(value)
        kwargs[fname] = value
    return cls(**kwargs)


def outcome_to_jsonable(outcome):
    """Outcomes nest tuples and bytes; reuse the meta encoding."""
    return meta_to_jsonable(outcome)


def outcome_from_jsonable(data):
    return meta_from_jsonable(data)


# ---------------------------------------------------------------------------
# Validity (the generator's invariants, re-checkable on any program)
# ---------------------------------------------------------------------------

#: Ceiling on simultaneously pending submits (well below every ring's
#: entry count, so an async window can never overflow a ring).
MAX_PENDING = 8

#: Ceiling on theft attempts (sync calls to a ``thief`` service,
#: including chain hops into one) per program: each theft parks one
#: stolen window in the thief's seg-list, and the seg-list is finite.
MAX_THEFTS = 4


def validate(program: Program) -> List[str]:
    """Structural invariants every generated program satisfies — and,
    because they are monotone under op removal, every shrunk program
    satisfies too.  Returns a list of human-readable violations."""
    problems = []
    pending = 0
    thefts = 0
    kinds = {}
    for i, op in enumerate(program.ops):
        if isinstance(op, RegisterOp):
            if op.kind not in SERVICE_KINDS:
                problems.append(f"op {i}: unknown service kind {op.kind!r}")
            kinds[op.name] = op.kind
        elif isinstance(op, SubmitOp):
            pending += 1
            if pending > MAX_PENDING:
                problems.append(f"op {i}: more than {MAX_PENDING} "
                                f"pending submits")
            if kinds.get(op.name) == "thief":
                problems.append(f"op {i}: submit to a thief service")
        elif isinstance(op, WaitOp):
            pending = 0
        elif isinstance(op, CallOp):
            target = op.meta[1] if (kinds.get(op.name) == "chain"
                                    and len(op.meta) > 1) else op.name
            if kinds.get(op.name) == "thief" or kinds.get(target) == "thief":
                thefts += 1
    if thefts > MAX_THEFTS:
        problems.append(f"{thefts} theft attempts (max {MAX_THEFTS})")
    return problems
