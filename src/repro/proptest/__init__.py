"""repro.proptest: property-based differential fuzzing of every IPC
mechanism against a shared oracle.

One seeded generator emits typed op programs over a small service
vocabulary; a pure reference model (the oracle) predicts every
observable outcome; executors replay the identical program through the
XPC transport, the trap-based baselines, and the aio batcher — plus
fault-injected variants — and the harness diffs them op by op.
Diverging programs shrink deterministically to replayable JSON
counterexamples.

Quickstart::

    python -m repro.proptest --seed 0 --programs 200
    python -m repro.proptest --replay proptest-failures/<artifact>.json
"""

from repro.proptest.executors import (BatchedExecutor, ExecutionReport,
                                      FaultingExecutor, SyncExecutor,
                                      classify_exception,
                                      default_executor_factories)
from repro.proptest.gen import generate
from repro.proptest.grammar import (CallOp, GrantOp, KillOp, PreemptOp,
                                    Program, RegisterOp, RevokeOp,
                                    SubmitOp, WaitOp, validate)
from repro.proptest.harness import (DiffResult, Divergence,
                                    expected_outcomes, run_differential)
from repro.proptest.oracle import Oracle
from repro.proptest.shrink import (load_artifact,
                                   load_artifact_expectations,
                                   make_predicate, minimize_failure,
                                   save_artifact, shrink)

__all__ = [
    "BatchedExecutor", "CallOp", "DiffResult", "Divergence",
    "ExecutionReport", "FaultingExecutor", "GrantOp", "KillOp", "Oracle",
    "PreemptOp", "Program", "RegisterOp", "RevokeOp", "SubmitOp",
    "SyncExecutor", "WaitOp", "classify_exception",
    "default_executor_factories", "expected_outcomes", "generate",
    "load_artifact", "load_artifact_expectations", "make_predicate",
    "minimize_failure",
    "run_differential", "save_artifact", "shrink", "validate",
]
