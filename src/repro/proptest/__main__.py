"""CLI driver: fuzz a seed range, or replay a saved counterexample.

Exit status: 0 — all programs agreed with the oracle; 1 — at least one
divergence (artifacts written under ``--out``); 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.proptest.gen import generate
from repro.proptest.grammar import validate
from repro.proptest.harness import run_differential
from repro.proptest.shrink import (ARTIFACT_DIR, load_artifact,
                                   minimize_failure, save_artifact)


def _fuzz(args) -> int:
    failures = 0
    spent = 0
    ran = 0
    for i in range(args.programs):
        seed = args.seed + i
        if args.cycle_budget is not None and spent >= args.cycle_budget:
            # Never truncate silently: say exactly how far we got.
            print(f"cycle budget {args.cycle_budget} exhausted after "
                  f"{ran}/{args.programs} programs "
                  f"(last seed {args.seed + ran - 1})")
            break
        program = generate(seed, min_ops=args.min_ops,
                           max_ops=args.max_ops)
        problems = validate(program)
        if problems:
            print(f"seed {seed}: generator produced an invalid program:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        result = run_differential(program)
        spent += result.sim_cycles
        ran += 1
        if result.ok:
            if not args.quiet:
                print(f"seed {seed}: ok ({len(program)} ops, "
                      f"{result.sim_cycles} sim-cycles)")
            continue
        failures += 1
        for failure in result.invariant_failures:
            print(f"seed {seed}: INVARIANT: {failure}")
        if result.divergences:
            print(f"seed {seed}: {len(result.divergences)} divergence(s); "
                  f"shrinking {len(program)} ops ...")
            small = minimize_failure(program, result)
            small_result = run_differential(small)
            path = save_artifact(small, small_result
                                 if small_result.divergences else result,
                                 out_dir=args.out)
            print(f"seed {seed}: minimized to {len(small)} op(s) -> {path}")
            for div in (small_result.divergences
                        or result.divergences)[:5]:
                print(f"  {div.describe()}")
    print(f"{ran} program(s), {failures} failing, "
          f"{spent} simulated cycles total")
    return 1 if failures else 0


def _replay(args) -> int:
    program = load_artifact(args.replay)
    if args.at_op is not None:
        return _replay_at_op(args, program)
    result = run_differential(program)
    print(f"replay {args.replay}: {len(program)} op(s)")
    for failure in result.invariant_failures:
        print(f"  INVARIANT: {failure}")
    for div in result.divergences:
        print(f"  {div.describe()}")
    if result.ok:
        print("  no divergence (bug fixed, or artifact is stale)")
        return 0
    return 1


def _replay_at_op(args, program) -> int:
    """Position one executor at op boundary N via record/replay and
    report the state there: outcomes so far vs the oracle, the
    snapshot fingerprint, and the op about to run."""
    from repro.proptest.executors import default_executor_factories
    from repro.proptest.harness import expected_outcomes
    from repro.snap import (ExecutorWorld, Recorder,  # verify-ok: layering
                            live_fingerprint)

    table = dict(default_executor_factories())
    if args.executor not in table:
        print(f"unknown executor {args.executor!r}; one of: "
              f"{', '.join(table)}")
        return 2
    if not 0 <= args.at_op <= len(program):
        print(f"--at-op {args.at_op} out of range 0..{len(program)}")
        return 2
    world = ExecutorWorld.build(table[args.executor], observe=True)
    recorder = Recorder(world, every_ops=1)
    recorder.run(list(program.ops))
    positioned = recorder.resume(args.at_op)
    expected = expected_outcomes(program)
    print(f"replay {args.replay} on {args.executor}: positioned at "
          f"op {args.at_op}/{len(program)} "
          f"(cycle {positioned.clock()})")
    for i, outcome in enumerate(positioned.outcomes):
        marker = "  " if outcome == expected[i] else "!="
        print(f"  {marker} op {i}: {program.ops[i]!r}")
        print(f"       got      {outcome!r}")
        if outcome != expected[i]:
            print(f"       expected {expected[i]!r}")
    if args.at_op < len(program):
        print(f"  next op: {program.ops[args.at_op]!r}")
    print(f"  fingerprint={live_fingerprint(positioned)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.proptest",
        description="Differential fuzzing of every IPC mechanism "
                    "against the shared oracle.")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; program i uses seed+i")
    parser.add_argument("--programs", type=int, default=50,
                        help="number of programs to generate and run")
    parser.add_argument("--min-ops", type=int, default=6)
    parser.add_argument("--max-ops", type=int, default=20)
    parser.add_argument("--out", default=ARTIFACT_DIR,
                        help="artifact directory for counterexamples")
    parser.add_argument("--replay", metavar="ARTIFACT",
                        help="replay one saved counterexample and exit")
    parser.add_argument("--at-op", type=int, default=None,
                        help="with --replay: stop at op boundary N "
                             "(record/replay positioning) and report "
                             "the state there instead of diffing the "
                             "whole roster")
    parser.add_argument("--executor", default="seL4-XPC",
                        help="executor used with --at-op")
    parser.add_argument("--cycle-budget", type=int, default=None,
                        help="stop fuzzing once this many simulated "
                             "cycles have been burned")
    parser.add_argument("--quiet", action="store_true",
                        help="print failing seeds only")
    args = parser.parse_args(argv)
    if args.replay:
        return _replay(args)
    return _fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
