"""Seeded program generation over the service vocabulary.

One ``random.Random(seed)`` drives every choice, so a seed names a
program forever (no wall clock, no hash-order dependence: all state is
kept in lists and insertion-ordered dicts).  The generator keeps a
small symbolic model of the world it is building — which names exist,
which are granted, how many submits are pending — purely to steer op
*weights* toward interesting sequences; it never needs the model to be
right for the program to be valid (see ``grammar.validate``).
"""

from __future__ import annotations

import random
from typing import List

from repro.proptest.grammar import (
    MAX_PENDING, MAX_THEFTS, CallOp, GrantOp, KillOp, PreemptOp, Program,
    RegisterOp, RevokeOp, SubmitOp, WaitOp,
)

#: The name pool: up to six concurrently known services.
NAMES = ("svc0", "svc1", "svc2", "svc3", "svc4", "svc5")

#: kind weights at registration time (thieves are rare but present).
KIND_WEIGHTS = (("echo", 4), ("xform", 3), ("counter", 3), ("kv", 3),
                ("chain", 2), ("thief", 1))

#: op weights while building the body.
OP_WEIGHTS = (("call", 10), ("submit", 5), ("wait", 3), ("register", 3),
              ("grant", 3), ("revoke", 2), ("kill", 2), ("preempt", 1))

KV_KEYS = ("alpha", "beta", "gamma")

MAX_PAYLOAD = 96


def _weighted(rng: random.Random, table):
    total = sum(w for _, w in table)
    pick = rng.randrange(total)
    for value, weight in table:
        pick -= weight
        if pick < 0:
            return value
    raise AssertionError("unreachable")


def _payload(rng: random.Random) -> bytes:
    n = rng.randrange(MAX_PAYLOAD + 1)
    return bytes(rng.randrange(256) for _ in range(n))


class _World:
    """The generator's symbolic view of the program so far."""

    def __init__(self) -> None:
        self.kinds = {}          # name -> kind of the current generation
        self.granted = {}        # name -> bool (sync-call right)
        self.alive = {}          # name -> bool
        self.pending = 0
        self.thefts = 0

    def names(self) -> List[str]:
        return list(self.kinds)


def _request_for(rng: random.Random, kind: str, name: str, world: _World):
    """(meta, payload, reply_capacity) for one request to *name*."""
    if kind == "echo":
        data = _payload(rng)
        return ("echo", rng.randrange(100)), data, len(data)
    if kind == "xform":
        data = _payload(rng)
        return ("xf", rng.randrange(100)), data, len(data)
    if kind == "counter":
        return ("add", rng.randrange(10)), b"", 16
    if kind == "kv":
        key = rng.choice(KV_KEYS)
        if rng.random() < 0.5:
            data = _payload(rng)
            return ("put", key), data, max(len(data), 8)
        return ("get", key), b"", 128
    if kind == "thief":
        return ("steal", rng.randrange(100)), b"", 8
    if kind == "chain":
        # Pick an inner target among the *other* known names (never a
        # chain — the vocabulary has no recursive chains) or, rarely, a
        # name that does not exist, exercising the inner no-service arm.
        candidates = [n for n in world.names()
                      if n != name and world.kinds.get(n) != "chain"]
        if candidates and rng.random() < 0.9:
            target = rng.choice(candidates)
        else:
            target = "ghost"
        target_kind = world.kinds.get(target, "echo")
        inner_meta, data, inner_cap = _request_for(
            rng, target_kind, target, world)
        # The §4.4 sliding-window handover re-masks the live window, so
        # it needs a non-empty window and an in-place-sized reply:
        # stateless transforms only.  Everything else stages through a
        # scratch segment (the swapseg path).
        handover = (target_kind in ("echo", "xform") and len(data) > 0
                    and rng.random() < 0.5)
        cap = len(data) if handover else max(inner_cap, 512)
        return ("fwd", target, int(handover), inner_meta), data, cap
    raise ValueError(f"unknown kind {kind!r}")


def _register(rng: random.Random, world: _World) -> RegisterOp:
    name = rng.choice(NAMES)
    kind = _weighted(rng, KIND_WEIGHTS)
    world.kinds[name] = kind
    world.granted[name] = False
    world.alive[name] = True
    return RegisterOp(name, kind)


def _pick_name(rng: random.Random, world: _World) -> str:
    """Mostly a known name; sometimes an unknown one (no-service arm)."""
    names = world.names()
    if names and rng.random() < 0.92:
        return rng.choice(names)
    return "ghost"


def generate(seed: int, min_ops: int = 6, max_ops: int = 20) -> Program:
    """One program for one seed.  Deterministic; structurally valid."""
    rng = random.Random(seed)
    world = _World()
    ops = []
    for _ in range(rng.randrange(1, 4)):
        ops.append(_register(rng, world))
        if rng.random() < 0.8:
            ops.append(GrantOp(ops[-1].name))
            world.granted[ops[-1].name] = True
    body = rng.randrange(min_ops, max_ops + 1)
    while len(ops) < body:
        kind = _weighted(rng, OP_WEIGHTS)
        if kind == "register":
            ops.append(_register(rng, world))
        elif kind == "grant":
            name = _pick_name(rng, world)
            ops.append(GrantOp(name))
            if name in world.kinds:
                world.granted[name] = True
        elif kind == "revoke":
            name = _pick_name(rng, world)
            ops.append(RevokeOp(name))
            if name in world.kinds:
                world.granted[name] = False
        elif kind == "kill":
            name = _pick_name(rng, world)
            ops.append(KillOp(name, lazy=rng.random() < 0.7))
            if name in world.kinds:
                world.alive[name] = False
        elif kind == "preempt":
            ops.append(PreemptOp())
        elif kind == "wait":
            ops.append(WaitOp())
            world.pending = 0
        elif kind == "call":
            name = _pick_name(rng, world)
            svc_kind = world.kinds.get(name, "echo")
            thieving = (svc_kind == "thief")
            meta, payload, cap = _request_for(rng, svc_kind, name, world)
            if svc_kind == "chain" and world.kinds.get(meta[1]) == "thief":
                thieving = True
            if thieving:
                if world.thefts >= MAX_THEFTS:
                    continue
                world.thefts += 1
            ops.append(CallOp(name, meta, payload, cap))
        elif kind == "submit":
            if world.pending >= MAX_PENDING:
                ops.append(WaitOp())
                world.pending = 0
                continue
            name = _pick_name(rng, world)
            svc_kind = world.kinds.get(name, "echo")
            if svc_kind == "thief":
                continue        # thieves are sync-only by construction
            meta, payload, cap = _request_for(rng, svc_kind, name, world)
            if svc_kind == "chain" and world.kinds.get(meta[1]) == "thief":
                continue
            ops.append(SubmitOp(name, meta, payload, cap))
            world.pending += 1
    if world.pending:
        ops.append(WaitOp())
    return Program(tuple(ops), seed)
