"""The ``fastcore`` executor: repro.fastcore driving the fuzz grammar.

One more executor for the differential roster — but unlike the other
nine it does not build a machine at all.  Service state is a slotted
:class:`~repro.fastcore.structs.FastService` record per generation,
and every op charges precomputed :class:`~repro.fastcore.tables.
CycleTable` sums straight onto a shim core, at exactly the reference's
tick sites:

======================  =================================================
reference code path      fast-core charge
======================  =================================================
``Transport.register``   2 × (register_xentry + grant) on the two
(both transports)        transports, + one grant per chain wiring edge
``grant_to_thread``      ``table.grant`` (revocation is capless: free)
``kill_process``         ``table.kill`` once per live generation
``kernel.preempt``       ``table.preempt``
``_ensure_seg``          ``table.seg_create(size)`` on first use per
                         transport (main / async)
relay fill               ``table.fill(len(payload))``
``xpc_call`` body        seg-mask write, then captest-fail floor
                         (denied / dead) or xcall + AS switch +
                         trampoline + xret + AS switch
§4.4 scratch hop         first-use seg create + swapseg / copy /
                         swapseg around the inner call
theft (§3.3/§4.2)        thief body (4 KB seg create + swapseg), then
                         xret + repair instead of the return AS switch
======================  =================================================

The harness holds this executor to *strict* equivalence with the
seL4-XPC reference — identical outcomes and identical per-op cycle
deltas — so any drift between this table arithmetic and the reference
engine's ticks is a fuzz failure, shrunk by ddmin like any other
divergence (see ``tests/proptest/test_fastcore_seeded_bug.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.fastcore.structs import (FastCoreShim, FastService, KernelShim,
                                    MachineShim)
from repro.fastcore.tables import CycleTable, cycle_table
from repro.params import CycleParams, DEFAULT_PARAMS
from repro.proptest.executors import ExecutionReport, _run_steps
from repro.proptest.grammar import (
    CallOp, GrantOp, KillOp, PreemptOp, Program, RegisterOp, RevokeOp,
    SubmitOp, WaitOp, counter_bytes, xform_bytes,
)

#: ``free_relay_seg`` is trap + restore only; charged if a transport
#: segment ever has to grow (generated programs never outgrow the
#: 64 KB default, but hand-written programs may).
_SEG_DEFAULT = 64 * 1024


class FastCoreExecutor:
    """Table-driven executor, differentially locked to seL4-XPC."""

    name = "fastcore"
    mechanism_enforces = True
    comparable = False
    is_xpc = True

    def __init__(self, params: Optional[CycleParams] = None) -> None:
        self.params = params if params is not None else DEFAULT_PARAMS
        self.table: CycleTable = cycle_table(self.params)
        self.core = FastCoreShim(0)
        self.machine = MachineShim([self.core])
        self.kernel = KernelShim(self.machine)
        self.services = {}        # name -> current FastService
        self.all_recs: List[FastService] = []
        self.pending: List[Tuple[Optional[FastService], SubmitOp]] = []
        # Client relay segments, one per transport (main / async):
        # current byte length, 0 = not yet created.
        self._main_seg = 0
        self._async_seg = 0

    # -- the program loop (same shapes as repro.proptest.executors) -----
    def run(self, program: Program) -> ExecutionReport:
        return _run_steps(self, program)

    def _ipc_total(self) -> int:
        return 0

    def step(self, op) -> tuple:
        try:
            return self._step(op)
        except Exception as exc:
            return ("crash", type(exc).__name__)

    def _step(self, op) -> tuple:
        table = self.table
        core = self.core
        if isinstance(op, RegisterOp):
            rec = FastService(op.name, op.kind)
            # Two transports each register an x-entry and auto-grant
            # their client (the main-transport grant is then revoked —
            # revocation clears a cap bit without trapping).
            core.cycles += 2 * (table.register_xentry + table.grant)
            self.services[op.name] = rec
            self.all_recs.append(rec)
            wires = sum(1 for other in self.all_recs
                        if other.kind == "chain" and other is not rec)
            if rec.kind == "chain":
                wires += len(self.all_recs)
            core.cycles += wires * table.grant
            return ("ok",)
        if isinstance(op, GrantOp):
            rec = self.services.get(op.name)
            if rec is None:
                return ("error", "no-service")
            rec.granted = True
            core.cycles += table.grant
            return ("ok",)
        if isinstance(op, RevokeOp):
            rec = self.services.get(op.name)
            if rec is None:
                return ("error", "no-service")
            rec.granted = False
            return ("ok",)
        if isinstance(op, KillOp):
            rec = self.services.get(op.name)
            if rec is None:
                return ("error", "no-service")
            if rec.alive:
                # Lazy zap and eager scan cost the same at an op
                # boundary: no linkage records are resident to scan.
                core.cycles += table.kill
                rec.alive = False
            return ("ok",)
        if isinstance(op, PreemptOp):
            core.cycles += table.preempt
            return ("ok",)
        if isinstance(op, CallOp):
            rec = self.services.get(op.name)
            if rec is None:
                return ("error", "no-service")
            return self._transport_call(rec, op.meta, op.payload,
                                        op.reply_capacity, main=True)
        if isinstance(op, SubmitOp):
            # Binds the target's *current* generation, like the ring.
            self.pending.append((self.services.get(op.name), op))
            return ("queued",)
        if isinstance(op, WaitOp):
            outcomes = []
            for rec, sub in self.pending:
                if rec is None:
                    outcomes.append(("error", "no-service"))
                else:
                    # The async client's caps are never revoked.
                    outcomes.append(self._transport_call(
                        rec, sub.meta, sub.payload, sub.reply_capacity,
                        main=False))
            self.pending = []
            return ("batch", tuple(outcomes))
        raise TypeError(f"unknown op {op!r}")

    # -- the data plane --------------------------------------------------
    def _transport_call(self, rec: FastService, meta: tuple,
                        payload: bytes, reply_capacity: int,
                        main: bool) -> tuple:
        table = self.table
        need = max(len(payload), reply_capacity, 4096)
        cur = self._main_seg if main else self._async_seg
        if cur < need:
            size = max(need, _SEG_DEFAULT)
            if cur:
                # free_relay_seg of the outgrown segment: trap + restore.
                self.core.cycles += (table.params.trap_enter
                                     + table.params.trap_restore)
            self.core.cycles += table.seg_create(size)
            if main:
                self._main_seg = size
            else:
                self._async_seg = size
        if payload:
            self.core.cycles += table.fill(len(payload))
        granted = rec.granted if main else True
        return self._xcall(rec, meta, payload, granted)

    def _xcall(self, rec: FastService, meta: tuple, data: bytes,
               granted: bool) -> tuple:
        """One ``xpc_call``: mask write, engine checks, migrate, unwind."""
        table = self.table
        core = self.core
        core.cycles += table.seg_mask
        if not granted:
            core.cycles += table.captest       # cap test trips
            return ("error", "denied")
        if not rec.alive:
            core.cycles += table.captest       # x-entry zapped
            return ("error", "peer-died")
        core.cycles += table.xcall + table.as_switch
        failure = False
        reply_meta: tuple = ()
        reply = b""
        stole = False
        try:
            reply_meta, reply, stole = self._invoke(rec, meta, data)
        except Exception:
            failure = True                     # handler raised post-tramp
        core.cycles += table.xret
        if stole:
            core.cycles += table.repair        # §3.3 mismatch → §4.2
            return ("error", "peer-died")
        core.cycles += table.as_switch
        if failure:
            return ("error", "handler-error")
        return ("ok", reply_meta, reply)

    def _invoke(self, rec: FastService, meta: tuple,
                data: bytes) -> Tuple[tuple, bytes, bool]:
        """The migrated handler: trampoline in, service body, reply."""
        table = self.table
        self.core.cycles += table.tramp
        kind = rec.kind
        if kind == "echo":
            return ("echo",) + meta[1:], data, False
        if kind == "xform":
            return ("xf",) + meta[1:], xform_bytes(data), False
        if kind == "counter":
            total = rec.counter + meta[1]      # TypeError → handler-error
            rec.counter = total
            return ("cnt", total), counter_bytes(total), False
        if kind == "kv":
            verb, key = meta[0], meta[1]
            if verb == "put":
                rec.kv[key] = data
                return ("put", key, len(data)), b"", False
            value = rec.kv.get(key)
            if value is None:
                raise KeyError(key)
            return ("get", key, len(value)), value, False
        if kind == "chain":
            chain_meta, chain_bytes = self._chain_body(rec, meta, data)
            return chain_meta, chain_bytes, False
        if kind == "thief":
            self.core.cycles += table.thief_body
            return ("stolen",) + meta[1:], b"", True
        raise ValueError(f"unknown kind {kind!r}")

    def _chain_body(self, caller: FastService, meta: tuple,
                    data: bytes) -> Tuple[tuple, bytes]:
        # Unpack before any catching, like _chain_hop: a mis-shaped meta
        # is a handler failure, not a via-err.
        _fwd, target_name, handover, inner_meta = meta
        rec = self.services.get(target_name)
        if rec is None:
            return ("via-err", "no-service"), b""
        if handover:
            # §4.4 sliding window: re-mask the live window, no copy.
            inner = self._xcall(rec, inner_meta, data, True)
        else:
            if not caller.scratch_made:
                self.core.cycles += self.table.seg_create_default
                caller.scratch_made = True
            self.core.cycles += self.table.swapseg   # park caller window
            if data:
                self.core.cycles += self.table.copy(len(data))
            inner = self._xcall(rec, inner_meta, data, True)
            self.core.cycles += self.table.swapseg   # restore it
        if inner[0] == "error":
            return ("via-err", inner[1]), b""
        return ("via",) + inner[1], inner[2]
