"""flow-escape: capability / relay-seg handle escape analysis.

The §3.3 security argument needs relay-segment and x-entry-capability
*handles* to stay inside the trusted layers: hardware (`hw`), the engine
(`xpc`), and the kernel control plane.  Untrusted code — `services` and
`apps` — may *use* the windows the protocol hands it (seg-reg views,
ring payloads) but must never hold the underlying
``RelaySegment``/``XCallCapBitmap`` objects, because holding the handle
is exactly the both-sides-keep-the-mapping TOCTTOU the paper closes.

This is a *may*-taint analysis over the call graph:

* **origins** — calls to ``create_relay_seg`` / ``deactivate_relay_seg``
  and direct constructions of :data:`HANDLE_CLASSES`;
* **function summaries** — a function *returns a handle* if any of its
  returns may return a tainted value (taint propagates through local
  assignments and tuple unpacking; any-candidate resolution, so the
  summary over-approximates);
* **violations** — untrusted code that (a) calls an origin directly,
  (b) calls a handle-returning function, or (c) is *passed* a handle by
  trusted code calling down into an untrusted unit with a tainted
  argument.

The sanctioned surfaces in :data:`SANCTIONED_SINKS` (the kernel install/
deactivate/grant control plane and the engine internals) may receive
handles from anyone — that is the protocol.  Suppress a consciously
chosen site with ``# verify-ok: flow-escape``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Set

from repro.verify.lint import LintViolation

from repro.verify.flow.cfg import call_name
from repro.verify.flow.engine import fixpoint

#: Constructing one of these *is* minting a handle.
HANDLE_CLASSES: FrozenSet[str] = frozenset({
    "RelaySegment", "XCallCapBitmap", "RadixCapTable",
})

#: Calls that hand a fresh or recovered handle to their caller.
ORIGIN_CALLS: FrozenSet[str] = frozenset({
    "create_relay_seg", "deactivate_relay_seg",
}) | HANDLE_CLASSES

#: Callee names allowed to *receive* a handle argument from anywhere —
#: the sanctioned control-plane surface of §3.3/§4.1.
SANCTIONED_SINKS: FrozenSet[str] = frozenset({
    "install_relay_seg", "deactivate_relay_seg", "grant_xcall_cap",
    "revoke_xcall_cap", "attach", "format",
})

#: Units that must never hold a raw handle.
UNTRUSTED_UNITS: FrozenSet[str] = frozenset({"services", "apps"})


def _is_origin(call: ast.Call) -> bool:
    return call_name(call) in ORIGIN_CALLS


class _FuncTaint(ast.NodeVisitor):
    """Intraprocedural taint of local names inside one function.

    A flow-insensitive transitive closure: names assigned from tainted
    expressions are tainted (iterated to a local fixpoint so chains like
    ``a = origin(); b = a`` converge regardless of statement order).
    """

    def __init__(self, func, returns_handle: Dict[str, bool],
                 callgraph) -> None:
        self.func = func
        self.returns_handle = returns_handle
        self.callgraph = callgraph
        self.tainted: Set[str] = set()

    def run(self) -> Set[str]:
        while True:
            before = len(self.tainted)
            for stmt in ast.walk(self.func.node):
                if isinstance(stmt, ast.Assign):
                    if self.expr_tainted(stmt.value):
                        for target in stmt.targets:
                            self._taint_target(target)
                elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                    if self.expr_tainted(stmt.value):
                        self._taint_target(stmt.target)
            if len(self.tainted) == before:
                return self.tainted

    def _taint_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_target(elt)

    def expr_tainted(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, ast.Call):
            if _is_origin(expr):
                return True
            cands = self.callgraph.candidates(expr)
            return any(self.returns_handle.get(c.qualname, False)
                       for c in cands)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return any(self.expr_tainted(e) for e in expr.elts)
        if isinstance(expr, ast.Subscript):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(expr.body) or \
                self.expr_tainted(expr.orelse)
        if isinstance(expr, ast.NamedExpr):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.Starred):
            return self.expr_tainted(expr.value)
        return False


class EscapeAnalysis:
    """Interprocedural handle-escape pass; reported via FlowEscape."""

    def __init__(self, program) -> None:
        self.program = program
        self.returns_handle = self._summaries()

    def _summaries(self) -> Dict[str, bool]:
        funcs = self.program.callgraph.functions
        values = {f.qualname: False for f in funcs}      # least fixpoint

        def step(cur: Dict[str, bool]) -> Dict[str, bool]:
            nxt = {}
            for func in funcs:
                nxt[func.qualname] = cur[func.qualname] or \
                    self._func_returns_handle(func, cur)
            return nxt

        return fixpoint(values, step)

    def _func_returns_handle(self, func,
                             summaries: Dict[str, bool]) -> bool:
        taint = _FuncTaint(func, summaries, self.program.callgraph)
        taint.run()
        for stmt in ast.walk(func.node):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if taint.expr_tainted(stmt.value):
                    return True
        return False

    # -- the reported check --------------------------------------------
    def check(self, rule) -> Iterator[LintViolation]:
        callgraph = self.program.callgraph
        for func in callgraph.functions:
            taint = _FuncTaint(func, self.returns_handle, callgraph)
            tainted_names = taint.run()
            untrusted_here = func.unit in UNTRUSTED_UNITS
            for stmt in ast.walk(func.node):
                if not isinstance(stmt, ast.Call):
                    continue
                name = call_name(stmt)
                if untrusted_here:
                    v = self._check_untrusted_call(rule, func, stmt, name,
                                                   taint)
                else:
                    v = self._check_trusted_call(rule, func, stmt, name,
                                                 taint, tainted_names)
                if v:
                    yield v

    def _check_untrusted_call(self, rule, func, call: ast.Call, name: str,
                              taint: _FuncTaint):
        if _is_origin(call):
            return rule.violation(
                func.module, call.lineno,
                f"repro.{func.unit} obtains a raw relay-seg/capability "
                f"handle via {name}() — handles stay in hw/xpc/kernel; "
                f"untrusted code gets windows, not segments (§3.3)")
        cands = self.program.callgraph.candidates(call)
        # An all-untrusted callee set means any handle it returns was
        # minted inside untrusted code — flagged there, at the origin.
        if cands and name not in SANCTIONED_SINKS and \
                not all(c.unit in UNTRUSTED_UNITS for c in cands) and \
                any(self.returns_handle.get(c.qualname, False)
                    for c in cands):
            return rule.violation(
                func.module, call.lineno,
                f"repro.{func.unit} calls {name}(), which may return a "
                f"relay-seg/capability handle — the handle would escape "
                f"the trusted layers (§3.3); route through the sanctioned "
                f"install/grant surface instead")
        return None

    def _check_trusted_call(self, rule, func, call: ast.Call, name: str,
                            taint: _FuncTaint, tainted_names: Set[str]):
        if name in SANCTIONED_SINKS:
            return None
        args = list(call.args) + [kw.value for kw in call.keywords]
        if not any(taint.expr_tainted(a) for a in args):
            return None
        cands = self.program.callgraph.candidates(call)
        if not cands or not all(c.unit in UNTRUSTED_UNITS for c in cands):
            return None
        return rule.violation(
            func.module, call.lineno,
            f"passes a relay-seg/capability handle into "
            f"repro.{cands[0].unit} via {name}() — handles must not "
            f"escape into untrusted layers (§3.3); pass a window or an "
            f"id, or add the surface to "
            f"repro.verify.flow.escape.SANCTIONED_SINKS")
