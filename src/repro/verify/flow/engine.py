"""A small fixpoint dataflow engine over :mod:`repro.verify.flow.cfg`.

One generic forward worklist solver parameterized by the lattice
(``join``) and the per-node ``transfer`` function.  Facts must be
hashable-comparable values (booleans, frozensets); the solver iterates
to a fixpoint, which terminates because every analysis here uses a
finite lattice and monotone transfer functions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, TypeVar

from repro.verify.flow.cfg import CFG, ENTRY

T = TypeVar("T")


def solve_forward(cfg: CFG, entry_fact: T, bottom: T,
                  join: Callable[[T, T], T],
                  transfer: Callable[[int, T], T]) -> Dict[int, T]:
    """Forward dataflow: returns the *input* fact of every node.

    ``in[ENTRY] = entry_fact``; for every other node ``n``,
    ``in[n] = join over predecessors p of transfer(p, in[p])``.
    Unreachable nodes keep ``bottom``.
    """
    facts: Dict[int, T] = {n: bottom for n in cfg.nodes}
    facts[ENTRY] = entry_fact
    work = list(cfg.nodes)
    on_work = set(work)
    while work:
        node = work.pop()
        on_work.discard(node)
        preds = cfg.pred[node]
        if not preds and node != ENTRY:
            continue
        if node == ENTRY:
            new = entry_fact
        else:
            acc = None
            for p in preds:
                out_p = transfer(p, facts[p])
                acc = out_p if acc is None else join(acc, out_p)
            new = acc
        if new != facts[node]:
            facts[node] = new
            for s in cfg.succ[node]:
                if s not in on_work:
                    on_work.add(s)
                    work.append(s)
    return facts


def out_facts(cfg: CFG, in_facts: Dict[int, T],
              transfer: Callable[[int, T], T]) -> Dict[int, T]:
    """The *output* fact of every node, given solved input facts."""
    return {n: transfer(n, in_facts[n]) for n in cfg.nodes}


def fixpoint(values: Dict[str, T],
             step: Callable[[Dict[str, T]], Dict[str, T]],
             max_rounds: int = 64) -> Dict[str, T]:
    """Iterate *step* on a summary map until it stops changing."""
    for _ in range(max_rounds):
        nxt = step(values)
        if nxt == values:
            return nxt
        values = nxt
    return values


def any_reachable(cfg: CFG, start: int, targets: Iterable[int]) -> bool:
    reach = cfg.reachable_from(start)
    return any(t in reach for t in targets)
