"""Per-function control-flow graphs, including exception edges.

The unit of the graph is the *statement*: each simple statement is one
node, each compound statement contributes a *header* node (whose
``effect`` is only the header expression — ``if``'s test, ``for``'s
iterable, ``with``'s context managers) plus the nodes of its nested
blocks.  Three synthetic nodes frame every function: ``ENTRY``, ``EXIT``
(normal return / fall-off-the-end), and ``RAISE`` (exceptional exit).

Exception edges are deliberately coarse: every statement inside a
``try`` body gets an edge to the entry node of **each** handler of every
enclosing ``try`` (and to ``RAISE``), because at this granularity we
cannot know which statements raise which types.  That over-approximates
*may* reach (sound for the escape and except audits) and keeps *must*
analyses honest — a charge proven on every CFG path really is charged on
every concrete path.

The ``effect`` of a node is the AST fragment an analysis should scan for
calls/loads at that node; bodies of nested ``def``/``class`` statements
are *not* part of any effect (they execute at call time, not here).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

ENTRY = 0
EXIT = 1
RAISE = 2


@dataclass
class CFGNode:
    """One node: a statement, a compound header, or a synthetic frame."""

    id: int
    kind: str                       # "entry"|"exit"|"raise"|"stmt"|"handler"
    stmt: Optional[ast.AST] = None
    effect: Optional[ast.AST] = None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass
class CFG:
    """The control-flow graph of one function body."""

    func: ast.AST
    nodes: Dict[int, CFGNode] = field(default_factory=dict)
    succ: Dict[int, Set[int]] = field(default_factory=dict)
    pred: Dict[int, Set[int]] = field(default_factory=dict)
    #: handler AST node -> its CFG entry node id.
    handler_entry: Dict[ast.ExceptHandler, int] = field(default_factory=dict)

    def add_node(self, kind: str, stmt: Optional[ast.AST] = None,
                 effect: Optional[ast.AST] = None) -> int:
        nid = len(self.nodes)
        self.nodes[nid] = CFGNode(nid, kind, stmt, effect)
        self.succ[nid] = set()
        self.pred[nid] = set()
        return nid

    def add_edge(self, a: int, b: int) -> None:
        self.succ[a].add(b)
        self.pred[b].add(a)

    def reachable_from(self, start: int) -> Set[int]:
        seen = {start}
        work = [start]
        while work:
            n = work.pop()
            for s in self.succ[n]:
                if s not in seen:
                    seen.add(s)
                    work.append(s)
        return seen

    def statements(self) -> List[CFGNode]:
        return [n for n in self.nodes.values()
                if n.kind in ("stmt", "handler")]


def _loop_test_always_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


class _Builder:
    """Builds a :class:`CFG` by structural recursion over blocks.

    ``_block`` threads a *frontier* — the set of nodes whose normal
    fallthrough continues at the next statement — and a context of
    break/continue targets plus the entry nodes of enclosing handlers
    (for exception edges).
    """

    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG(func)
        assert self.cfg.add_node("entry") == ENTRY
        assert self.cfg.add_node("exit") == EXIT
        assert self.cfg.add_node("raise") == RAISE
        # Innermost-last list of handler-entry-id lists of enclosing trys.
        self.handler_stack: List[List[int]] = []

    def build(self, body: List[ast.stmt]) -> CFG:
        frontier = self._block(body, {ENTRY}, None, None)
        for n in frontier:                  # fall off the end == return None
            self.cfg.add_edge(n, EXIT)
        return self.cfg

    # -- helpers -------------------------------------------------------
    def _link(self, frontier: Set[int], node: int) -> None:
        for n in frontier:
            self.cfg.add_edge(n, node)

    def _raise_edges(self, node: int) -> None:
        """*node* may raise: edges to every enclosing handler + RAISE."""
        for handlers in self.handler_stack:
            for h in handlers:
                self.cfg.add_edge(node, h)
        self.cfg.add_edge(node, RAISE)

    # -- the recursion -------------------------------------------------
    def _block(self, stmts: List[ast.stmt], frontier: Set[int],
               break_to: Optional[Set[int]],
               continue_to: Optional[int]) -> Set[int]:
        for stmt in stmts:
            if not frontier:
                break                       # unreachable code: stop here
            frontier = self._stmt(stmt, frontier, break_to, continue_to)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: Set[int],
              break_to: Optional[Set[int]],
              continue_to: Optional[int]) -> Set[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.Return):
            node = cfg.add_node("stmt", stmt, stmt)
            self._link(frontier, node)
            self._raise_edges(node)
            cfg.add_edge(node, EXIT)
            return set()
        if isinstance(stmt, ast.Raise):
            node = cfg.add_node("stmt", stmt, stmt)
            self._link(frontier, node)
            self._raise_edges(node)
            return set()
        if isinstance(stmt, ast.Break):
            node = cfg.add_node("stmt", stmt, None)
            self._link(frontier, node)
            if break_to is not None:
                break_to.add(node)
            return set()
        if isinstance(stmt, ast.Continue):
            node = cfg.add_node("stmt", stmt, None)
            self._link(frontier, node)
            if continue_to is not None:
                cfg.add_edge(node, continue_to)
            return set()
        if isinstance(stmt, ast.If):
            header = cfg.add_node("stmt", stmt, stmt.test)
            self._link(frontier, header)
            self._raise_edges(header)
            then = self._block(stmt.body, {header}, break_to, continue_to)
            if stmt.orelse:
                other = self._block(stmt.orelse, {header}, break_to,
                                    continue_to)
            else:
                other = {header}
            return then | other
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier, break_to, continue_to)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = cfg.add_node(
                "stmt", stmt,
                ast.Tuple(elts=[item.context_expr for item in stmt.items],
                          ctx=ast.Load()))
            self._link(frontier, header)
            self._raise_edges(header)
            return self._block(stmt.body, {header}, break_to, continue_to)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, break_to, continue_to)
        if isinstance(stmt, ast.Match):
            header = cfg.add_node("stmt", stmt, stmt.subject)
            self._link(frontier, header)
            self._raise_edges(header)
            out: Set[int] = set()
            exhaustive = False
            for case in stmt.cases:
                out |= self._block(case.body, {header}, break_to,
                                   continue_to)
                if (isinstance(case.pattern, ast.MatchAs)
                        and case.pattern.pattern is None
                        and case.guard is None):
                    exhaustive = True       # a bare `case _:` catches all
            if not exhaustive:
                out.add(header)
            return out
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A nested definition executes only its decorators/bases now.
            effect = ast.Tuple(elts=list(stmt.decorator_list),
                               ctx=ast.Load())
            node = cfg.add_node("stmt", stmt, effect)
            self._link(frontier, node)
            return {node}
        # Simple statement: Assign/AugAssign/Expr/Assert/Delete/...
        node = cfg.add_node("stmt", stmt, stmt)
        self._link(frontier, node)
        self._raise_edges(node)
        if isinstance(stmt, ast.Assert):
            pass                            # failure path == RAISE edge
        return {node}

    def _loop(self, stmt, frontier: Set[int], break_to: Optional[Set[int]],
              continue_to: Optional[int]) -> Set[int]:
        cfg = self.cfg
        header_effect = stmt.test if isinstance(stmt, ast.While) \
            else stmt.iter
        header = cfg.add_node("stmt", stmt, header_effect)
        self._link(frontier, header)
        self._raise_edges(header)
        breaks: Set[int] = set()
        body_out = self._block(stmt.body, {header}, breaks, header)
        for n in body_out:
            cfg.add_edge(n, header)         # back edge
        infinite = (isinstance(stmt, ast.While)
                    and _loop_test_always_true(stmt.test))
        exits = set() if infinite else {header}
        if stmt.orelse:
            exits = self._block(stmt.orelse, exits, break_to, continue_to) \
                if exits else set()
        return exits | breaks

    def _try(self, stmt: ast.Try, frontier: Set[int],
             break_to: Optional[Set[int]],
             continue_to: Optional[int]) -> Set[int]:
        cfg = self.cfg
        # Handler entries exist before the body so body statements can
        # grow exception edges to them.
        entries: List[int] = []
        for handler in stmt.handlers:
            entry = cfg.add_node("handler", handler, handler.type)
            cfg.handler_entry[handler] = entry
            entries.append(entry)
        self.handler_stack.append(entries)
        try:
            body_out = self._block(stmt.body, frontier, break_to,
                                   continue_to)
        finally:
            self.handler_stack.pop()
        out = self._block(stmt.orelse, body_out, break_to, continue_to) \
            if stmt.orelse else body_out
        for handler in stmt.handlers:
            entry = cfg.handler_entry[handler]
            self._raise_edges(entry)        # handler may itself raise
            out |= self._block(handler.body, {entry}, break_to,
                               continue_to)
        if stmt.finalbody:
            out = self._block(stmt.finalbody, out, break_to, continue_to)
            # The finally block also runs on the exceptional path and
            # re-raises afterwards.
            for n in out:
                cfg.add_edge(n, RAISE)
        return out


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of a ``FunctionDef``/``AsyncFunctionDef`` body."""
    return _Builder(func).build(func.body)


def effect_calls(node: CFGNode) -> List[ast.Call]:
    """Every call expression evaluated *at* this node (nested defs and
    lambdas excluded — their bodies run later, elsewhere)."""
    if node.effect is None:
        return []
    out: List[ast.Call] = []
    stack: List[ast.AST] = [node.effect]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(cur, ast.Call):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


def call_name(call: ast.Call) -> str:
    """The bare name a call targets ("tick" for ``self.core.tick(...)``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""
