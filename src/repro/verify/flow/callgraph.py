"""A whole-``repro`` call graph, resolved by bare name.

Python has no static dispatch, so the resolver is deliberately humble:
a call site names a bare identifier (``tick`` for ``self.core.tick(..)``)
and resolves to *every* function or method of that name anywhere in the
analyzed module set.  Analyses choose the sound direction per query —
*may* facts (escape) hold if **any** candidate has them, *must* facts
(always-charges) only if **all** candidates do — so the imprecision of
name resolution never produces an unsound verdict, only occasional
pragma-worthy noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.verify.lint import ModuleInfo

from repro.verify.flow.cfg import call_name


@dataclass(frozen=True)
class FuncDef:
    """One function or method definition in the analyzed program."""

    module: ModuleInfo
    node: ast.AST                   # FunctionDef | AsyncFunctionDef
    cls: Optional[str]              # enclosing class name, if a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        if self.cls:
            return f"{self.module.modname}.{self.cls}.{self.name}"
        return f"{self.module.modname}.{self.name}"

    @property
    def unit(self) -> str:
        return self.module.unit


def _walk_defs(module: ModuleInfo) -> Iterator[FuncDef]:
    """Yield every def in *module* with its enclosing class (if any)."""
    stack: List[tuple] = [(node, None) for node in module.tree.body]
    while stack:
        node, cls = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield FuncDef(module, node, cls)
            # Nested defs belong to no class namespace of interest.
            stack.extend((child, None) for child in node.body)
        elif isinstance(node, ast.ClassDef):
            stack.extend((child, node.name) for child in node.body)
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                               ast.While)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    stack.append((child, cls))


class CallGraph:
    """Name-indexed view of every def across the analyzed modules."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.functions: List[FuncDef] = []
        self.by_name: Dict[str, List[FuncDef]] = {}
        for module in modules:
            for func in _walk_defs(module):
                self.functions.append(func)
                self.by_name.setdefault(func.name, []).append(func)

    def candidates(self, call: ast.Call) -> List[FuncDef]:
        """Every definition a call site may target (empty if the name is
        unknown — e.g. stdlib or builtins)."""
        name = call_name(call)
        if not name:
            return []
        return self.by_name.get(name, [])

    def candidates_named(self, name: str) -> List[FuncDef]:
        return self.by_name.get(name, [])
