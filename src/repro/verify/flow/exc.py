"""flow-except: the exception-flow audit.

The engine's error discipline is *typed*: ``XPCPeerDiedError``,
``LinkStackOverflowError``, ``XPCRingFullError`` and friends (paper
Table 2) are part of the protocol's contract, and callers are expected
to branch on them.  A **broad** ``except`` (bare, ``Exception``, or
``BaseException``) that *swallows* the error — neither re-raising nor
even referencing the caught exception — and then continues onto a path
that mutates engine/ring state turns a protocol abort into silent state
corruption.

The audit runs on the CFG of every function in the mechanism layers
(:data:`SCOPE_UNITS`).  A handler is flagged when all three hold:

1. its type is broad (``except:``, ``except Exception``,
   ``except BaseException``, or a tuple containing one of those);
2. it swallows: no ``raise`` anywhere in the handler body, and the
   bound name (``except Exception as exc``) is absent or never read —
   a handler that logs, wraps, or stores ``exc`` made a decision; one
   that ignores it did not;
3. from the handler's entry node, a **state mutation** is CFG-reachable
   (an attribute assignment, or a call to one of the mutating protocol
   operations in :data:`MUTATORS`) — i.e. execution continues as if the
   operation had succeeded.

Suppress a sanctioned catch-all with ``# verify-ok: flow-except`` on the
``except`` line.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.verify.lint import LintViolation

from repro.verify.flow.cfg import CFG, CFGNode, call_name, effect_calls

#: Units whose functions the audit covers (the mechanism layers that own
#: engine/ring/kernel state).
SCOPE_UNITS: FrozenSet[str] = frozenset({
    "xpc", "kernel", "runtime", "ipc", "aio",
})

#: Broad exception type names.
BROAD_NAMES: FrozenSet[str] = frozenset({"Exception", "BaseException"})

#: Calls that mutate protocol state; reaching one after a swallowed
#: error is the bug.
MUTATORS: FrozenSet[str] = frozenset({
    "push", "pop", "force_pop", "spill", "unspill",
    "push_sqe", "pop_sqe", "push_cqe", "pop_cqe", "reset",
    "bind", "unbind", "swapseg", "xcall", "xret", "tick",
    "_store", "store", "install_relay_seg", "deactivate_relay_seg",
    "grant_xcall_cap", "revoke_xcall_cap", "kill_process",
    "invalidate_records_of", "set_address_space",
})


def _is_broad(type_expr: Optional[ast.expr]) -> bool:
    if type_expr is None:
        return True                          # bare except:
    if isinstance(type_expr, ast.Name):
        return type_expr.id in BROAD_NAMES
    if isinstance(type_expr, ast.Attribute):
        return type_expr.attr in BROAD_NAMES
    if isinstance(type_expr, ast.Tuple):
        return any(_is_broad(elt) for elt in type_expr.elts)
    return False


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
    if handler.name:
        for node in ast.walk(handler):
            if isinstance(node, ast.Name) and node.id == handler.name \
                    and isinstance(node.ctx, ast.Load):
                return False
    return True


def _mutation_of(node: CFGNode) -> Optional[Tuple[int, str]]:
    """(line, description) if this CFG node mutates protocol state."""
    stmt = node.stmt
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            for t in ast.walk(target):
                if isinstance(t, ast.Attribute) and \
                        isinstance(t.ctx, ast.Store):
                    return stmt.lineno, f"writes .{t.attr}"
    if node.effect is not None:
        for call in effect_calls(node):
            name = call_name(call)
            if name in MUTATORS:
                line = getattr(call, "lineno", node.line)
                return line, f"calls {name}()"
    return None


def _reachable_mutation(cfg: CFG,
                        entry: int) -> Optional[Tuple[int, str]]:
    """The earliest-line state mutation CFG-reachable from *entry* (the
    handler body itself included — mutating state inside the swallowing
    handler is the same bug)."""
    best: Optional[Tuple[int, str]] = None
    for nid in sorted(cfg.reachable_from(entry)):
        found = _mutation_of(cfg.nodes[nid])
        if found and (best is None or found[0] < best[0]):
            best = found
    return best


class ExceptAnalysis:
    """Per-function audit over the CFGs; reported via FlowExcept."""

    def __init__(self, program) -> None:
        self.program = program

    def check(self, rule) -> Iterator[LintViolation]:
        for func in self.program.callgraph.functions:
            if func.unit not in SCOPE_UNITS:
                continue
            broad: List[ast.ExceptHandler] = [
                h for node in ast.walk(func.node)
                if isinstance(node, ast.Try) for h in node.handlers
                if _is_broad(h.type) and _handler_swallows(h)]
            if not broad:
                continue
            cfg = self.program.cfg_of(func)
            for handler in broad:
                entry = cfg.handler_entry.get(handler)
                if entry is None:
                    continue            # handler of a nested def
                found = _reachable_mutation(cfg, entry)
                if not found:
                    continue
                line, what = found
                v = rule.violation(
                    func.module, handler.lineno,
                    f"broad except in {func.qualname} swallows typed XPC "
                    f"errors (no re-raise, exception never read) on a "
                    f"path that then mutates protocol state "
                    f"(line {line}: {what}) — catch the specific "
                    f"repro.xpc.errors type or re-raise")
                if v:
                    yield v
