"""flow-charge: path-sensitive cycle-charge analysis.

The syntactic :mod:`repro.verify.rules.cycles` rule asks "does a
``tick`` appear *somewhere* in the method body?" — it cannot see the
early return that skips the charge.  This analysis proves the stronger
property on the CFG: **every path** through a public method of a
charging class (``XPCEngine``, ``Core``, ``XPCRing``) reaches a charge
before reaching a *valued* return.

A node charges if its effect calls ``tick`` directly, or calls a
function whose every resolution (by the humble name-resolver of
:mod:`repro.verify.flow.callgraph`) *always charges* — a summary
computed as an interprocedural greatest fixpoint, so charging via a
helper (``self._charge_entry()``) counts.

Declared-free exits, which do **not** need a charge on their path:

* a bare ``return`` / ``return None`` — the guard-exit convention: a
  rejected precondition costs nothing architectural;
* ``return <something>_cycles(...)`` — the cost-provider convention of
  the syntactic rule (the caller charges);
* the exceptional exit (``RAISE``) — a raised typed error aborts the
  operation; its cost, if any, is the trap path's to model.

Everything else — a valued return reached by some uncharged path — is a
violation at that return's line.  Methods exempt in
``cycles.CHARGE_FREE``, listed in :data:`FLOW_CHARGE_FREE`, named
``*_cycles``, underscore-private, or decorated as
property/static/classmethod are skipped, matching the syntactic rule's
scope.  Suppress a sanctioned site with ``# verify-ok: flow-charge`` on
the return line.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Set

from repro.verify.lint import LintViolation
from repro.verify.rules.cycles import CHARGE_FREE, _is_property

from repro.verify.flow.cfg import CFG, ENTRY, EXIT, call_name, effect_calls
from repro.verify.flow.engine import fixpoint, solve_forward

#: modname -> class names whose public methods the path analysis covers.
FLOW_CHARGE_TARGETS: Dict[str, Set[str]] = {
    "repro.xpc.engine": {"XPCEngine"},
    "repro.hw.cpu": {"Core"},
    "repro.aio.ring": {"XPCRing"},
}

#: class -> methods exempt from the *flow* rule only: pure observers the
#: syntactic rule never covered (XPCRing grew out of repro.aio after
#: cycles.py was written; its read-side surface is free by design).
FLOW_CHARGE_FREE: Dict[str, FrozenSet[str]] = {
    "XPCRing": frozenset({
        "peek_indices", "peek_cqes", "read_meta", "read_reply_meta",
        "read_bytes", "payload_window", "space", "outstanding",
        "next_seq", "attach",
    }),
}


def _is_none_return(stmt: ast.Return) -> bool:
    return stmt.value is None or (
        isinstance(stmt.value, ast.Constant) and stmt.value.value is None)


def _is_cost_return(stmt: ast.Return) -> bool:
    if not isinstance(stmt.value, ast.Call):
        return False
    return call_name(stmt.value).endswith("_cycles")


class ChargeAnalysis:
    """The interprocedural pass; exposed via flow.FlowCharge rule."""

    def __init__(self, program) -> None:
        self.program = program
        self.always_charges = self._summaries()

    # -- interprocedural summaries -------------------------------------
    def _summaries(self) -> Dict[str, bool]:
        """qualname -> "every ENTRY→EXIT path charges".

        Greatest fixpoint: start optimistic (everything charges) and
        iterate downward, so mutual recursion converges soundly.
        """
        funcs = self.program.callgraph.functions
        values = {f.qualname: True for f in funcs}

        def step(cur: Dict[str, bool]) -> Dict[str, bool]:
            nxt = {}
            for func in funcs:
                nxt[func.qualname] = self._always_charges(func, cur)
            return nxt

        return fixpoint(values, step)

    def _node_charges(self, node, summaries: Dict[str, bool]) -> bool:
        for call in effect_calls(node):
            name = call_name(call)
            if name == "tick":
                return True
            cands = self.program.callgraph.candidates_named(name)
            if cands and all(summaries.get(c.qualname, False)
                             for c in cands):
                return True
        return False

    def _charged_in_facts(self, cfg: CFG,
                          summaries: Dict[str, bool]) -> Dict[int, bool]:
        def transfer(node: int, fact: bool) -> bool:
            return fact or self._node_charges(cfg.nodes[node], summaries)

        return solve_forward(cfg, entry_fact=False, bottom=True,
                             join=lambda a, b: a and b, transfer=transfer)

    def _always_charges(self, func, summaries: Dict[str, bool]) -> bool:
        cfg = self.program.cfg_of(func)
        facts = self._charged_in_facts(cfg, summaries)
        if EXIT not in cfg.pred or not cfg.pred[EXIT]:
            return False
        return all(facts[p] or self._node_charges(cfg.nodes[p], summaries)
                   for p in cfg.pred[EXIT])

    # -- the reported check --------------------------------------------
    def check(self, rule) -> Iterator[LintViolation]:
        for func in self.program.callgraph.functions:
            targets = FLOW_CHARGE_TARGETS.get(func.module.modname)
            if not targets or func.cls not in targets:
                continue
            if func.name.startswith("_") or func.name.endswith("_cycles"):
                continue
            if func.name in CHARGE_FREE.get(func.module.modname,
                                            {}).get(func.cls, frozenset()):
                continue
            if func.name in FLOW_CHARGE_FREE.get(func.cls, frozenset()):
                continue
            if _is_property(func.node):
                continue
            cfg = self.program.cfg_of(func)
            facts = self._charged_in_facts(cfg, self.always_charges)
            reach = cfg.reachable_from(ENTRY)
            for node in cfg.statements():
                stmt = node.stmt
                if not isinstance(stmt, ast.Return):
                    continue
                if _is_none_return(stmt) or _is_cost_return(stmt):
                    continue
                if facts[node.id] or self._node_charges(
                        node, self.always_charges):
                    continue
                if node.id not in reach:
                    continue
                v = rule.violation(
                    func.module, stmt.lineno,
                    f"{func.cls}.{func.name} has a path that reaches this "
                    f"return without charging cycles (no tick() and no "
                    f"always-charging callee on the path) — the "
                    f"early-return-skips-the-charge bug class; charge "
                    f"before returning or declare the exit free")
                if v:
                    yield v
