"""repro.verify.flow — interprocedural dataflow verification.

The third leg of the verification stool: :mod:`repro.verify.lint` sees
one file at a time, :mod:`repro.verify.model` sees one small concrete
state space; this package sees *paths* — per-function CFGs with
exception edges (:mod:`~repro.verify.flow.cfg`), a whole-``repro`` call
graph (:mod:`~repro.verify.flow.callgraph`), and a small fixpoint
engine (:mod:`~repro.verify.flow.engine`) — and proves three flow
properties of the paper's design:

* **flow-charge** (:mod:`~repro.verify.flow.charge`) — every path
  through a public ``XPCEngine``/``Core``/``XPCRing`` method charges
  cycles or exits free (catches early-return-skips-the-charge);
* **flow-escape** (:mod:`~repro.verify.flow.escape`) — relay-seg and
  capability handles never escape the trusted layers into
  ``services``/``apps`` except via the sanctioned install/grant surface;
* **flow-except** (:mod:`~repro.verify.flow.exc`) — typed XPC errors
  are never swallowed by a broad ``except`` on a path that then mutates
  protocol state.

Findings are ordinary :class:`~repro.verify.lint.LintViolation` records
(pragma-suppressible, SARIF-exportable); ``run_flow(modules)`` is wired
into ``python -m repro.verify`` via ``run_verify``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.verify.lint import (
    LintViolation, ModuleInfo, Rule, collect_modules,
)

from repro.verify.flow.cfg import CFG, build_cfg
from repro.verify.flow.callgraph import CallGraph, FuncDef


class ProgramModel:
    """The analyzed program: modules + call graph + cached CFGs."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules = list(modules)
        self._callgraph: Optional[CallGraph] = None
        self._cfgs: Dict[int, CFG] = {}

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.modules)
        return self._callgraph

    def cfg_of(self, func: FuncDef) -> CFG:
        key = id(func.node)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(func.node)
        return self._cfgs[key]


class FlowRule(Rule):
    """A whole-program analysis with the Rule reporting surface.

    Unlike a lint rule it cannot check one module in isolation;
    ``analyze(program)`` replaces ``check(module)``.  The inherited
    :meth:`Rule.violation` helper keeps pragma suppression (and stale
    tracking) identical to the syntactic rules.
    """

    analysis_cls = None

    def check(self, module):        # pragma: no cover - wrong entry point
        raise TypeError(f"{self.name} is a whole-program analysis; "
                        f"use analyze(ProgramModel)")

    def analyze(self, program: ProgramModel) -> List[LintViolation]:
        return list(self.analysis_cls(program).check(self))


class FlowChargeRule(FlowRule):
    name = "flow-charge"
    description = ("every path through a public XPCEngine/Core/XPCRing "
                   "method must charge cycles or exit free")

    @property
    def analysis_cls(self):
        from repro.verify.flow.charge import ChargeAnalysis
        return ChargeAnalysis


class FlowEscapeRule(FlowRule):
    name = "flow-escape"
    description = ("relay-seg/capability handles must not escape the "
                   "trusted layers into services/apps")

    @property
    def analysis_cls(self):
        from repro.verify.flow.escape import EscapeAnalysis
        return EscapeAnalysis


class FlowExceptRule(FlowRule):
    name = "flow-except"
    description = ("typed XPC errors must not be swallowed by a broad "
                   "except on a path that mutates protocol state")

    @property
    def analysis_cls(self):
        from repro.verify.flow.exc import ExceptAnalysis
        return ExceptAnalysis


def default_flow_rules() -> List[FlowRule]:
    """One fresh instance of every flow analysis."""
    return [FlowChargeRule(), FlowEscapeRule(), FlowExceptRule()]


#: The flow-rule classes, for introspection / selective runs.
FLOW_RULES = (FlowChargeRule, FlowEscapeRule, FlowExceptRule)


def run_flow(modules: Optional[Iterable[ModuleInfo]] = None,
             rules: Optional[Sequence[FlowRule]] = None
             ) -> List[LintViolation]:
    """Run the dataflow analyses over *modules* (default: the tree)."""
    if modules is None:
        modules = collect_modules()
    program = ProgramModel(modules)
    if rules is None:
        rules = default_flow_rules()
    violations: List[LintViolation] = []
    for rule in rules:
        violations.extend(rule.analyze(program))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def flow_source(source: str, modname: str = "repro.fixture",
                rules: Optional[Sequence[FlowRule]] = None,
                path: str = "<string>",
                extra_modules: Optional[Iterable[ModuleInfo]] = None
                ) -> List[LintViolation]:
    """Analyze a source string as module *modname* (test hook).

    *extra_modules* joins the program model, so interprocedural facts
    (summaries across files) are testable from strings alone.
    """
    from repro.verify.lint import parse_module
    modules = [parse_module(source, path, modname)]
    if extra_modules:
        modules.extend(extra_modules)
    return run_flow(modules, rules)


__all__ = [
    "CFG", "CallGraph", "FLOW_RULES", "FlowChargeRule", "FlowEscapeRule",
    "FlowExceptRule", "FlowRule", "FuncDef", "ProgramModel", "build_cfg",
    "default_flow_rules", "flow_source", "run_flow",
]
