"""Live-world recovery invariants for chaos testing.

The model checker (:mod:`repro.verify.model`) proves the protocol
invariants over a *bounded* synthetic world.  The chaos suite needs the
same assertions over the *running* simulation — after every injected
fault and every recovery the full-stack workloads must still satisfy
the paper's security argument.  These checkers walk the real kernel's
processes, threads, and segments and return
:class:`~repro.verify.invariants.InvariantViolation` records
(empty list = healthy).

* :func:`check_recovery_invariants` — global state predicates:
  single-owner relay-segs (§3.3/§6.1), revoked segments unmapped
  (§4.4), dead processes' x-entries invalidated (§4.2), link stacks
  within their SRAM bound (§4.1).
* :func:`check_quiescent` — between top-level operations a client
  thread must be fully unwound: link stack empty and its home
  capability state restored (the LIFO property observed end-to-end).
"""

from __future__ import annotations

from typing import List

from repro.verify.invariants import InvariantViolation


def check_recovery_invariants(kernel) -> List[InvariantViolation]:
    """Global predicates over the live kernel world."""
    violations: List[InvariantViolation] = []
    threads = kernel.threads

    # -- single-owner: at most one live thread windows a segment, and
    #    the segment's recorded active_owner agrees (§3.3/§6.1).
    windowed = {}
    for thread in threads:
        window = thread.xpc.seg_reg
        if window.valid:
            windowed.setdefault(window.segment, []).append(thread)
    for seg, holders in windowed.items():
        if len(holders) > 1:
            violations.append(InvariantViolation(
                "single-owner",
                f"segment {seg.seg_id} is the seg-reg window of "
                f"{len(holders)} threads"))
        elif seg.active_owner not in (None, holders[0]):
            violations.append(InvariantViolation(
                "single-owner",
                f"segment {seg.seg_id} windowed by {holders[0]} but "
                f"active_owner is {seg.active_owner}"))

    # -- revoked-unmapped: a revoked segment translates nowhere (§4.4).
    for seg in kernel.relay_segments:
        if not seg.revoked:
            continue
        for thread in threads:
            window = thread.xpc.seg_reg
            if window.valid and window.segment is seg:
                violations.append(InvariantViolation(
                    "revoked-unmapped",
                    f"revoked segment {seg.seg_id} still windowed by "
                    f"{thread}"))
        for process in kernel.processes:
            for slot, window in process.seg_list.segments():
                if window.segment is seg:
                    violations.append(InvariantViolation(
                        "revoked-unmapped",
                        f"revoked segment {seg.seg_id} still parked in "
                        f"{process} seg-list slot {slot}"))

    # -- dead-entries-invalid: a dead process serves no x-entries (§4.2).
    table = kernel.machine.xentry_table
    if table is not None:
        for process in kernel.processes:
            if process.alive:
                continue
            for entry_id in process.xentries:
                entry = table.peek(entry_id)
                if entry is not None and entry.valid:
                    violations.append(InvariantViolation(
                        "dead-entries-invalid",
                        f"x-entry {entry_id} of dead {process} is "
                        f"still valid"))

    # -- link-stack bound: SRAM occupancy never exceeds capacity (§4.1).
    for thread in threads:
        stack = thread.xpc.link_stack
        if stack.live_depth > stack.capacity:
            violations.append(InvariantViolation(
                "link-stack-bound",
                f"{thread} link stack holds {stack.live_depth} SRAM "
                f"records over capacity {stack.capacity}"))

    return violations


def check_quiescent(kernel, thread) -> List[InvariantViolation]:
    """Between top-level calls *thread* must be fully unwound (LIFO
    restore observed end-to-end)."""
    violations: List[InvariantViolation] = []
    stack = thread.xpc.link_stack
    if stack.depth != 0:
        violations.append(InvariantViolation(
            "link-stack-lifo",
            f"{thread} link stack depth {stack.depth} != 0 between "
            f"top-level calls"))
    if thread.xpc.cap_bitmap is not thread.home_caps:
        violations.append(InvariantViolation(
            "link-stack-lifo",
            f"{thread} capability state not restored to its home "
            f"bitmap between top-level calls"))
    return violations
