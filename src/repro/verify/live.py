"""Live-world recovery invariants for chaos testing.

The model checker (:mod:`repro.verify.model`) proves the protocol
invariants over a *bounded* synthetic world.  The chaos suite needs the
same assertions over the *running* simulation — after every injected
fault and every recovery the full-stack workloads must still satisfy
the paper's security argument.  These checkers walk the real kernel's
processes, threads, and segments and return
:class:`~repro.verify.invariants.InvariantViolation` records
(empty list = healthy).

* :func:`check_recovery_invariants` — global state predicates:
  single-owner relay-segs (§3.3/§6.1), revoked segments unmapped
  (§4.4), dead processes' x-entries invalidated (§4.2), link stacks
  within their SRAM bound (§4.1).
* :func:`check_quiescent` — between top-level operations a client
  thread must be fully unwound: link stack empty and its home
  capability state restored (the LIFO property observed end-to-end).
"""

from __future__ import annotations

from typing import List

from repro.verify.invariants import InvariantViolation


def check_recovery_invariants(kernel) -> List[InvariantViolation]:
    """Global predicates over the live kernel world."""
    violations: List[InvariantViolation] = []
    threads = kernel.threads

    # -- single-owner: at most one live thread windows a segment, and
    #    the segment's recorded active_owner agrees (§3.3/§6.1).
    windowed = {}
    for thread in threads:
        window = thread.xpc.seg_reg
        if window.valid:
            windowed.setdefault(window.segment, []).append(thread)
    for seg, holders in windowed.items():
        if len(holders) > 1:
            violations.append(InvariantViolation(
                "single-owner",
                f"segment {seg.seg_id} is the seg-reg window of "
                f"{len(holders)} threads"))
        elif seg.active_owner not in (None, holders[0]):
            violations.append(InvariantViolation(
                "single-owner",
                f"segment {seg.seg_id} windowed by {holders[0]} but "
                f"active_owner is {seg.active_owner}"))

    # -- revoked-unmapped: a revoked segment translates nowhere (§4.4).
    for seg in kernel.relay_segments:
        if not seg.revoked:
            continue
        for thread in threads:
            window = thread.xpc.seg_reg
            if window.valid and window.segment is seg:
                violations.append(InvariantViolation(
                    "revoked-unmapped",
                    f"revoked segment {seg.seg_id} still windowed by "
                    f"{thread}"))
        for process in kernel.processes:
            for slot, window in process.seg_list.segments():
                if window.segment is seg:
                    violations.append(InvariantViolation(
                        "revoked-unmapped",
                        f"revoked segment {seg.seg_id} still parked in "
                        f"{process} seg-list slot {slot}"))

    # -- dead-entries-invalid: a dead process serves no x-entries (§4.2).
    table = kernel.machine.xentry_table
    if table is not None:
        for process in kernel.processes:
            if process.alive:
                continue
            for entry_id in process.xentries:
                entry = table.peek(entry_id)
                if entry is not None and entry.valid:
                    violations.append(InvariantViolation(
                        "dead-entries-invalid",
                        f"x-entry {entry_id} of dead {process} is "
                        f"still valid"))

    # -- link-stack bound: SRAM occupancy never exceeds capacity (§4.1).
    for thread in threads:
        stack = thread.xpc.link_stack
        if stack.live_depth > stack.capacity:
            violations.append(InvariantViolation(
                "link-stack-bound",
                f"{thread} link stack holds {stack.live_depth} SRAM "
                f"records over capacity {stack.capacity}"))

    return violations


def check_ring_invariants(ring, kernel=None) -> List[InvariantViolation]:
    """Memory-resident invariants of one aio submission/completion ring.

    *ring* is duck-typed (anything with the
    :class:`repro.aio.ring.XPCRing` peek surface) so this layer does not
    import :mod:`repro.aio`.  All reads are uncharged — checking never
    moves the simulated clock.

    * head ≤ tail for both queues, and neither queue holds more than
      ``entries`` records (monotonic indices make both checkable
      straight from the header bytes);
    * no CQE without a matching SQE: every unharvested completion's
      sequence number was allocated (< ``next_seq``), was consumed by
      the worker (< ``sq_head``), and appears at most once;
    * single owner: the backing relay segment obeys §3.3 — at most one
      live thread windows it, and ``active_owner`` agrees (checked when
      *kernel* is given).
    """
    violations: List[InvariantViolation] = []
    idx = ring.peek_indices()

    for side in ("sq", "cq"):
        head, tail = idx[f"{side}_head"], idx[f"{side}_tail"]
        if head > tail:
            violations.append(InvariantViolation(
                "ring-head-le-tail",
                f"{ring.name}: {side}_head {head} > {side}_tail {tail}"))
        if tail - head > ring.entries:
            violations.append(InvariantViolation(
                "ring-bounded",
                f"{ring.name}: {side} holds {tail - head} records, "
                f"capacity {ring.entries}"))

    seen = set()
    for cqe in ring.peek_cqes():
        if cqe.seq >= idx["next_seq"]:
            violations.append(InvariantViolation(
                "cqe-matches-sqe",
                f"{ring.name}: CQE seq {cqe.seq} was never submitted "
                f"(next_seq {idx['next_seq']})"))
        elif cqe.seq >= idx["sq_head"]:
            violations.append(InvariantViolation(
                "cqe-matches-sqe",
                f"{ring.name}: CQE seq {cqe.seq} completed before its "
                f"SQE was consumed (sq_head {idx['sq_head']})"))
        if cqe.seq in seen:
            violations.append(InvariantViolation(
                "cqe-matches-sqe",
                f"{ring.name}: duplicate CQE for seq {cqe.seq}"))
        seen.add(cqe.seq)

    seg = getattr(ring, "segment", None)
    if seg is not None and kernel is not None:
        holders = [t for t in kernel.threads
                   if t.xpc.seg_reg.valid and t.xpc.seg_reg.segment is seg]
        if len(holders) > 1:
            violations.append(InvariantViolation(
                "single-owner",
                f"{ring.name}: ring segment {seg.seg_id} windowed by "
                f"{len(holders)} threads"))
        elif holders and seg.active_owner not in (None, holders[0]):
            violations.append(InvariantViolation(
                "single-owner",
                f"{ring.name}: ring segment {seg.seg_id} windowed by "
                f"{holders[0]} but active_owner is {seg.active_owner}"))

    return violations


def check_cluster_invariants(cluster) -> List[InvariantViolation]:
    """Fabric-level predicates over a live multi-node cluster.

    *cluster* is duck-typed (anything with the
    :class:`repro.cluster.fabric.Cluster` read surface) so this layer
    does not import :mod:`repro.cluster`.  All reads are uncharged.

    * ring-membership: the shard ring contains exactly the live nodes —
      a dead node still owning shards would black-hole its keys, a live
      node missing from the ring serves nothing;
    * resolvable-names: every published name resolves on each live node
      claimed to serve it (directory and node-local nameserver agree);
    * clock-sanity: every node's clock is non-negative, and no node ran
      past the cluster wall clock (``wall = max(node.now)``);
    * worker-bounds: each pool's active worker count stays within
      ``[1, provisioned]`` — autoscaling must never park a pool at zero
      or invent cores;
    * partition-symmetry: severed links are unordered pairs of known
      nodes (no half-open cuts to nodes the fabric never met).
    """
    violations: List[InvariantViolation] = []
    naming = cluster.naming
    live_ids = {node.node_id for node in cluster.nodes.values()
                if node.alive}
    ring_ids = set(naming.ring.nodes())

    for node_id in ring_ids - live_ids:
        violations.append(InvariantViolation(
            "cluster-ring-membership",
            f"node {node_id} owns shards on the ring but is not a "
            f"live node"))
    for node_id in live_ids - ring_ids:
        violations.append(InvariantViolation(
            "cluster-ring-membership",
            f"live node {node_id} is missing from the shard ring"))

    for name in naming.names():
        for node_id in sorted(naming._names.get(name, ())):
            node = naming.nodes.get(node_id)
            if node is None or not node.alive:
                violations.append(InvariantViolation(
                    "cluster-resolvable-names",
                    f"{name!r} claims dead/unknown node {node_id} as "
                    f"a server"))
                continue
            if not node.serves(name):
                violations.append(InvariantViolation(
                    "cluster-resolvable-names",
                    f"{name!r} lists {node.name} but its local "
                    f"nameserver has no such binding"))

    wall = cluster.wall_cycles
    for node in cluster.nodes.values():
        if node.now < 0:
            violations.append(InvariantViolation(
                "cluster-clock-sanity",
                f"{node.name} clock is negative ({node.now})"))
        if node.alive and node.now > wall:
            violations.append(InvariantViolation(
                "cluster-clock-sanity",
                f"{node.name} at cycle {node.now} is past the cluster "
                f"wall clock {wall}"))
        for pool in getattr(node, "live_pools", node.pools):
            if not 1 <= pool.active_workers <= len(pool.workers):
                violations.append(InvariantViolation(
                    "cluster-worker-bounds",
                    f"{pool.name}: active_workers "
                    f"{pool.active_workers} outside "
                    f"[1, {len(pool.workers)}]"))

    known_ids = set(cluster.nodes)
    for pair in cluster.link.partitions:
        if len(set(pair)) != 2 or not set(pair) <= known_ids:
            violations.append(InvariantViolation(
                "cluster-partition-symmetry",
                f"partition {pair} does not join two known nodes"))

    return violations


def check_quiescent(kernel, thread) -> List[InvariantViolation]:
    """Between top-level calls *thread* must be fully unwound (LIFO
    restore observed end-to-end)."""
    violations: List[InvariantViolation] = []
    stack = thread.xpc.link_stack
    if stack.depth != 0:
        violations.append(InvariantViolation(
            "link-stack-lifo",
            f"{thread} link stack depth {stack.depth} != 0 between "
            f"top-level calls"))
    if thread.xpc.cap_bitmap is not thread.home_caps:
        violations.append(InvariantViolation(
            "link-stack-lifo",
            f"{thread} capability state not restored to its home "
            f"bitmap between top-level calls"))
    return violations
