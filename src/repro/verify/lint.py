"""The custom AST lint pass: framework, module loading, and the driver.

Rules are small classes (:class:`Rule`) that walk a parsed module
(:class:`ModuleInfo`) and yield :class:`LintViolation` records.  The
framework handles file discovery, module-name resolution, pragma
suppressions, and formatting; the repo-specific rules live in
:mod:`repro.verify.rules`.

Suppression pragma: a ``# verify-ok: <rule>[, <rule>...]`` comment on the
offending line (the line of the statement's first token) suppresses the
named rules at that site only.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

_PRAGMA_RE = re.compile(r"#\s*verify-ok:\s*([a-z0-9_,\s-]+)")


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at one source location."""

    rule: str
    path: str           # repo-relative or synthetic ("<string>") path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus everything a rule needs to inspect it."""

    path: str
    modname: str                    # dotted name, e.g. "repro.hw.machine"
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: (line, rule) pairs whose pragma actually suppressed a violation;
    #: filled in by Rule.violation, read by the stale-pragma pass.
    used_suppressions: Set = field(default_factory=set)
    _type_checking_lines: Optional[Set[int]] = field(
        default=None, repr=False, compare=False)

    @property
    def unit(self) -> str:
        """The top-level unit under ``repro`` ("hw", "xpc", ...).

        Top-level modules (``repro/__init__.py``, ``repro/params.py``)
        map to their own stem; the bare package maps to "".
        """
        parts = self.modname.split(".")
        if len(parts) < 2:
            return ""
        return parts[1]

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, set())

    @property
    def type_checking_lines(self) -> Set[int]:
        """Line numbers guarded by ``if TYPE_CHECKING:`` (cached).

        Computed in one walk of the tree, so per-node queries via
        :meth:`in_type_checking` are O(1) instead of re-walking the
        whole module per query.
        """
        if self._type_checking_lines is None:
            self._type_checking_lines = _collect_type_checking_lines(
                self.tree)
        return self._type_checking_lines

    def in_type_checking(self, node: ast.AST) -> bool:
        """True if *node* sits under an ``if TYPE_CHECKING:`` guard."""
        lineno = getattr(node, "lineno", None)
        return lineno is not None and lineno in self.type_checking_lines


class Rule:
    """Base class for lint rules."""

    name: str = "rule"
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        raise NotImplementedError

    # Helper for subclasses: emit unless pragma-suppressed.
    def violation(self, module: ModuleInfo, line: int,
                  message: str) -> Optional[LintViolation]:
        if module.suppressed(line, self.name):
            module.used_suppressions.add((line, self.name))
            return None
        return LintViolation(self.name, module.path, line, message)


def _scan_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names named in a ``verify-ok`` pragma.

    Scans COMMENT tokens only (via :mod:`tokenize`), so a pragma quoted
    inside a docstring or string literal neither suppresses anything nor
    shows up as stale.  Falls back to a line-regex scan if the source
    does not tokenize (the AST parse will surface the real error).
    """
    out: Dict[int, Set[str]] = {}

    def record(lineno: int, text: str) -> None:
        match = _PRAGMA_RE.search(text)
        if match:
            names = {n.strip() for n in match.group(1).split(",")}
            out[lineno] = {n for n in names if n}

    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            record(lineno, line)
        return out
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            record(tok.start[0], tok.string)
    return out


def parse_module(source: str, path: str, modname: str) -> ModuleInfo:
    tree = ast.parse(source, filename=path)
    return ModuleInfo(path=path, modname=modname, source=source, tree=tree,
                      suppressions=_scan_pragmas(source))


def module_name_for(path: Path, src_root: Path) -> str:
    """``src/repro/hw/machine.py`` → ``repro.hw.machine``.

    Files outside the source root (scratch fixtures handed to the CLI)
    get a synthetic top-level name so package-scoped rules stay quiet
    and path-agnostic rules still run.
    """
    try:
        rel = path.resolve().relative_to(src_root.resolve())
    except ValueError:
        return path.stem
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def find_src_root(start: Optional[Path] = None) -> Path:
    """Locate the ``src`` directory that holds the ``repro`` package."""
    candidates = []
    if start is not None:
        candidates.append(Path(start))
    here = Path(__file__).resolve()
    candidates.append(here.parents[2])          # .../src
    for cand in candidates:
        if (cand / "repro" / "__init__.py").exists():
            return cand
    raise FileNotFoundError("cannot locate the src/ root of the repo")


def collect_modules(src_root: Optional[Path] = None,
                    package: str = "repro") -> List[ModuleInfo]:
    """Parse every ``.py`` file of *package* under *src_root*."""
    root = find_src_root(src_root)
    out: List[ModuleInfo] = []
    for path in sorted((root / package).rglob("*.py")):
        source = path.read_text()
        modname = module_name_for(path, root)
        try:
            rel = str(path.relative_to(root.parent))
        except ValueError:
            rel = str(path)
        out.append(parse_module(source, rel, modname))
    return out


def lint_modules(modules: Iterable[ModuleInfo],
                 rules: Optional[Sequence[Rule]] = None
                 ) -> List[LintViolation]:
    if rules is None:
        from repro.verify.rules import default_rules
        rules = default_rules()
    violations: List[LintViolation] = []
    for module in modules:
        for rule in rules:
            violations.extend(rule.check(module))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def run_lint(src_root: Optional[Path] = None,
             rules: Optional[Sequence[Rule]] = None,
             package: str = "repro") -> List[LintViolation]:
    """Lint the whole source tree; the entry point pytest and CI use."""
    return lint_modules(collect_modules(src_root, package), rules)


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence[Rule]] = None) -> List[LintViolation]:
    """Lint an explicit list of files (CLI convenience)."""
    root = find_src_root()
    modules = []
    for path in paths:
        path = Path(path)
        modules.append(parse_module(path.read_text(), str(path),
                                    module_name_for(path, root)))
    return lint_modules(modules, rules)


def lint_source(source: str, modname: str = "repro.fixture",
                rules: Optional[Sequence[Rule]] = None,
                path: str = "<string>") -> List[LintViolation]:
    """Lint a source string as if it were module *modname* (test hook)."""
    return lint_modules([parse_module(source, path, modname)], rules)


def format_violations(violations: Sequence[LintViolation]) -> str:
    if not violations:
        return "repro.verify: all lint rules pass"
    lines = [str(v) for v in violations]
    lines.append(f"repro.verify: {len(violations)} violation(s)")
    return "\n".join(lines)


def _collect_type_checking_lines(tree: ast.Module) -> Set[int]:
    """Every line covered by the body of an ``if TYPE_CHECKING:`` guard.

    One walk over the module; handles both the plain ``TYPE_CHECKING``
    name and attribute guards like ``typing.TYPE_CHECKING``, including
    nested guards.
    """
    lines: Set[int] = set()
    for guard in ast.walk(tree):
        if not isinstance(guard, ast.If):
            continue
        test = guard.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") \
            or (isinstance(test, ast.Attribute)
                and test.attr == "TYPE_CHECKING")
        if not is_tc or not guard.body:
            continue
        start = guard.body[0].lineno
        end = max(getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
                  for stmt in guard.body)
        lines.update(range(start, end + 1))
    return lines


def in_type_checking_block(tree: ast.Module, node: ast.AST) -> bool:
    """True if *node* sits under an ``if TYPE_CHECKING:`` guard.

    Compatibility shim over :meth:`ModuleInfo.in_type_checking`; rules
    holding a :class:`ModuleInfo` should prefer the cached method.
    """
    lineno = getattr(node, "lineno", None)
    return (lineno is not None
            and lineno in _collect_type_checking_lines(tree))


def run_verify(src_root: Optional[Path] = None,
               package: str = "repro",
               with_flow: bool = True) -> List[LintViolation]:
    """The full static pass CI runs: lint + dataflow + stale pragmas.

    Runs the per-module lint rules, then the interprocedural analyses of
    :mod:`repro.verify.flow`, and finally :mod:`repro.verify.stale` over
    the same modules so any pragma that suppressed nothing in either
    pass (or names an unknown rule) is itself reported.
    """
    # Imported here: flow and stale build on this module.
    from repro.verify.flow import run_flow
    from repro.verify.rules import default_rules
    from repro.verify.stale import check_stale_pragmas, known_rule_names

    modules = collect_modules(src_root, package)
    violations = lint_modules(modules, default_rules())
    if with_flow:
        violations.extend(run_flow(modules))
    violations.extend(
        check_stale_pragmas(modules, known_rule_names(with_flow=with_flow)))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations
