"""The custom AST lint pass: framework, module loading, and the driver.

Rules are small classes (:class:`Rule`) that walk a parsed module
(:class:`ModuleInfo`) and yield :class:`LintViolation` records.  The
framework handles file discovery, module-name resolution, pragma
suppressions, and formatting; the repo-specific rules live in
:mod:`repro.verify.rules`.

Suppression pragma: a ``# verify-ok: <rule>[, <rule>...]`` comment on the
offending line (the line of the statement's first token) suppresses the
named rules at that site only.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

_PRAGMA_RE = re.compile(r"#\s*verify-ok:\s*([a-z0-9_,\s-]+)")


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at one source location."""

    rule: str
    path: str           # repo-relative or synthetic ("<string>") path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus everything a rule needs to inspect it."""

    path: str
    modname: str                    # dotted name, e.g. "repro.hw.machine"
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def unit(self) -> str:
        """The top-level unit under ``repro`` ("hw", "xpc", ...).

        Top-level modules (``repro/__init__.py``, ``repro/params.py``)
        map to their own stem; the bare package maps to "".
        """
        parts = self.modname.split(".")
        if len(parts) < 2:
            return ""
        return parts[1]

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, set())


class Rule:
    """Base class for lint rules."""

    name: str = "rule"
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        raise NotImplementedError

    # Helper for subclasses: emit unless pragma-suppressed.
    def violation(self, module: ModuleInfo, line: int,
                  message: str) -> Optional[LintViolation]:
        if module.suppressed(line, self.name):
            return None
        return LintViolation(self.name, module.path, line, message)


def _scan_pragmas(source: str) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            names = {n.strip() for n in match.group(1).split(",")}
            out[lineno] = {n for n in names if n}
    return out


def parse_module(source: str, path: str, modname: str) -> ModuleInfo:
    tree = ast.parse(source, filename=path)
    return ModuleInfo(path=path, modname=modname, source=source, tree=tree,
                      suppressions=_scan_pragmas(source))


def module_name_for(path: Path, src_root: Path) -> str:
    """``src/repro/hw/machine.py`` → ``repro.hw.machine``.

    Files outside the source root (scratch fixtures handed to the CLI)
    get a synthetic top-level name so package-scoped rules stay quiet
    and path-agnostic rules still run.
    """
    try:
        rel = path.resolve().relative_to(src_root.resolve())
    except ValueError:
        return path.stem
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def find_src_root(start: Optional[Path] = None) -> Path:
    """Locate the ``src`` directory that holds the ``repro`` package."""
    candidates = []
    if start is not None:
        candidates.append(Path(start))
    here = Path(__file__).resolve()
    candidates.append(here.parents[2])          # .../src
    for cand in candidates:
        if (cand / "repro" / "__init__.py").exists():
            return cand
    raise FileNotFoundError("cannot locate the src/ root of the repo")


def collect_modules(src_root: Optional[Path] = None,
                    package: str = "repro") -> List[ModuleInfo]:
    """Parse every ``.py`` file of *package* under *src_root*."""
    root = find_src_root(src_root)
    out: List[ModuleInfo] = []
    for path in sorted((root / package).rglob("*.py")):
        source = path.read_text()
        modname = module_name_for(path, root)
        try:
            rel = str(path.relative_to(root.parent))
        except ValueError:
            rel = str(path)
        out.append(parse_module(source, rel, modname))
    return out


def lint_modules(modules: Iterable[ModuleInfo],
                 rules: Optional[Sequence[Rule]] = None
                 ) -> List[LintViolation]:
    if rules is None:
        from repro.verify.rules import default_rules
        rules = default_rules()
    violations: List[LintViolation] = []
    for module in modules:
        for rule in rules:
            violations.extend(rule.check(module))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def run_lint(src_root: Optional[Path] = None,
             rules: Optional[Sequence[Rule]] = None,
             package: str = "repro") -> List[LintViolation]:
    """Lint the whole source tree; the entry point pytest and CI use."""
    return lint_modules(collect_modules(src_root, package), rules)


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence[Rule]] = None) -> List[LintViolation]:
    """Lint an explicit list of files (CLI convenience)."""
    root = find_src_root()
    modules = []
    for path in paths:
        path = Path(path)
        modules.append(parse_module(path.read_text(), str(path),
                                    module_name_for(path, root)))
    return lint_modules(modules, rules)


def lint_source(source: str, modname: str = "repro.fixture",
                rules: Optional[Sequence[Rule]] = None,
                path: str = "<string>") -> List[LintViolation]:
    """Lint a source string as if it were module *modname* (test hook)."""
    return lint_modules([parse_module(source, path, modname)], rules)


def format_violations(violations: Sequence[LintViolation]) -> str:
    if not violations:
        return "repro.verify: all lint rules pass"
    lines = [str(v) for v in violations]
    lines.append(f"repro.verify: {len(violations)} violation(s)")
    return "\n".join(lines)


def in_type_checking_block(tree: ast.Module, node: ast.AST) -> bool:
    """True if *node* sits under an ``if TYPE_CHECKING:`` guard."""
    for guard in ast.walk(tree):
        if not isinstance(guard, ast.If):
            continue
        test = guard.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") \
            or (isinstance(test, ast.Attribute)
                and test.attr == "TYPE_CHECKING")
        if is_tc and any(node is child for body_node in guard.body
                         for child in ast.walk(body_node)):
            return True
    return False
