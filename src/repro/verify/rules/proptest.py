"""Proptest-discipline rule: executors may not import the oracle.

The differential harness is only evidence if its two sides are
independent: the oracle is a pure reference model of the protocol's
semantics, and the executors earn the same outcomes through the real
mechanisms.  An executor that imports the oracle (to "reuse" its
dispatch logic, or to consult the expected outcome mid-run) collapses
the diff into a tautology — both sides would share the very code under
test.

Inside ``repro.proptest`` this rule forbids the mechanism-side modules
(``executors`` and the generator, which must steer by grammar weights
alone) from importing ``repro.proptest.oracle`` — absolutely *or*
relatively (the layering rule skips relative imports, so this rule
handles both forms itself).  The shared vocabulary lives in
``grammar``; the only module allowed to see both sides is the harness.

``# verify-ok: proptest-discipline`` suppresses a sanctioned site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: Modules of repro.proptest that drive the real mechanisms and must
#: stay blind to the reference model.  ``fastexec`` (the table-driven
#: fast core's executor) is mechanism-side too: its outcomes must be
#: earned from the fastcore tables, never read off the oracle.
MECHANISM_SIDE = frozenset({"executors", "gen", "fastexec"})

#: The reference-model module they may not see.
ORACLE_MODULE = "oracle"


class ProptestDisciplineRule(Rule):
    name = "proptest-discipline"
    description = ("repro.proptest executors/generator may not import "
                   "the oracle — the differential's two sides must stay "
                   "independent")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        parts = module.modname.split(".")
        if module.unit != "proptest" or len(parts) < 3:
            return
        if parts[2] not in MECHANISM_SIDE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if module.in_type_checking(node):
                continue
            if self._imports_oracle(node):
                v = self.violation(
                    module, node.lineno,
                    f"repro.proptest.{parts[2]} imports the oracle — "
                    f"executors must earn outcomes through the real "
                    f"mechanisms, not the reference model")
                if v:
                    yield v

    @staticmethod
    def _imports_oracle(node: ast.AST) -> bool:
        if isinstance(node, ast.Import):
            return any(
                alias.name == f"repro.proptest.{ORACLE_MODULE}"
                or alias.name.startswith(
                    f"repro.proptest.{ORACLE_MODULE}.")
                for alias in node.names)
        target = node.module or ""
        if node.level:                       # relative: from . / .oracle
            return (target == ORACLE_MODULE
                    or target.startswith(f"{ORACLE_MODULE}.")
                    or (target == "" and any(
                        alias.name == ORACLE_MODULE
                        for alias in node.names)))
        if target == f"repro.proptest.{ORACLE_MODULE}":
            return True
        if target == "repro.proptest":
            return any(alias.name == ORACLE_MODULE
                       for alias in node.names)
        return False
