"""Fastcore-discipline rule: the reference and fast cores stay apart.

The fast core (``repro.fastcore``) is only evidence-grade because it is
*independent* of the engine it re-implements: the proptest equivalence
gate diffs two implementations that share nothing but ``repro.params``.
Two import edges would silently collapse that independence:

* **reference → fastcore**: if the engine, kernel, runtime, transport
  or hw layers imported fastcore (say, to "reuse" a precomputed sum),
  the reference would start charging the very tables under test, and
  the op-by-op cycle diff would become a tautology.
* **fastcore → reference**: if fastcore imported the engine/kernel
  stack, its "flat re-implementation" could delegate to the reference
  and the 10× speedup claim (and the independence) would quietly rot.
  Only ``repro.params`` (the shared calibration constants) is allowed —
  the same set the layering map declares; this rule restates it so a
  layering-map edit cannot widen fastcore's diet unnoticed.

``# verify-ok: fastcore-discipline`` suppresses a sanctioned site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: Reference-side units that may never import repro.fastcore.  The
#: consumers that *may* (proptest's fastexec executor, benchmarks via
#: tests, aio/cluster's opt-in sweep helpers) are simply not listed.
REFERENCE_UNITS = frozenset({
    "hw", "xpc", "kernel", "runtime", "ipc", "sel4", "zircon", "binder",
})

#: The only unit repro.fastcore itself may import.
FASTCORE_ALLOWED = frozenset({"params", "fastcore"})


class FastcoreDisciplineRule(Rule):
    name = "fastcore-discipline"
    description = ("the reference engine stack may not import "
                   "repro.fastcore, and repro.fastcore may import "
                   "nothing but repro.params — the equivalence gate "
                   "diffs independent implementations")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        unit = module.unit
        if unit == "fastcore":
            yield from self._check_fastcore(module)
            return
        if unit not in REFERENCE_UNITS:
            return
        for node, target_unit in _repro_imports(module):
            if target_unit == "fastcore":
                v = self.violation(
                    module, node.lineno,
                    f"repro.{unit} imports repro.fastcore — the "
                    f"reference stack may never depend on the fast "
                    f"core it is diffed against")
                if v:
                    yield v

    def _check_fastcore(self, module: ModuleInfo
                        ) -> Iterator[LintViolation]:
        for node, target_unit in _repro_imports(module):
            if target_unit not in FASTCORE_ALLOWED:
                v = self.violation(
                    module, node.lineno,
                    f"repro.fastcore imports repro.{target_unit} — the "
                    f"fast core may depend on repro.params only, or the "
                    f"reference/fast diff stops being evidence")
                if v:
                    yield v


def _repro_imports(module: ModuleInfo):
    """Yield ``(node, target_unit)`` for every absolute repro import."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1 \
                        and not module.in_type_checking(node):
                    yield node, parts[1]
        elif isinstance(node, ast.ImportFrom) and not node.level:
            parts = (node.module or "").split(".")
            if parts[0] == "repro" and len(parts) > 1 \
                    and not module.in_type_checking(node):
                yield node, parts[1]
