"""Cycle-accounting rule: architectural operations must charge cycles.

The simulator's credibility rests on every architectural operation
charging calibrated cycles (paper Table 1/Table 3).  There is exactly one
charging discipline:

* **charging classes** (``XPCEngine``, ``Core``) model operations that
  consume time: every public method must either call ``tick(...)``
  somewhere in its body, return a ``*_cycles(...)`` cost, or be declared
  *free* (kernel bookkeeping whose cost is charged elsewhere) in
  :data:`CHARGE_FREE` or with a ``# verify-ok: cycle-accounting`` pragma
  on its ``def`` line;
* **passive classes** (``TLB``, ``CacheModel``, the tag arrays) are
  timing *providers*: they must never call ``tick`` themselves, keeping
  all charging centralized in the core (one clock, one charger).

A refactor that adds a public engine/core method and forgets the charge —
the exact bug class the paper's Figure 5 ladder makes tempting — fails
this rule.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: modname -> {class name -> methods that legitimately charge nothing}.
CHARGE_FREE: Dict[str, Dict[str, FrozenSet[str]]] = {
    "repro.xpc.engine": {
        # bind/unbind are context-switch bookkeeping (the kernel charges
        # the switch); seg_translate's latency is charged by
        # Core.translate; introspect is a debug/verification hook.
        "XPCEngine": frozenset({"bind", "unbind", "seg_translate",
                                "introspect"}),
    },
    "repro.hw.cpu": {
        # tick *is* the charging primitive.
        "Core": frozenset({"tick"}),
    },
}

#: modname -> passive class names (must never tick).
PASSIVE: Dict[str, FrozenSet[str]] = {
    "repro.hw.tlb": frozenset({"TLB"}),
    "repro.hw.cache": frozenset({"CacheModel", "_TagArray"}),
}


def _calls_tick(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr == "tick":
                return True
            if isinstance(func, ast.Name) and func.id == "tick":
                return True
    return False


def _returns_cost(node: ast.FunctionDef) -> bool:
    """True if the method returns the result of a ``*_cycles`` call
    (the cost-provider convention) or is itself named ``*_cycles``."""
    if node.name.endswith("_cycles"):
        return True
    for sub in ast.walk(node):
        if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Call):
            func = sub.value.func
            name = func.attr if isinstance(func, ast.Attribute) else \
                func.id if isinstance(func, ast.Name) else ""
            if name.endswith("_cycles"):
                return True
    return False


def _is_property(node: ast.FunctionDef) -> bool:
    for dec in node.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else \
            dec.id if isinstance(dec, ast.Name) else ""
        if name in ("property", "cached_property", "staticmethod",
                    "classmethod"):
            return True
    return False


class CycleAccountingRule(Rule):
    name = "cycle-accounting"
    description = ("public methods of charging classes must tick or "
                   "return a cost; passive timing models never tick")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        charge_map = CHARGE_FREE.get(module.modname, {})
        passive = PASSIVE.get(module.modname, frozenset())
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in charge_map:
                yield from self._check_charging(
                    module, node, charge_map[node.name])
            if node.name in passive:
                yield from self._check_passive(module, node)

    def _check_charging(self, module: ModuleInfo, cls: ast.ClassDef,
                        free: FrozenSet[str]) -> Iterator[LintViolation]:
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name.startswith("_") or item.name in free:
                continue
            if _is_property(item):
                continue
            if _calls_tick(item) or _returns_cost(item):
                continue
            v = self.violation(
                module, item.lineno,
                f"{cls.name}.{item.name} models an architectural "
                f"operation but never charges cycles (no tick() call and "
                f"no *_cycles cost returned); charge it, or declare it "
                f"free in repro.verify.rules.cycles.CHARGE_FREE")
            if v:
                yield v

    def _check_passive(self, module: ModuleInfo,
                       cls: ast.ClassDef) -> Iterator[LintViolation]:
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if _calls_tick(item):
                v = self.violation(
                    module, item.lineno,
                    f"{cls.name}.{item.name} calls tick() but "
                    f"{cls.name} is a passive timing model — all "
                    f"charging goes through the core (single-charger "
                    f"discipline)")
                if v:
                    yield v
