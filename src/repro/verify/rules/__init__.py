"""The repo-specific lint rules enforced over ``src/repro``.

Each module holds one rule; :func:`default_rules` builds the suite the
CLI, pytest, and CI all run.
"""

from repro.verify.rules.layering import LayeringRule
from repro.verify.rules.cluster import ClusterDisciplineRule
from repro.verify.rules.cycles import CycleAccountingRule
from repro.verify.rules.errors import ErrorDisciplineRule
from repro.verify.rules.fastcore import FastcoreDisciplineRule
from repro.verify.rules.obs import ObsDisciplineRule
from repro.verify.rules.aio import AioDisciplineRule
from repro.verify.rules.proptest import ProptestDisciplineRule
from repro.verify.rules.snap import SnapDisciplineRule
from repro.verify.rules.state import StateMutationRule


def default_rules():
    """One fresh instance of every rule in the suite."""
    return [LayeringRule(), CycleAccountingRule(), ErrorDisciplineRule(),
            StateMutationRule(), ObsDisciplineRule(), AioDisciplineRule(),
            ClusterDisciplineRule(), ProptestDisciplineRule(),
            SnapDisciplineRule(), FastcoreDisciplineRule()]


#: The rule classes, for introspection / selective runs.
DEFAULT_RULES = (LayeringRule, CycleAccountingRule, ErrorDisciplineRule,
                 StateMutationRule, ObsDisciplineRule, AioDisciplineRule,
                 ClusterDisciplineRule, ProptestDisciplineRule,
                 SnapDisciplineRule, FastcoreDisciplineRule)

__all__ = ["AioDisciplineRule", "ClusterDisciplineRule",
           "FastcoreDisciplineRule", "LayeringRule",
           "CycleAccountingRule", "ErrorDisciplineRule",
           "ObsDisciplineRule", "ProptestDisciplineRule",
           "SnapDisciplineRule", "StateMutationRule", "default_rules",
           "DEFAULT_RULES"]
