"""Obs-discipline rule: instrumentation goes through the registry.

The observability layer stays trustworthy only if every measurement
flows through its sanctioned surfaces — ``Counter.inc`` /
``Gauge.set`` / ``Histogram.observe`` / ``PMU.add`` — which stamp the
cycle clock and keep snapshot/delta/reset semantics coherent.  Code
that pokes counter state directly (``obs.ACTIVE.registry.counter("x")
.value += 1``, rebinding ``session.pmu.banks``...) silently corrupts
deltas and percentiles without failing any functional test.

Concretely, outside ``repro.obs`` this rule forbids assignments
(plain, augmented, annotated, or tuple-unpacking) whose *target* is an
attribute reached through an obs surface:

* any write through an attribute chain mentioning ``registry``,
  ``pmu``, ``spans``, or ``ACTIVE`` (the session surfaces); or
* any write to a metric-container attribute itself (``counters``,
  ``gauges``, ``histograms``, ``banks``, ``_metrics``, ...).

Local aliases (``registry = obs.ACTIVE.registry``) are reads and stay
legal; only mutation through the alias's attributes is flagged.  The
usual ``# verify-ok: obs-discipline`` pragma suppresses a site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: Attributes exposing metric/counter storage: writable only in repro.obs.
OBS_CONTAINERS = frozenset({
    "counters", "gauges", "histograms", "banks",
    "_metrics", "_core_banks", "_kernel_banks",
})

#: The obs session surfaces instrumentation reaches metrics through.
OBS_SURFACES = frozenset({"registry", "pmu", "spans", "ACTIVE"})


def _assign_targets(node: ast.AST):
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _names_in_chain(expr: ast.AST):
    """Every Name id / Attribute attr along an access chain."""
    out = set()
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.Name):
            out.add(sub.id)
    return out


def _flagged_writes(node: ast.AST):
    """Yield (attr_name, reason) for obs-state writes in *node*."""
    for target in _assign_targets(node):
        stack = [target]
        while stack:
            t = stack.pop()
            if isinstance(t, (ast.Tuple, ast.List)):
                stack.extend(t.elts)
                continue
            if isinstance(t, ast.Subscript):
                t = t.value
            if not isinstance(t, ast.Attribute):
                continue
            if t.attr in OBS_CONTAINERS:
                yield t.attr, "rebinds an obs metric container"
            elif _names_in_chain(t.value) & OBS_SURFACES:
                yield t.attr, "mutates metric state through an obs surface"


class ObsDisciplineRule(Rule):
    name = "obs-discipline"
    description = ("metrics are only mutated through the repro.obs "
                   "registry/PMU API (inc/set/observe/add), never by "
                   "direct attribute writes")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if not module.modname.startswith("repro."):
            return
        if module.unit == "obs":
            return
        for node in ast.walk(module.tree):
            for attr, reason in _flagged_writes(node):
                v = self.violation(
                    module, node.lineno,
                    f"{reason} ({attr!r}) outside repro.obs — report "
                    f"through the registry API (counter().inc / "
                    f"gauge().set / histogram().observe / pmu.add) "
                    f"instead")
                if v:
                    yield v
