"""State-mutation rule: the hardware/kernel split of the XPC registers.

The paper splits XPC state handling into a hardware data plane (the
engine executes ``xcall``/``xret``/``swapseg`` over the per-thread
registers) and a kernel control plane (the kernel installs and repairs
that state on context switch, termination, and segment management —
§4.1/§4.2/§4.4).  Nobody else gets to touch the architectural registers:
a transport or OS-glue layer that pokes ``seg_reg`` or ``active_owner``
directly is forging hardware state, which is exactly how TOCTTOU-style
ownership bugs slip in.

Concretely: assignments (plain, augmented, or tuple-unpacking) to the
attributes in :data:`PROTECTED_ATTRS` on any object other than ``self``
are allowed only in ``repro/xpc/engine.py`` and under ``repro/kernel/``.
Everything else must go through the kernel's control-plane API
(e.g. :meth:`BaseKernel.install_relay_seg`,
:meth:`BaseKernel.deactivate_relay_seg`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: Architectural register / hardware-ownership attributes.
PROTECTED_ATTRS = frozenset({
    "seg_reg",          # the relay-seg register (§3.3)
    "seg_mask",         # the seg-mask register (§3.3)
    "cap_bitmap",       # xcall-cap-reg target (§3.2)
    "link_stack",       # linkage record stack (§3.2)
    "seg_list",         # seg-list-reg target (§3.3)
    "active_owner",     # the kernel's single-owner invariant (§3.3/§6.1)
})

#: Modules allowed to mutate: the engine (data plane) + kernel package.
ALLOWED_MODULES_EXACT = frozenset({"repro.xpc.engine"})
ALLOWED_MODULE_PREFIXES = ("repro.kernel.",)


def _is_allowed(modname: str) -> bool:
    return (modname in ALLOWED_MODULES_EXACT
            or modname == "repro.kernel"
            or modname.startswith(ALLOWED_MODULE_PREFIXES))


def _protected_targets(node: ast.AST):
    """Yield (attr_node, attr_name) for protected attribute writes."""
    targets = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        stack = [target]
        while stack:
            t = stack.pop()
            if isinstance(t, (ast.Tuple, ast.List)):
                stack.extend(t.elts)
            elif isinstance(t, ast.Attribute) and t.attr in PROTECTED_ATTRS:
                # Writes to self.<attr> are the object managing its own
                # construction — always fine.
                if not (isinstance(t.value, ast.Name)
                        and t.value.id == "self"):
                    yield t, t.attr


class StateMutationRule(Rule):
    name = "state-mutation"
    description = ("XPC architectural state (seg_reg/link_stack/"
                   "cap_bitmap/active_owner/...) is mutated only by the "
                   "engine data plane and the kernel control plane")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if not module.modname.startswith("repro."):
            return
        if _is_allowed(module.modname):
            return
        for node in ast.walk(module.tree):
            for target, attr in _protected_targets(node):
                v = self.violation(
                    module, node.lineno,
                    f"assigns architectural XPC state {attr!r} outside "
                    f"the engine/kernel — use the kernel control-plane "
                    f"API (BaseKernel.install_relay_seg / "
                    f"deactivate_relay_seg / run_thread) instead")
                if v:
                    yield v
