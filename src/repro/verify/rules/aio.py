"""Aio-discipline rule: ring memory moves only through the ring API.

The whole point of the submission/completion ring is that its header
indices and records are *memory-resident protocol state* shared across
an address-space boundary: every mutation must be cycle-charged and
ordering-checked by :class:`repro.aio.ring.XPCRing`.  Code elsewhere
that pokes a ring's internals — calling its private helpers
(``ring._store(...)``) or rebinding its geometry attributes
(``ring.entries = ...``) — bypasses the charging and the head/tail
discipline, silently breaking both the cycle model and the invariants
``repro.verify.check_ring_invariants`` later asserts.

Outside ``repro.aio`` this rule forbids:

* calling an underscore-prefixed method through an access chain that
  mentions a ring surface (``ring``/``rings``/``sq``/``cq``); and
* assigning (plain, augmented, annotated, or unpacking) to any
  attribute reached *through* such a chain, or to a ring-index
  attribute itself (``sq_head``, ``cq_tail``, ``next_seq``...) on any
  object.

Holding a ring reference (``self.ring = XPCRing.format(...)``) is a
plain read/bind and stays legal.  ``# verify-ok: aio-discipline``
suppresses a sanctioned site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: Names that identify a ring object in an access chain.
RING_SURFACES = frozenset({"ring", "rings", "_ring", "sq", "cq"})

#: Ring index attributes: writable only inside repro.aio.  (Geometry
#: like ``entries`` is covered by the chain branch — the bare name is
#: too generic to claim globally.)
RING_STATE = frozenset({
    "sq_head", "sq_tail", "cq_head", "cq_tail", "next_seq",
    "arena_cursor",
})


def _names_in_chain(expr: ast.AST):
    out = set()
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.Name):
            out.add(sub.id)
    return out


def _assign_targets(node: ast.AST):
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _flagged(node: ast.AST):
    """Yield (line, message) for ring-discipline breaches in *node*."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        func = node.func
        if (func.attr.startswith("_")
                and _names_in_chain(func.value) & RING_SURFACES):
            yield (node.lineno,
                   f"calls private ring method {func.attr!r}")
    for target in _assign_targets(node):
        stack = [target]
        while stack:
            t = stack.pop()
            if isinstance(t, (ast.Tuple, ast.List)):
                stack.extend(t.elts)
                continue
            if isinstance(t, ast.Subscript):
                t = t.value
            if not isinstance(t, ast.Attribute):
                continue
            if t.attr in RING_STATE:
                yield (node.lineno,
                       f"assigns ring state attribute {t.attr!r}")
            elif _names_in_chain(t.value) & RING_SURFACES:
                yield (node.lineno,
                       f"writes attribute {t.attr!r} through a ring "
                       f"reference")


class AioDisciplineRule(Rule):
    name = "aio-discipline"
    description = ("ring memory and indices are touched only through "
                   "the XPCRing API outside repro.aio")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if not module.modname.startswith("repro."):
            return
        if module.unit == "aio":
            return
        for node in ast.walk(module.tree):
            for line, what in _flagged(node):
                v = self.violation(
                    module, line,
                    f"{what} outside repro.aio — go through the "
                    f"XPCRing push/pop/reset API so the mutation is "
                    f"cycle-charged and invariant-checked")
                if v:
                    yield v
