"""Cluster-discipline rule: nodes talk through the RPC layer.

A :class:`~repro.cluster.node.Node` encapsulates a whole machine —
its ``kernel`` and ``machine`` are *that node's* private world.  The
fabric layers above (``fabric``, ``naming``, ``metrics``, ``loadgen``,
``hashring``) coordinate *between* nodes, and the moment one of them
reaches through a node reference into ``node.kernel`` / ``node.machine``
it has teleported across a machine boundary for free: no serialization
charge, no wire delay, no partition check — the distributed-system
equivalent of the ring-poking the aio rule forbids.

Inside ``repro.cluster`` only three modules may touch a node's
internals:

* ``node`` — the Node owns them;
* ``rpc`` — the hop implementation charges the sender's cores;
* ``serving`` — shard handlers build their *own* node's local stack
  (FS, database) at install time.

Everything else must stay on the node's serving surface
(``pool()`` / ``serve()`` / ``retire()`` / ``frontend_core`` / ``now``
/ ``stats()``) or go through :func:`repro.cluster.rpc.remote_submit`.
``# verify-ok: cluster-discipline`` suppresses a sanctioned site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: Names that identify a Node reference in an access chain.
NODE_SURFACES = frozenset({
    "node", "nodes", "home", "frontend", "victim", "peer", "src", "dst",
    "live", "survivor",
})

#: A node's machine-private internals.
NODE_INTERNALS = frozenset({"kernel", "machine"})

#: Cluster modules allowed to open a node up (see module docstring).
SANCTIONED_MODULES = frozenset({"node", "rpc", "serving"})


def _names_in_chain(expr: ast.AST):
    out = set()
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.Name):
            out.add(sub.id)
    return out


class ClusterDisciplineRule(Rule):
    name = "cluster-discipline"
    description = ("fabric code may not reach through a Node into its "
                   "kernel/machine — cross-node work goes through the "
                   "RPC layer")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if module.unit != "cluster":
            return
        parts = module.modname.split(".")
        leaf = parts[2] if len(parts) > 2 else ""
        if leaf in SANCTIONED_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in NODE_INTERNALS:
                continue
            if not _names_in_chain(node.value) & NODE_SURFACES:
                continue
            v = self.violation(
                module, node.lineno,
                f"reaches {node.attr!r} through a node reference — a "
                f"node's machine state is private; use the serving "
                f"surface or repro.cluster.rpc so the crossing is "
                f"priced")
            if v:
                yield v
