"""Error-discipline rule: ``repro.xpc`` raises only architectural errors.

The paper defines exactly five XPC hardware exceptions (Table 2), all
modeled as :class:`repro.xpc.errors.XPCError` subclasses and delivered to
the kernel.  Modules under ``repro/xpc/`` are the hardware data plane:
anything they raise must be either

* an :class:`XPCError` subclass (the Table 2 exceptions, discovered
  dynamically from :mod:`repro.xpc.errors` plus any subclass defined in
  the checked module itself),
* :class:`repro.hw.paging.PageFault` — relay-window permission faults
  are delivered through the page-fault machinery, like hardware does, or
* a Python builtin programming-error (``ValueError``/``IndexError``/
  ``TypeError``/``KeyError``/``NotImplementedError``) guarding simulator
  API misuse at construction time (not an architectural event).

Raising ``KernelError``, bare ``Exception``, ``RuntimeError`` etc. from
the data plane is a layering smell the kernel cannot dispatch on — the
exact failure SFP-style flow-integrity tooling exists to catch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: Builtins that signal simulator API misuse rather than an XPC event.
ALLOWED_BUILTINS = frozenset({
    "ValueError", "IndexError", "TypeError", "KeyError",
    "NotImplementedError", "StopIteration",
})

#: Hardware fault types from lower layers that the data plane may raise.
ALLOWED_HW_FAULTS = frozenset({"PageFault"})


def _xpc_error_names() -> Set[str]:
    """Every XPCError subclass name defined in repro.xpc.errors."""
    import repro.xpc.errors as errmod
    names = set()
    for name in dir(errmod):
        obj = getattr(errmod, name)
        if isinstance(obj, type) and issubclass(obj, errmod.XPCError):
            names.add(name)
    return names


def _local_subclasses(module: ModuleInfo, allowed: Set[str]) -> Set[str]:
    """Classes defined in *module* deriving from an allowed error type."""
    out: Set[str] = set()
    changed = True
    while changed:         # fixed point for chains of local subclasses
        changed = False
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or node.name in out:
                continue
            for base in node.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) \
                    else base.id if isinstance(base, ast.Name) else ""
                if base_name in allowed or base_name in out:
                    out.add(node.name)
                    changed = True
                    break
    return out


class ErrorDisciplineRule(Rule):
    name = "error-discipline"
    description = ("modules under repro/xpc/ raise only XPCError "
                   "subclasses (plus PageFault and construction-time "
                   "builtins)")

    def __init__(self) -> None:
        self._xpc_errors = _xpc_error_names()

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if not module.modname.startswith("repro.xpc"):
            return
        allowed = (self._xpc_errors | ALLOWED_BUILTINS | ALLOWED_HW_FAULTS)
        allowed |= _local_subclasses(module, allowed)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if exc is None:             # bare re-raise
                continue
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = exc.attr if isinstance(exc, ast.Attribute) else \
                exc.id if isinstance(exc, ast.Name) else None
            if name is None or name in allowed:
                continue
            if name[0].islower():       # re-raise of a caught instance
                continue
            v = self.violation(
                module, node.lineno,
                f"raises {name!r} from the XPC data plane — only "
                f"XPCError subclasses (Table 2), PageFault, or "
                f"construction-time builtins are allowed under "
                f"repro/xpc/")
            if v:
                yield v
