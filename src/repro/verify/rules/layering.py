"""Layering rule: the package dependency order the paper's design implies.

The reproduction is layered like the system it models:

    params → hw → xpc → kernel → runtime → ipc → {sel4, zircon, binder}
                                                → services → apps

* ``repro.hw`` models silicon: it may not import ``repro.kernel`` or
  ``repro.xpc`` (the engine plugs *into* the core through the
  ``Core.xpc_engine`` port, not the other way round).  ``TYPE_CHECKING``
  imports are exempt; the single sanctioned runtime inversion (engine
  attach in ``Machine``) carries a ``# verify-ok: layering`` pragma.
* OS personalities (``sel4``/``zircon``/``binder``) may not reach into
  ``repro.hw`` internals: only the architectural surface (``cpu``,
  ``machine``, ``memory``, ``paging`` and the package facade) is fair
  game — the TLB and cache timing models are micro-architecture that
  belongs to the core.
* Personalities may not import each other, and nobody outside a package
  may import an underscore-prefixed (private) name from it.

New top-level packages must be added to :data:`ALLOWED_IMPORTS`
explicitly — an unknown unit is a violation, which forces each new
subsystem to take a conscious position in the layering.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.verify.lint import LintViolation, ModuleInfo, Rule

#: unit -> units it may import (its own unit is always allowed).
#: ``faults`` sits beside ``params`` at the bottom: it is pure policy
#: (seeded decisions + trace recording) with no simulator dependencies,
#: so every layer may consult it at its instrumented fault points.
ALLOWED_IMPORTS = {
    "params": set(),
    "faults": set(),
    # The table-driven fast core sits beside ``params`` at the bottom:
    # it precomputes cycle tables from CycleParams and must never see
    # the reference stack it re-implements (see also the dedicated
    # ``fastcore-discipline`` rule, which forbids the reverse edge and
    # pins this set).
    "fastcore": {"params"},
    "hw": {"params", "faults", "obs", "san"},
    "xpc": {"hw", "params", "faults", "obs", "san"},
    "kernel": {"xpc", "hw", "params", "faults", "obs", "san"},
    "runtime": {"kernel", "xpc", "hw", "params", "faults", "obs", "san"},
    "ipc": {"runtime", "kernel", "xpc", "hw", "params", "faults", "obs",
            "san"},
    "sel4": {"ipc", "runtime", "kernel", "xpc", "hw", "params", "faults",
             "obs", "san"},
    "zircon": {"ipc", "runtime", "kernel", "xpc", "hw", "params", "faults",
               "obs", "san"},
    "binder": {"ipc", "runtime", "kernel", "xpc", "hw", "params", "faults",
               "obs", "san"},
    "services": {"aio", "ipc", "runtime", "kernel", "xpc", "hw", "params",
                 "faults", "analysis", "obs", "san"},
    # Async/batched XPC sits between ipc and services: it builds on the
    # transport's payload surface and the runtime library, and the
    # service servers adopt it for their batched front-ends.
    # ``fastcore`` appears here for the opt-in fast-forecast helpers
    # only (open-loop sweep planning); the serving path stays on the
    # reference engine.
    "aio": {"ipc", "runtime", "kernel", "xpc", "hw", "params", "faults",
            "obs", "san", "fastcore"},
    "apps": {"services", "ipc", "runtime", "kernel", "xpc", "hw", "params",
             "faults", "obs", "san"},
    # Side packages: measurement and analysis tooling.
    # ``obs`` sits beside ``faults`` at the bottom: a pure observer
    # (counters, spans, PMU sampling) that never charges cycles, so
    # every layer may report into it at its instrumentation sites.
    "obs": {"params", "faults", "analysis"},
    # ``san`` (XPCSan) is another bottom-layer pure observer: the
    # instrumented layers report ownership handoffs and per-core
    # accesses into it, and it depends on nothing.
    "san": set(),
    "analysis": {"params"},
    "gem5": {"params", "hw"},
    "hwcost": {"params"},
    "compare": {"params"},
    "tools": {"analysis", "params", "obs"},
    "verify": {"runtime", "kernel", "xpc", "hw", "params", "faults",
               "analysis", "obs"},
    # Differential fuzzing drives every mechanism (and the analytic
    # model) from above, so it sits at the top of the stack alongside
    # apps; nothing may import *it*.
    "proptest": {"compare", "aio", "ipc", "sel4", "zircon", "runtime",
                 "kernel", "xpc", "hw", "params", "faults", "obs", "san",
                 "fastcore"},
    # Snapshot/record-replay/time-travel sits at the very top: it
    # deepcopies whole worlds built from any layer (including proptest
    # executors and verify's live invariants), so everything below is
    # fair game and nothing below may import *it*.  The two proptest
    # integration points (snapshot-accelerated shrink, replay --at-op)
    # late-import repro.snap behind a pragma rather than inverting the
    # layer.
    "snap": {"proptest", "verify", "compare", "aio", "ipc", "sel4",
             "zircon", "services", "runtime", "kernel", "xpc", "hw",
             "params", "faults", "obs", "san", "analysis"},
    # Profiling/SLO/sentry tooling sits above snap: the sentry drives
    # recorders and time travel, host profiling drives the proptest
    # fleet, and the flame CLI runs snap scenarios.  The in-simulation
    # CycleProfiler itself lives in repro.obs (the hw layer must reach
    # it from Core.tick); aio consumes the SLO engine duck-typed, so
    # nothing below imports repro.prof.
    "prof": {"snap", "proptest", "verify", "compare", "aio", "ipc",
             "sel4", "zircon", "services", "runtime", "kernel", "xpc",
             "hw", "params", "faults", "obs", "san", "analysis"},
    # The multi-node serving fabric sits at the very top: a Node wraps a
    # whole machine + kernel + pools, the fabric consumes the SLO engine
    # for autoscaling, and the shard services reuse the real apps.
    # Nothing below imports repro.cluster.
    "cluster": {"prof", "aio", "ipc", "sel4", "services", "apps",
                "runtime", "kernel", "xpc", "hw", "params", "faults",
                "obs", "san", "analysis", "fastcore"},
}

#: Modules of repro.hw that form its public, architectural surface.
HW_PUBLIC_MODULES = {"", "cpu", "machine", "memory", "paging"}

#: The three OS-personality glue layers.
GLUE_UNITS = {"sel4", "zircon", "binder"}


class LayeringRule(Rule):
    name = "layering"
    description = ("package imports must respect the hw → xpc → kernel → "
                   "glue layering; no private names or hw internals "
                   "across package boundaries")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        unit = module.unit
        if unit == "":       # the repro package facade re-exports freely
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.level:          # relative import: same package
                    continue
                target = node.module or ""
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    v = self._check_target(module, node, alias.name, [])
                    if v:
                        yield v
                continue
            else:
                continue
            v = self._check_target(module, node, target, names)
            if v:
                yield v

    def _check_target(self, module: ModuleInfo, node: ast.AST,
                      target: str, names: list) -> Optional[LintViolation]:
        parts = target.split(".")
        if parts[0] != "repro":
            return None
        if module.in_type_checking(node):
            return None
        unit = module.unit
        target_unit = parts[1] if len(parts) > 1 else ""
        line = node.lineno
        # Private names never cross a package boundary.
        if target_unit != unit:
            for name in names:
                if name.startswith("_") and name != "*":
                    return self.violation(
                        module, line,
                        f"imports private name {name!r} from "
                        f"repro.{target_unit} — private names do not "
                        f"cross package boundaries")
        if target_unit == unit or target_unit == "":
            return None
        allowed = ALLOWED_IMPORTS.get(unit)
        if allowed is None:
            return self.violation(
                module, line,
                f"unit {unit!r} is not in the layer map "
                f"(repro.verify.rules.layering.ALLOWED_IMPORTS) — new "
                f"packages must declare their layer explicitly")
        if target_unit not in allowed:
            return self.violation(
                module, line,
                f"repro.{unit} may not import repro.{target_unit} "
                f"(layering: allowed are "
                f"{', '.join(sorted(allowed)) or 'none'})")
        # Glue layers stay on repro.hw's architectural surface.
        if unit in GLUE_UNITS and target_unit == "hw":
            hw_module = ".".join(parts[2:])
            if hw_module not in HW_PUBLIC_MODULES:
                return self.violation(
                    module, line,
                    f"repro.{unit} reaches into repro.hw internals "
                    f"(repro.hw.{hw_module}); only "
                    f"{sorted(m for m in HW_PUBLIC_MODULES if m)} are "
                    f"public to OS glue layers")
        return None
