"""Snap-discipline rule: ``__snap_state__`` declarations stay complete.

Snapshot identity (:mod:`repro.snap.fingerprint`) hinges on
``__snap_state__`` tuples naming every instance attribute a class
carries: the runtime walker raises :class:`SnapshotError` when an
instance holds an undeclared attribute, but only on graphs a test
actually snapshots.  This rule catches the same drift statically, at
the moment someone adds ``self.new_field = ...`` to a declared class
without extending the tuple — before any snapshot test runs.

Mechanics: for every class that assigns ``__snap_state__`` at class
level, collect the literal strings appearing anywhere in the assigned
expression (this handles both plain tuples and the
``Base.__snap_state__ + ("extra",)`` extension idiom).  Then every
``self.X = ...`` target in the class's methods must name a declared
attribute.  Two sound exemptions:

* augmented assignments (``self.count += 1``) mutate an attribute that
  must already exist, so the original assignment is the declared one;
* classes whose declaration references a base tuple the rule cannot
  see (``Base.__snap_state__ + ...`` where ``Base`` is imported) are
  checked only against the *local* literals plus any in-module base
  declarations — attributes assigned by the base itself are the base
  module's responsibility.

A deliberate undeclared attribute (one excluded via
``__snap_fingerprint__``) is suppressed per-site with the usual
``# verify-ok: snap-discipline`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.verify.lint import LintViolation, ModuleInfo, Rule


def _snap_decl(cls: ast.ClassDef) -> Optional[ast.AST]:
    """The expression assigned to ``__snap_state__``, or None."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (isinstance(target, ast.Name)
                        and target.id == "__snap_state__"):
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__snap_state__"
                    and stmt.value is not None):
                return stmt.value
    return None


def _literal_names(expr: ast.AST) -> Set[str]:
    """Every string literal anywhere in *expr*."""
    return {sub.value for sub in ast.walk(expr)
            if isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)}


def _base_refs(expr: ast.AST) -> List[str]:
    """Names of classes whose ``__snap_state__`` the expression reads
    (``Base.__snap_state__`` -> "Base")."""
    out = []
    for sub in ast.walk(expr):
        if (isinstance(sub, ast.Attribute)
                and sub.attr == "__snap_state__"
                and isinstance(sub.value, ast.Name)):
            out.append(sub.value.id)
    return out


def _self_writes(cls: ast.ClassDef) -> Iterator[Tuple[str, int]]:
    """Yield (attribute, line) for every plain/annotated assignment to
    ``self.X`` in the class's (possibly nested/async) methods."""
    for func in cls.body:
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not func.args.args:
            continue
        self_name = func.args.args[0].arg
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            stack = list(targets)
            while stack:
                t = stack.pop()
                if isinstance(t, (ast.Tuple, ast.List)):
                    stack.extend(t.elts)
                    continue
                if (isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == self_name):
                    yield t.attr, node.lineno


class SnapDisciplineRule(Rule):
    name = "snap-discipline"
    description = ("classes declaring __snap_state__ must declare every "
                   "attribute their methods assign to self — snapshot "
                   "fingerprints fail loudly on undeclared state")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if not module.modname.startswith("repro."):
            return
        classes: Dict[str, ast.ClassDef] = {
            node.name: node for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        decls: Dict[str, Optional[Set[str]]] = {}

        def declared(name: str, trail: Set[str]) -> Optional[Set[str]]:
            """Transitive literal declaration set for an in-module
            class, or None when it declares nothing."""
            if name in decls:
                return decls[name]
            cls = classes.get(name)
            if cls is None or name in trail:
                return None
            expr = _snap_decl(cls)
            if expr is None:
                decls[name] = None
                return None
            names = _literal_names(expr)
            for base in _base_refs(expr):
                inherited = declared(base, trail | {name})
                if inherited:
                    names |= inherited
            decls[name] = names
            return names

        for name, cls in classes.items():
            expr = _snap_decl(cls)
            if expr is None:
                continue
            names = declared(name, set()) or set()
            for attr, line in _self_writes(cls):
                if attr in names or attr == "__snap_state__":
                    continue
                v = self.violation(
                    module, line,
                    f"{name}.{attr} is assigned but missing from "
                    f"__snap_state__ — declare it (or exclude it via "
                    f"__snap_fingerprint__ and a pragma) so snapshots "
                    f"keep fingerprinting the complete state")
                if v:
                    yield v
