"""SARIF 2.1.0 export for lint/flow findings.

GitHub code scanning (and most editors) ingest SARIF; emitting it from
``python -m repro.verify --sarif out.json`` lets CI surface violations
as inline annotations instead of buried job logs.  The emitter is
deliberately minimal — one run, one tool, one result per violation,
physical locations with start lines — and keeps the plain-text format
as the default human surface.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.verify.lint import LintViolation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-verify"


def _rule_descriptions() -> Dict[str, str]:
    from repro.verify.flow import default_flow_rules
    from repro.verify.rules import default_rules
    from repro.verify.stale import StalePragmaRule
    out = {}
    for rule in (*default_rules(), *default_flow_rules(),
                 StalePragmaRule()):
        out[rule.name] = rule.description
    return out


def to_sarif(violations: Sequence[LintViolation],
             descriptions: Optional[Dict[str, str]] = None) -> dict:
    """A SARIF ``log`` dict for *violations* (JSON-serializable)."""
    if descriptions is None:
        descriptions = _rule_descriptions()
    # Every rule referenced by a result must appear in the driver.
    rule_ids: List[str] = sorted(
        set(descriptions) | {v.rule for v in violations})
    index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = [{
        "id": rid,
        "shortDescription": {"text": descriptions.get(rid, rid)},
    } for rid in rule_ids]
    results = [{
        "ruleId": v.rule,
        "ruleIndex": index[v.rule],
        "level": "error",
        "message": {"text": v.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": v.path.replace("\\", "/")},
                "region": {"startLine": max(v.line, 1)},
            },
        }],
    } for v in violations]
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "informationUri":
                    "https://github.com/xpc-repro/xpc-repro",
                "rules": rules,
            }},
            "results": results,
        }],
    }


def write_sarif(path: Path, violations: Sequence[LintViolation],
                descriptions: Optional[Dict[str, str]] = None) -> None:
    log = to_sarif(violations, descriptions)
    Path(path).write_text(json.dumps(log, indent=2) + "\n")
