"""Exhaustive bounded model checker for the XPC security protocol.

The checker enumerates the reachable state space of a small but real
world — a :class:`repro.hw.machine.Machine` with one core per client
thread, a :class:`repro.kernel.kernel.BaseKernel`, M registered
x-entries (each with its own server thread/address space), and relay
segments parked in the client's seg-list — under every interleaving of
the protocol events

    xcall · xret · swapseg · grant · revoke · (optionally seg-mask)

issued by N threads.  Exploration is breadth-first over *canonical state
fingerprints*, so the search is exhaustive over the reachable state
graph (not merely over bounded traces) and terminates: the only bound is
``max_call_depth``, which caps link-stack growth exactly like the 8 KB
per-thread stack of §4.1 does in hardware.

After every event the live world is compared against an independently
maintained *shadow model* using the invariants in
:mod:`repro.verify.invariants`.  Because the search is BFS, the first
violation found is reached by a **minimal** event sequence; the
counterexample report replays it with a :class:`repro.analysis.trace.Tracer`
attached so the offending timeline is visible event by event.

States are revisited by replaying their witness path against a fresh
world (the simulator has no snapshot/undo), which keeps the checker
honest: every explored edge executes the real engine microcode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.trace import Tracer
from repro.hw.machine import Machine
from repro.kernel.kernel import BaseKernel
from repro.params import DEFAULT_PARAMS
from repro.verify import invariants as inv
from repro.verify.invariants import InvariantViolation
from repro.xpc.errors import InvalidXCallCapError, XPCError
from repro.xpc.relayseg import SegMask

#: An event is a plain tuple: ("xcall", tid, eid), ("xret", tid),
#: ("swapseg", tid, slot), ("grant", tid, eid), ("revoke", tid, eid),
#: ("mask", tid, numer_16ths).
Op = Tuple


@dataclass
class ModelConfig:
    """The bounded configuration to explore (defaults: the 2×2 space)."""

    threads: int = 2                   # client threads, one core each
    entries: int = 2                   # x-entries, one server thread each
    segments: int = 1                  # relay segments parked at boot
    swap_slots: Tuple[int, ...] = (0, 1)   # seg-list slots swapseg targets
    max_call_depth: int = 2            # link-stack bound (finite space)
    seg_bytes: int = 4096
    mem_bytes: int = 1 << 20
    #: (tid, eid) capability grants installed at boot.
    initial_grants: Tuple[Tuple[int, int], ...] = ((0, 0), (0, 1), (1, 0))
    #: (tid, eid) pairs offered as grant / revoke events during the run.
    grant_ops: Tuple[Tuple[int, int], ...] = ((1, 1),)
    revoke_ops: Tuple[Tuple[int, int], ...] = ((1, 0),)
    #: seg-mask writes offered as events (numerator of window/16 kept).
    mask_ops: Tuple[int, ...] = ()
    max_states: int = 200_000          # explosion guard
    #: Test hook: mutate the freshly built world (e.g. seed a bug).
    world_mutator: Optional[Callable[["World"], None]] = None


@dataclass
class World:
    """One freshly built universe the events run against."""

    config: ModelConfig
    machine: Machine
    kernel: BaseKernel
    cores: list
    engines: list
    threads: list                      # client threads, index = tid
    client_process: object
    server_processes: list             # index = logical entry index
    server_threads: list
    entry_ids: List[int]               # logical entry index -> table id
    seg_lists: list                    # all seg-lists, stable order

    def thread_index(self, thread) -> Optional[int]:
        for i, t in enumerate(self.threads):
            if t is thread:
                return i
        return None

    def seg_list_index(self, seg_list) -> int:
        for i, sl in enumerate(self.seg_lists):
            if sl is seg_list:
                return i
        return -1


@dataclass
class _Frame:
    logical_entry: int                 # which x-entry was called
    saved_key: str                     # bitmap key to restore on xret


class Shadow:
    """Independent re-derivation of the architectural state from the
    event sequence alone (never reads the engine to update itself)."""

    def __init__(self, world: World) -> None:
        cfg = world.config
        self.world = world
        self.bitmap_keys = ([f"home{t}" for t in range(cfg.threads)]
                            + [f"entry{e}" for e in range(cfg.entries)])
        self.bitmap_objects = {}
        for t in range(cfg.threads):
            self.bitmap_objects[f"home{t}"] = world.threads[t].home_caps
        for e in range(cfg.entries):
            self.bitmap_objects[f"entry{e}"] = \
                world.server_threads[e].home_caps
        #: key -> set of *logical* entry indices granted.
        self.bits: Dict[str, set] = {k: set() for k in self.bitmap_keys}
        for tid, eid in cfg.initial_grants:
            self.bits[f"home{tid}"].add(eid)
        self.stacks: List[List[_Frame]] = [[] for _ in range(cfg.threads)]

    def current_key(self, tid: int) -> str:
        stack = self.stacks[tid]
        return (f"entry{stack[-1].logical_entry}" if stack
                else f"home{tid}")

    def has_cap(self, tid: int, eid: int) -> bool:
        return eid in self.bits[self.current_key(tid)]


def op_str(op: Op) -> str:
    kind, tid = op[0], op[1]
    if kind == "xcall":
        return f"t{tid}: xcall e{op[2]}"
    if kind == "xret":
        return f"t{tid}: xret"
    if kind == "swapseg":
        return f"t{tid}: swapseg slot{op[2]}"
    if kind == "grant":
        return f"kernel: grant e{op[2]} -> t{tid}"
    if kind == "revoke":
        return f"kernel: revoke e{op[2]} from t{tid}"
    if kind == "mask":
        return f"t{tid}: seg-mask {op[2]}/16 of window"
    return repr(op)


@dataclass(frozen=True)
class CounterExample:
    """A minimal event sequence that breaks an invariant."""

    path: Tuple[Op, ...]
    violations: Tuple[InvariantViolation, ...]
    trace_text: str

    def report(self) -> str:
        lines = ["invariant violation after minimal event sequence:"]
        lines += [f"  {i + 1}. {op_str(op)}"
                  for i, op in enumerate(self.path)]
        lines += [f"  -> {v}" for v in self.violations]
        if self.trace_text:
            lines.append("replay trace (repro.analysis.trace):")
            lines += ["  | " + line
                      for line in self.trace_text.splitlines()]
        return "\n".join(lines)


@dataclass
class ExploreResult:
    states: int
    transitions: int
    counterexamples: List[CounterExample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples


class ModelChecker:
    """BFS over the canonical state graph of one :class:`ModelConfig`."""

    def __init__(self, config: Optional[ModelConfig] = None) -> None:
        self.config = config or ModelConfig()
        # Large cache lines shrink the tag arrays the checker never
        # exercises; timing is irrelevant here, reachability is not.
        self._params = replace(DEFAULT_PARAMS, cache_line_bytes=4096)

    # ------------------------------------------------------------------
    # World construction and replay
    # ------------------------------------------------------------------
    def build_world(self) -> Tuple[World, Shadow]:
        cfg = self.config
        machine = Machine(cores=cfg.threads, mem_bytes=cfg.mem_bytes,
                          params=self._params, xpc=True)
        kernel = BaseKernel(machine, name="model-kernel")
        client = kernel.create_process("client")
        threads = [kernel.create_thread(client, f"t{i}")
                   for i in range(cfg.threads)]
        server_procs, server_threads, entry_ids = [], [], []
        for e in range(cfg.entries):
            proc = kernel.create_process(f"server{e}")
            sthread = kernel.create_thread(proc, f"s{e}")
            kernel.run_thread(machine.cores[0], sthread)
            entry = kernel.register_xentry(
                machine.cores[0], sthread, lambda *args: None)
            server_procs.append(proc)
            server_threads.append(sthread)
            entry_ids.append(entry.entry_id)
        for _ in range(cfg.segments):
            kernel.create_relay_seg(machine.cores[0], client, cfg.seg_bytes)
        for tid, eid in cfg.initial_grants:
            kernel.grant_xcall_cap(machine.cores[0], server_procs[eid],
                                   threads[tid], entry_ids[eid])
        for tid, thread in enumerate(threads):
            kernel.run_thread(machine.cores[tid], thread)
        world = World(
            config=cfg, machine=machine, kernel=kernel,
            cores=list(machine.cores), engines=list(machine.engines),
            threads=threads, client_process=client,
            server_processes=server_procs, server_threads=server_threads,
            entry_ids=entry_ids,
            seg_lists=[client.seg_list]
            + [p.seg_list for p in server_procs],
        )
        if cfg.world_mutator is not None:
            cfg.world_mutator(world)
        return world, Shadow(world)

    def replay(self, path: Sequence[Op],
               trace: bool = False) -> Tuple[World, Shadow,
                                             Optional[Tracer]]:
        world, shadow = self.build_world()
        tracer = Tracer().attach(world.machine) if trace else None
        for op in path:
            self.apply_op(world, shadow, op)
        return world, shadow, tracer

    # ------------------------------------------------------------------
    # Event application + transition invariants
    # ------------------------------------------------------------------
    def apply_op(self, world: World, shadow: Shadow,
                 op: Op) -> List[InvariantViolation]:
        kind, tid = op[0], op[1]
        thread = world.threads[tid]
        engine = world.engines[tid]
        kernel = world.kernel
        violations: List[InvariantViolation] = []
        if kind == "xcall":
            eid = op[2]
            has_cap = shadow.has_cap(tid, eid)
            before = inv.window_tuple(thread.xpc.seg_reg)
            saved_key = shadow.current_key(tid)
            try:
                engine.xcall(world.entry_ids[eid])
            except InvalidXCallCapError:
                violations += inv.check_cap_gate(
                    thread.name, eid, has_cap, succeeded=False,
                    denied=True)
            except XPCError:
                pass
            else:
                shadow.stacks[tid].append(_Frame(eid, saved_key))
                violations += inv.check_cap_gate(
                    thread.name, eid, has_cap, succeeded=True,
                    denied=False)
                violations += inv.check_shrink(
                    thread.name, before,
                    inv.window_tuple(thread.xpc.seg_reg))
        elif kind == "xret":
            try:
                engine.xret()
            except XPCError:
                pass                    # empty chain / window-theft trap
            else:
                if shadow.stacks[tid]:
                    shadow.stacks[tid].pop()
                else:
                    violations.append(InvariantViolation(
                        "link-stack-lifo",
                        f"{thread.name}: xret succeeded on an empty "
                        f"call chain"))
        elif kind == "swapseg":
            try:
                engine.swapseg(op[2])
            except XPCError:
                pass                    # single-owner trap is correct
        elif kind == "grant":
            eid = op[2]
            kernel.grant_xcall_cap(world.cores[tid],
                                   world.server_processes[eid],
                                   thread, world.entry_ids[eid])
            shadow.bits[f"home{tid}"].add(eid)
        elif kind == "revoke":
            eid = op[2]
            kernel.revoke_xcall_cap(thread, world.entry_ids[eid])
            shadow.bits[f"home{tid}"].discard(eid)
        elif kind == "mask":
            window = thread.xpc.seg_reg
            length = (window.length * op[2]) // 16 if window.valid else 0
            try:
                engine.write_seg_mask(SegMask(0, length))
            except XPCError:
                pass
        else:
            raise ValueError(f"unknown model op {op!r}")
        violations += inv.check_state(world, shadow)
        return violations

    # ------------------------------------------------------------------
    # Canonical state
    # ------------------------------------------------------------------
    def fingerprint(self, world: World, shadow: Shadow) -> Tuple:
        cfg = world.config
        nslots = max(cfg.swap_slots, default=0) + 1
        bits = tuple(tuple(sorted(shadow.bits[k]))
                     for k in shadow.bitmap_keys)
        threads = []
        for tid, t in enumerate(world.threads):
            records = tuple(
                (r.callee_entry_id, inv.window_tuple(r.seg_reg),
                 inv.window_tuple(r.passed_seg), r.valid)
                for r in t.xpc.link_stack.records)
            threads.append((
                records,
                inv.window_tuple(t.xpc.seg_reg),
                (t.xpc.seg_mask.offset, t.xpc.seg_mask.length),
                world.seg_list_index(t.xpc.seg_list),
                world.cores[tid].aspace.name,
            ))
        lists = tuple(
            tuple(inv.window_tuple(sl.peek(i)) for i in range(nslots))
            for sl in world.seg_lists)
        segs = tuple(
            (world.thread_index(seg.active_owner), seg.revoked)
            for seg in world.kernel.relay_segments)
        return (bits, tuple(threads), lists, segs)

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------
    def enumerate_ops(self) -> Tuple[Op, ...]:
        cfg = self.config
        ops: List[Op] = []
        for tid in range(cfg.threads):
            for eid in range(cfg.entries):
                ops.append(("xcall", tid, eid))
            ops.append(("xret", tid))
            for slot in cfg.swap_slots:
                ops.append(("swapseg", tid, slot))
            for numer in cfg.mask_ops:
                ops.append(("mask", tid, numer))
        for tid, eid in cfg.grant_ops:
            ops.append(("grant", tid, eid))
        for tid, eid in cfg.revoke_ops:
            ops.append(("revoke", tid, eid))
        return tuple(ops)

    def _enabled(self, depths: Tuple[int, ...], op: Op) -> bool:
        if op[0] == "xcall":
            return depths[op[1]] < self.config.max_call_depth
        return True

    def explore(self, stop_on_first: bool = False,
                max_depth: Optional[int] = None) -> ExploreResult:
        """Exhaust the reachable state graph; collect counterexamples."""
        cfg = self.config
        ops = self.enumerate_ops()
        world, shadow = self.build_world()
        root = self.fingerprint(world, shadow)
        visited = {root}
        depths0 = tuple(len(s) for s in shadow.stacks)
        queue = deque([((), depths0)])
        result = ExploreResult(states=1, transitions=0)
        while queue:
            path, depths = queue.popleft()
            if max_depth is not None and len(path) >= max_depth:
                continue
            for op in ops:
                if not self._enabled(depths, op):
                    continue
                world, shadow, _ = self.replay(path)
                violations = self.apply_op(world, shadow, op)
                result.transitions += 1
                if violations:
                    full = tuple(path) + (op,)
                    result.counterexamples.append(CounterExample(
                        full, tuple(violations), self._trace_of(full)))
                    if stop_on_first:
                        return result
                    continue            # do not explore past a violation
                fp = self.fingerprint(world, shadow)
                if fp not in visited:
                    if len(visited) >= cfg.max_states:
                        raise RuntimeError(
                            f"model state space exceeds max_states="
                            f"{cfg.max_states}; tighten the config")
                    visited.add(fp)
                    result.states += 1
                    queue.append((tuple(path) + (op,),
                                  tuple(len(s) for s in shadow.stacks)))
        return result

    def _trace_of(self, path: Tuple[Op, ...]) -> str:
        _, _, tracer = self.replay(path, trace=True)
        return tracer.to_text(limit=80) if tracer is not None else ""
