"""repro.verify — static invariant checker + lint suite for the XPC protocol.

The paper's central claims are *invariants*, not cycle counts: xcall-cap
is checked by hardware on every ``xcall`` (§3.2), linkage records push
and pop in strict LIFO order (§3.2), and a relay segment has exactly one
active owner at any point in the call chain (the TOCTTOU defence of
§3.3/§6.1).  This package holds the repo to that bar with two
complementary static-analysis passes:

* :mod:`repro.verify.lint` — a custom AST lint pass over ``src/repro``
  enforcing repo-specific rules the design implies: layering
  (:mod:`repro.verify.rules.layering`), cycle-accounting completeness
  (:mod:`repro.verify.rules.cycles`), error discipline
  (:mod:`repro.verify.rules.errors`), and the hardware-data-plane /
  kernel-control-plane state-mutation split
  (:mod:`repro.verify.rules.state`).

* :mod:`repro.verify.model` — an exhaustive bounded model checker that
  enumerates XPC state spaces (N threads × M x-entries ×
  call/ret/swapseg/grant/revoke interleavings) against the *real*
  :class:`repro.xpc.engine.XPCEngine`, asserting the protocol invariants
  in :mod:`repro.verify.invariants` and reporting any violation with the
  minimal event sequence that produced it (replayable through
  :mod:`repro.analysis.trace`).

Run standalone with ``python -m repro.verify`` (or the ``repro-lint``
console script); both passes are also wired into pytest under
``tests/verify``.

A violation site can be suppressed with a trailing pragma comment::

    from repro.xpc.engine import XPCEngine  # verify-ok: layering

Suppressions are deliberate and visible in review — the lint exists to
stop *silent* breakage of the paper's structure, not to forbid
consciously chosen inversions.
"""

from repro.verify.lint import (
    LintViolation, Rule, collect_modules, format_violations, lint_paths,
    lint_source, run_lint, run_verify,
)
from repro.verify.rules import DEFAULT_RULES, default_rules
from repro.verify.flow import (
    FLOW_RULES, ProgramModel, default_flow_rules, flow_source, run_flow,
)
from repro.verify.sarif import to_sarif, write_sarif
from repro.verify.stale import check_stale_pragmas, known_rule_names
from repro.verify.invariants import InvariantViolation
from repro.verify.live import (check_cluster_invariants, check_quiescent,
                               check_recovery_invariants,
                               check_ring_invariants)
from repro.verify.model import (
    CounterExample, ModelChecker, ModelConfig, ExploreResult,
)

__all__ = [
    "LintViolation", "Rule", "collect_modules", "format_violations",
    "lint_paths", "lint_source", "run_lint", "run_verify",
    "DEFAULT_RULES", "default_rules",
    "FLOW_RULES", "ProgramModel", "default_flow_rules", "flow_source",
    "run_flow", "to_sarif", "write_sarif", "check_stale_pragmas",
    "known_rule_names",
    "InvariantViolation", "CounterExample", "ModelChecker", "ModelConfig",
    "ExploreResult", "check_cluster_invariants", "check_quiescent",
    "check_recovery_invariants",
    "check_ring_invariants",
]
