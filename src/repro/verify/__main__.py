"""``python -m repro.verify`` — run the lint suite (and optionally the
bounded model checker) from the command line.

Exit status: 0 when clean, 1 on any lint violation or invariant
counterexample, 2 on usage errors.  This is what the ``repro-lint``
console script and the CI workflow invoke.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.verify.lint import format_violations, lint_paths, run_verify
from repro.verify.model import ModelChecker, ModelConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static invariant checker for the XPC reproduction: "
                    "custom lint rules plus interprocedural dataflow "
                    "analyses over src/repro, plus an optional bounded "
                    "protocol model check.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="specific .py files to lint (default: the whole repro "
             "package; explicit paths run the per-file lint rules only, "
             "not the whole-program dataflow pass)")
    parser.add_argument(
        "--model", action="store_true",
        help="also run the bounded XPC protocol model checker "
             "(2 threads x 2 x-entries, exhaustive)")
    parser.add_argument(
        "--no-flow", action="store_true",
        help="skip the interprocedural dataflow analyses "
             "(flow-charge/flow-escape/flow-except)")
    parser.add_argument(
        "--sarif", type=Path, metavar="OUT.json",
        help="also write the findings as SARIF 2.1.0 (for GitHub "
             "code-scanning upload); text output stays on stdout")
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="print only the final verdict")
    args = parser.parse_args(argv)

    try:
        violations = (lint_paths(args.paths) if args.paths
                      else run_verify(with_flow=not args.no_flow))
    except (OSError, SyntaxError, ValueError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if args.sarif:
        from repro.verify.sarif import write_sarif
        try:
            write_sarif(args.sarif, violations)
        except OSError as exc:
            print(f"repro-lint: cannot write SARIF: {exc}",
                  file=sys.stderr)
            return 2
    failed = bool(violations)
    if not args.quiet or failed:
        print(format_violations(violations))

    if args.model:
        result = ModelChecker(ModelConfig()).explore()
        if not args.quiet or result.counterexamples:
            print(f"model: explored {result.states} states / "
                  f"{result.transitions} transitions "
                  f"({len(result.counterexamples)} counterexample(s))")
        for cex in result.counterexamples:
            print(cex.report())
        failed = failed or bool(result.counterexamples)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
