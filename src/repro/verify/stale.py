"""stale-pragma: suppressions must keep earning their keep.

A ``# verify-ok: <rule>`` pragma is a standing exception to a verified
invariant; the moment the code it excused changes shape, the pragma
becomes a lie — it documents a violation that no longer exists, and it
would silently excuse a *future* one at the same line.  After the lint
and flow passes run (recording which suppressions actually fired via
``ModuleInfo.used_suppressions``), this pass reports:

* pragmas naming a rule that suppressed nothing on that line (stale);
* pragmas naming a rule that does not exist (typo'd suppressions are
  worse than stale ones — they never suppressed anything).

The rule name ``stale-pragma`` is itself suppressible, which is the
sanctioned way to keep a prophylactic pragma (e.g. on generated code).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.verify.lint import LintViolation, ModuleInfo, Rule


class StalePragmaRule(Rule):
    name = "stale-pragma"
    description = ("verify-ok pragmas must suppress a live violation "
                   "and name a known rule")


def known_rule_names(with_flow: bool = True) -> Set[str]:
    """Every rule name a pragma may legitimately reference."""
    from repro.verify.rules import default_rules
    names = {rule.name for rule in default_rules()}
    if with_flow:
        from repro.verify.flow import default_flow_rules
        names.update(rule.name for rule in default_flow_rules())
    names.add(StalePragmaRule.name)
    return names


def check_stale_pragmas(modules: Iterable[ModuleInfo],
                        known_rules: Set[str]) -> List[LintViolation]:
    """Run *after* every other pass over the same ModuleInfo objects —
    staleness is defined against their recorded ``used_suppressions``.
    """
    rule = StalePragmaRule()
    violations: List[LintViolation] = []
    for module in modules:
        for line in sorted(module.suppressions):
            for name in sorted(module.suppressions[line]):
                if name not in known_rules:
                    v = rule.violation(
                        module, line,
                        f"pragma names unknown rule {name!r} — known "
                        f"rules: {', '.join(sorted(known_rules))}")
                elif name == StalePragmaRule.name:
                    continue            # meta-suppression, checked above
                elif (line, name) not in module.used_suppressions:
                    v = rule.violation(
                        module, line,
                        f"stale pragma: 'verify-ok: {name}' suppresses "
                        f"no violation on this line — the excused code "
                        f"changed; delete the pragma")
                else:
                    continue
                if v:
                    violations.append(v)
    return violations
