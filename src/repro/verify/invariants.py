"""The XPC protocol invariants the model checker asserts.

Each invariant is a pure function over the live world (the real machine,
kernel, threads, and segments) plus the checker's *shadow model* — an
independent re-derivation of what the architectural state must be,
updated only from the event sequence itself.  The four invariants mirror
the paper's security argument:

1. **link-stack LIFO** (§3.2): every thread's link stack is exactly the
   stack of its outstanding ``xcall``s, in order, and ``xret`` restores
   precisely the capability bitmap pushed by the matching ``xcall``.
2. **single-owner relay-seg** (§3.3/§6.1, the TOCTTOU defence): at any
   instant a relay segment is the active ``seg-reg`` window of at most
   one thread, and its recorded ``active_owner`` agrees.
3. **seg-mask monotonic shrink** (§3.3/§4.4): the window an ``xcall``
   hands to the callee is contained in the caller's window — handover
   can only shrink access, never widen it.
4. **xcall-cap gating** (§3.2): an ``xcall`` succeeds if and only if the
   shadow capability state says the calling thread's current bitmap has
   the bit — no call without a grant, no spurious denial after one.

Invariants 1, 2 are global state predicates (checked after every event);
3, 4 are transition predicates (checked at the event that moves the
state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, found after one event."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


def window_tuple(seg_reg) -> Optional[Tuple[int, int, int]]:
    """Canonical (seg_id, offset, length) of a seg-reg window."""
    if seg_reg is None or not seg_reg.valid:
        return None
    seg = seg_reg.segment
    return (seg.seg_id, seg_reg.va_base - seg.va_base, seg_reg.length)


def window_within(inner, outer) -> bool:
    """Is window *inner* contained in window *outer* (same segment)?"""
    if inner is None:
        return True
    if outer is None:
        return False
    iseg, ioff, ilen = inner
    oseg, ooff, olen = outer
    return (iseg == oseg and ioff >= ooff
            and ioff + ilen <= ooff + olen)


# ----------------------------------------------------------------------
# Global state invariants
# ----------------------------------------------------------------------
def check_single_owner(world) -> List[InvariantViolation]:
    """No relay segment is the active window of two threads (§3.3)."""
    out: List[InvariantViolation] = []
    for seg in world.kernel.relay_segments:
        holders = [t for t in world.threads
                   if t.xpc.seg_reg.valid and t.xpc.seg_reg.segment is seg]
        if len(holders) > 1:
            names = ", ".join(t.name for t in holders)
            out.append(InvariantViolation(
                "single-owner",
                f"relay segment {seg.seg_id} is the active seg-reg "
                f"window of {len(holders)} threads at once ({names}) — "
                f"TOCTTOU ownership violated"))
        if holders and seg.active_owner not in holders:
            out.append(InvariantViolation(
                "single-owner",
                f"relay segment {seg.seg_id} is mapped by "
                f"{holders[0].name} but active_owner records "
                f"{getattr(seg.active_owner, 'name', seg.active_owner)!r}"))
    return out


def check_lifo(world, shadow) -> List[InvariantViolation]:
    """Engine link stacks match the shadow call chains exactly (§3.2)."""
    out: List[InvariantViolation] = []
    for tid, thread in enumerate(world.threads):
        actual = [r.callee_entry_id for r in thread.xpc.link_stack.records]
        expected = [world.entry_ids[frame.logical_entry]
                    for frame in shadow.stacks[tid]]
        if actual != expected:
            out.append(InvariantViolation(
                "link-stack-lifo",
                f"{thread.name}: link stack records {actual} do not "
                f"match the LIFO call chain {expected}"))
            continue
        # The thread must be running under the bitmap the chain implies.
        expected_key = shadow.current_key(tid)
        if thread.xpc.cap_bitmap is not shadow.bitmap_objects[expected_key]:
            out.append(InvariantViolation(
                "link-stack-lifo",
                f"{thread.name}: xcall-cap-reg does not hold the bitmap "
                f"the call chain implies ({expected_key}) — xret "
                f"restored the wrong runtime state"))
    return out


# ----------------------------------------------------------------------
# Transition invariants
# ----------------------------------------------------------------------
def check_shrink(thread_name: str, before, after) -> List[InvariantViolation]:
    """An xcall handover may only shrink the window (§3.3/§4.4)."""
    if window_within(after, before):
        return []
    return [InvariantViolation(
        "seg-mask-shrink",
        f"{thread_name}: xcall handed the callee window {after} which "
        f"escapes the caller's window {before} — seg-mask must "
        f"monotonically shrink access")]


def check_cap_gate(thread_name: str, entry_id: int, shadow_has_cap: bool,
                   succeeded: bool, denied: bool) -> List[InvariantViolation]:
    """xcall outcome must agree with the shadow capability state (§3.2)."""
    if succeeded and not shadow_has_cap:
        return [InvariantViolation(
            "xcall-cap",
            f"{thread_name}: xcall #{entry_id} succeeded although no "
            f"xcall-cap bit was ever granted for it — the hardware "
            f"capability check is broken")]
    if denied and shadow_has_cap:
        return [InvariantViolation(
            "xcall-cap",
            f"{thread_name}: xcall #{entry_id} was denied although the "
            f"xcall-cap bit is granted — spurious capability fault")]
    return []


def check_state(world, shadow) -> List[InvariantViolation]:
    """All global invariants, in one pass (run after every event)."""
    return check_single_owner(world) + check_lifo(world, shadow)
