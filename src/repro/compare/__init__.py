"""Prior-IPC-mechanism models (paper §7, Table 7)."""

from repro.compare.mechanisms import (
    MECHANISMS, Mechanism, by_name, table7_rows,
)

__all__ = ["MECHANISMS", "Mechanism", "by_name", "table7_rows"]
