"""The IPC-mechanism comparison of paper Table 7.

Each prior system is modeled by its qualitative properties (address
spaces, trap-free?, scheduler-free?, TOCTTOU-safe?, handover?,
granularity) and a cost formula for an N-hop call chain moving an
n-byte message: traps, scheduling, copies, and remap/TLB-shootdown
costs.  The bench prints the table and a quantitative 3-hop latency
ablation on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.params import CycleParams, DEFAULT_PARAMS

TLB_SHOOTDOWN = 4000   # conservative cross-core shootdown cost


@dataclass(frozen=True)
class Mechanism:
    """One row of Table 7."""

    name: str
    mech_type: str            # Baseline / Software / Hardware
    addr_space: str           # Multi / Single / Hybrid
    switch_description: str
    wo_trap: bool             # domain switch without trapping
    wo_sched: bool            # domain switch without scheduling
    message_description: str
    wo_tocttou: bool
    handover: bool
    granularity: str          # Byte / Page
    copies: str               # formula, N = hops in the chain
    copy_count: Callable[[int], int]       # hops -> number of copies
    remap_count: Callable[[int], int] = staticmethod(lambda n: 0)

    def chain_cycles(self, hops: int, nbytes: int,
                     params: CycleParams = DEFAULT_PARAMS) -> int:
        """Latency of an N-hop chain moving an n-byte message."""
        cycles = 0
        per_switch = 0
        if not self.wo_trap:
            per_switch += params.trap_enter + params.trap_restore
        if not self.wo_sched:
            per_switch += (params.sched_enqueue + params.sched_pick
                           + params.context_switch)
        per_switch += params.ipc_logic // 2   # residual check logic
        if self.wo_trap:
            per_switch = max(per_switch, params.xcall_base
                             + params.tlb_flush)
        cycles += hops * per_switch
        cycles += self.copy_count(hops) * params.copy_cycles(nbytes)
        cycles += self.remap_count(hops) * TLB_SHOOTDOWN
        return cycles


MECHANISMS: List[Mechanism] = [
    Mechanism(
        "Mach-3.0", "Baseline", "Multi", "Kernel schedule",
        False, False, "Kernel copy", True, False, "Byte",
        "2*N", lambda n: 2 * n),
    Mechanism(
        "LRPC", "Software", "Multi", "Protected proc call",
        False, True, "Copy on A-stack", True, False, "Byte",
        "2*N", lambda n: 2 * n),
    Mechanism(
        "Mach (94)", "Software", "Multi", "Migrating thread",
        False, True, "Kernel copy", True, False, "Byte",
        "N", lambda n: n),
    Mechanism(
        "Tornado", "Software", "Multi", "Protected proc call",
        False, True, "Remapping page", True, False, "Page",
        "0+delta", lambda n: 0, lambda n: n),
    Mechanism(
        "L4", "Software", "Multi", "Direct proc switch",
        False, True, "Temporary mapping", True, False, "Byte",
        "N", lambda n: n),
    Mechanism(
        "CrossOver", "Software", "Multi", "Direct EPT switch",
        True, True, "Shared memory", False, False, "Page",
        "N-1", lambda n: max(n - 1, 0)),
    Mechanism(
        "SkyBridge", "Software", "Multi", "Direct EPT switch",
        True, True, "Shared memory", False, False, "Page",
        "N-1", lambda n: max(n - 1, 0)),
    Mechanism(
        "Opal", "Hardware", "Single", "Domain register",
        True, True, "Shared memory", False, False, "Page",
        "N-1", lambda n: max(n - 1, 0)),
    Mechanism(
        "CHERI", "Hardware", "Hybrid", "Function call",
        True, True, "Memory capability", False, True, "Byte",
        "0", lambda n: 0),
    Mechanism(
        "CODOMs", "Hardware", "Single", "Function call",
        True, True, "Cap reg + perm list", False, True, "Byte",
        "0", lambda n: 0),
    Mechanism(
        "DTU", "Hardware", "Multi", "Explicit",
        True, True, "DMA-style data copy", True, False, "Byte",
        "2*N", lambda n: 2 * n),
    Mechanism(
        "MMP", "Hardware", "Multi", "Call gate",
        False, True, "Mapping + grant perm", False, False, "Byte",
        "0+delta", lambda n: 0, lambda n: n),
    Mechanism(
        "XPC", "Hardware", "Multi", "Cross process call",
        True, True, "Relay segment", True, True, "Byte",
        "0", lambda n: 0),
]


def by_name(name: str) -> Mechanism:
    for mech in MECHANISMS:
        if mech.name == name:
            return mech
    raise KeyError(f"no mechanism named {name!r}")


def table7_rows():
    """Yield Table 7's qualitative rows."""
    for m in MECHANISMS:
        yield (m.name, m.mech_type, m.addr_space,
               m.switch_description,
               "yes" if m.wo_trap else "no",
               "yes" if m.wo_sched else "no",
               m.message_description,
               "yes" if m.wo_tocttou else "no",
               "yes" if m.handover else "no",
               m.granularity, m.copies)
