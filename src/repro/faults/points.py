"""The fault-point catalogue: every named injection site in the stack.

A *fault point* is a named place where the simulation asks the active
:class:`~repro.faults.plan.FaultPlan` whether to inject a failure.  The
catalogue is the authoritative list — :meth:`FaultPlan.arm` refuses
unknown names so a typo'd plan fails loudly instead of silently arming
nothing, and DESIGN.md §9 renders this table verbatim.

Points are grouped by the layer that hosts the ``fire()`` call, mirroring
the failure modes of the paper's §4.2/§6.1 fault story plus the device
faults the OS-service evaluation (§5.3) must survive.

Test-only points may be created freely under the ``test.`` prefix.
"""

from __future__ import annotations

#: name -> (layer, description).
CATALOGUE = {
    # -- hardware ------------------------------------------------------
    "hw.tlb.stale_entry": (
        "hw",
        "a TLB entry goes stale immediately before use; the access "
        "re-walks the page table (models invalidation races)"),
    # -- XPC engine / objects -----------------------------------------
    "xpc.engine_cache.stale_entry": (
        "xpc",
        "an engine-cache line is stale at lookup; the xcall falls back "
        "to a validated x-entry table load"),
    "xpc.linkstack.overflow": (
        "xpc",
        "the link-stack push traps with overflow even though SRAM "
        "capacity remains (models the §4.1 bounded stack); the kernel "
        "spills and the xcall retries"),
    "xpc.callee_crash": (
        "xpc",
        "the callee process is killed at handler entry, mid-call; the "
        "kernel repairs the return path (§4.2)"),
    "xpc.callee_crash_before_xret": (
        "xpc",
        "the callee process is killed after its handler ran but before "
        "xret; the caller sees XPCPeerDiedError"),
    "xpc.relayseg.revoke": (
        "xpc",
        "the client's active relay segment is revoked by the kernel "
        "mid-workload (§4.4); in-flight windows go invalid"),
    # -- kernel --------------------------------------------------------
    "kernel.preempt": (
        "kernel",
        "a timer preemption lands mid-call: trap, scheduler pass, "
        "resume the same migrated thread"),
    # -- services / devices -------------------------------------------
    "blockdev.io_error": (
        "services",
        "the ramdisk fails a block read/write with an I/O error, "
        "surfaced to the FS server across the IPC boundary"),
    "blockdev.lost_write": (
        "services",
        "a block write is silently lost (the §5.3 crash model the "
        "write-ahead log exists to survive)"),
    "net.drop": (
        "services",
        "the loopback device drops the frame on the wire; TCP "
        "retransmission recovers"),
    "net.corrupt": (
        "services",
        "the loopback device flips a byte in the echoed frame; the "
        "IP/TCP checksums catch it and the stack drops the frame"),
    # -- async / batched XPC ------------------------------------------
    "aio.ring_full": (
        "aio",
        "a submission-queue push is refused as full even though space "
        "remains (models a racing producer filling the ring first); "
        "admission control rejects or parks the caller"),
    "aio.stale_head": (
        "aio",
        "the drain-side cached SQ head is stale; the worker re-reads "
        "the index from ring memory (charged) and recovers"),
    "aio.worker_death": (
        "aio",
        "the worker process dies between two SQEs mid-batch; completed "
        "CQEs survive in the ring, the supervisor restarts the worker "
        "and unfinished submissions are re-dispatched"),
    # -- cluster fabric ------------------------------------------------
    "cluster.node_death": (
        "cluster",
        "a whole node (machine + kernel + pools) dies at a fabric "
        "control step; the shard ring rebalances onto survivors and "
        "in-flight requests surface NodeDownError (action key 'node' "
        "picks the victim; defaults to the highest live node id)"),
    "cluster.partition": (
        "cluster",
        "the link between the sending and receiving node is severed "
        "just as a cross-node RPC is sent; the send fails after "
        "serialization (a connect timeout) and feeds the home node's "
        "circuit breaker"),
}

#: Prefix under which tests may fire ad-hoc points without registering.
TEST_PREFIX = "test."


def known(point: str) -> bool:
    """Is *point* armable (catalogued, or an ad-hoc test point)?"""
    return point in CATALOGUE or point.startswith(TEST_PREFIX)


def layer_of(point: str) -> str:
    if point in CATALOGUE:
        return CATALOGUE[point][0]
    return "test" if point.startswith(TEST_PREFIX) else "?"
