"""Deterministic fault plans.

A :class:`FaultPlan` owns a seeded PRNG and a set of armed
:class:`FaultSpec`\\ s.  Instrumented code calls
:func:`repro.faults.fire` at named points; the plan decides — purely as
a function of (seed, arm order, hit counts) — whether that hit injects,
and if so appends a :class:`FaultEvent` to ``plan.trace``.

Determinism contract (asserted by ``tests/chaos/test_faults_engine.py``):

* the same seed + same armed specs + same workload produce an
  *identical* trace (same points, same hit indices, same order);
* a recorded trace replays exactly: ``FaultPlan.replay(trace)`` fires at
  precisely the recorded (point, hit) pairs and nowhere else, so any
  chaos failure reproduces from its trace artifact alone.

The PRNG is consumed *only* by probability-armed specs, and only at
their own points, so adding an ``nth=``-armed fault never perturbs the
random choices of an existing probabilistic one.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults import points as _points


class FaultPlanError(ValueError):
    """Bad plan construction: unknown point, or ambiguous trigger."""


@dataclass
class FaultEvent:
    """One injected fault, as recorded in the trace."""

    seq: int            # position in the trace (0-based)
    point: str          # catalogue name
    hit: int            # 1-based hit index of the point when it fired
    action: dict        # the spec's action kwargs, verbatim

    def as_dict(self) -> dict:
        return {"seq": self.seq, "point": self.point, "hit": self.hit,
                "action": dict(self.action)}


@dataclass
class FaultSpec:
    """One armed fault: *where* (point), *when* (nth xor probability),
    and *what* (free-form action kwargs interpreted by the fire site)."""

    point: str
    action: dict
    nth: Optional[int] = None
    probability: Optional[float] = None
    times: Optional[int] = 1    # None = unlimited
    fired: int = field(default=0, compare=False)

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times

    def decide(self, hit: int, rng: random.Random) -> bool:
        """Should this spec fire at the *hit*-th occurrence?

        Draws from *rng* for every hit of a live probabilistic spec
        (fired or not) so the decision stream depends only on the hit
        sequence, not on earlier outcomes.
        """
        if self.probability is not None:
            draw = rng.random()
            if self.exhausted():
                return False
            return draw < self.probability
        if self.exhausted():
            return False
        return hit == self.nth

    def record(self) -> None:
        self.fired += 1


class FaultPlan:
    """A seeded, replayable set of armed faults.

    Two modes:

    * **generative** — ``FaultPlan(seed)`` + :meth:`arm`: decisions come
      from the specs and the seeded PRNG;
    * **replay** — :meth:`FaultPlan.replay` with a recorded trace:
      decisions come solely from the trace's (point, hit) pairs.
    """

    __snap_state__ = ("seed", "rng", "specs", "trace", "_hits",
                      "_replay")

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.specs: List[FaultSpec] = []
        self.trace: List[FaultEvent] = []
        self._hits: Dict[str, int] = {}
        self._replay: Optional[Dict[Tuple[str, int], dict]] = None

    # -- arming --------------------------------------------------------

    def arm(self, point: str, *, nth: Optional[int] = None,
            probability: Optional[float] = None,
            times: Optional[int] = 1, **action) -> "FaultPlan":
        """Arm *point* to fire at its *nth* hit, or at each hit with
        seeded *probability*; fires at most *times* times (None =
        unlimited).  Extra kwargs ride along as the event's action and
        are handed back to the fire site.  Returns self for chaining.
        """
        if not _points.known(point):
            raise FaultPlanError(f"unknown fault point: {point!r}")
        if (nth is None) == (probability is None):
            raise FaultPlanError(
                f"{point}: arm with exactly one of nth= or probability=")
        if nth is not None and nth < 1:
            raise FaultPlanError(f"{point}: nth must be >= 1")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise FaultPlanError(f"{point}: probability must be in [0,1]")
        self.specs.append(FaultSpec(point=point, action=dict(action),
                                    nth=nth, probability=probability,
                                    times=times))
        return self

    @classmethod
    def replay(cls, trace) -> "FaultPlan":
        """Build a plan that re-injects exactly the recorded events.

        *trace* is a list of :class:`FaultEvent` or their ``as_dict``
        forms (e.g. parsed from a trace artifact).
        """
        plan = cls(seed=0)
        plan._replay = {}
        for ev in trace:
            if isinstance(ev, FaultEvent):
                ev = ev.as_dict()
            plan._replay[(ev["point"], ev["hit"])] = dict(ev["action"])
        return plan

    # -- firing --------------------------------------------------------

    def fire(self, point: str) -> Optional[dict]:
        """One hit of *point*: returns the action dict if a fault
        injects here, else None.  Records the event in the trace."""
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        if self._replay is not None:
            action = self._replay.get((point, hit))
            if action is None:
                return None
            self._record(point, hit, action)
            return action
        for spec in self.specs:
            if spec.point != point:
                continue
            if spec.decide(hit, self.rng):
                spec.record()
                self._record(point, hit, spec.action)
                return dict(spec.action)
        return None

    def _record(self, point: str, hit: int, action: dict) -> None:
        self.trace.append(FaultEvent(seq=len(self.trace), point=point,
                                     hit=hit, action=dict(action)))

    # -- trace serialisation ------------------------------------------

    def trace_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "events": [ev.as_dict() for ev in self.trace],
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a replay plan from a ``trace_json`` artifact."""
        data = json.loads(text)
        return cls.replay(data["events"])

    # -- introspection -------------------------------------------------

    def hits(self, point: str) -> int:
        return self._hits.get(point, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, "
                f"trace={len(self.trace)})")
