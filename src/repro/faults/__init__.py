"""repro.faults — deterministic, seeded fault injection for the stack.

Usage pattern at an instrumented site (zero-cost when no plan is
installed — the hot paths guard on ``faults.ACTIVE is None`` before
paying any call):

    import repro.faults as faults
    ...
    if faults.ACTIVE is not None:
        act = faults.fire("blockdev.io_error")
        if act is not None:
            raise BlockDeviceError("injected I/O error")

and in a test / chaos driver:

    plan = faults.FaultPlan(seed=23).arm("blockdev.io_error", nth=3)
    with faults.active(plan):
        run_workload()
    artifact = plan.trace_json()   # replays via FaultPlan.from_json
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

from repro.faults.plan import (FaultEvent, FaultPlan, FaultPlanError,
                               FaultSpec)
from repro.faults.points import CATALOGUE

__all__ = [
    "ACTIVE", "CATALOGUE", "FaultEvent", "FaultPlan", "FaultPlanError",
    "FaultSpec", "OBSERVER", "ProcessCrashFault", "active", "fire",
    "install", "uninstall",
]

#: The installed plan, or None.  Instrumented hot paths check this
#: before calling fire() so the disarmed cost is a single global load.
ACTIVE: Optional[FaultPlan] = None

#: Injection observer: called as ``OBSERVER(point, action)`` whenever a
#: fire() actually injects.  ``repro.obs`` installs its session hook
#: here so injections show up as span annotations without this package
#: importing (or knowing about) the observability layer.
OBSERVER: Optional[Callable[[str, dict], None]] = None


class ProcessCrashFault(Exception):
    """Raised by an injected callee crash to abort the handler after the
    process has been killed.  This is simulator control flow, not a
    protocol error: the runtime converts it into the kernel-repaired
    return path and surfaces ``XPCPeerDiedError`` to the caller.
    """

    def __init__(self, service: str = "?", process=None):
        super().__init__(f"injected crash of {service}")
        self.service = service
        self.process = process


def fire(point: str) -> Optional[dict]:
    """One hit of *point* against the installed plan (None when
    disarmed or the plan declines)."""
    if ACTIVE is None:
        return None
    action = ACTIVE.fire(point)
    if action is not None and OBSERVER is not None:
        OBSERVER(point, action)
    return action


def install(plan: Optional[FaultPlan]) -> None:
    global ACTIVE
    ACTIVE = plan


def uninstall() -> None:
    install(None)


@contextmanager
def active(plan: FaultPlan):
    """Install *plan* for the duration of the block (restoring whatever
    was installed before, so nested scopes compose)."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = plan
    try:
        yield plan
    finally:
        ACTIVE = prev
