"""Processes and threads with the split thread state of paper §4.2.

A thread's kernel-visible state is divided into a *scheduling state*
(kernel stack, priority, time slice — always bound to the thread) and a
*runtime state* (address space + capabilities — changes as the thread
migrates through x-entries).  The kernel resolves the current runtime
state from ``xcall-cap-reg``, which the XPC hardware updates on every
``xcall``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hw.paging import AddressSpace
from repro.kernel.objects import KernelObject
from repro.xpc.capability import XCallCapBitmap
from repro.xpc.engine import XPCThreadState
from repro.xpc.linkstack import LinkStack
from repro.xpc.relayseg import SegList


@dataclass
class SchedState:
    """Scheduling state: owned by exactly one thread forever (§4.2)."""

    priority: int = 0
    timeslice: int = 10_000
    runnable: bool = True
    core_affinity: Optional[int] = None


@dataclass
class RuntimeState:
    """Runtime state: the address space + capabilities a thread is
    currently executing under; identified by its xcall-cap bitmap."""

    aspace: AddressSpace
    cap_bitmap: XCallCapBitmap


class Process(KernelObject):
    """An address space plus its threads and per-AS XPC objects."""

    def __init__(self, aspace: AddressSpace, name: str = "") -> None:
        super().__init__(name)
        self.aspace = aspace
        self.threads: List["Thread"] = []
        self.seg_list = SegList()      # per-address-space (§4.1)
        self.alive = True
        self.grant_caps: set = set()   # x-entry ids this process may grant
        self.xentries: List[int] = []  # x-entries registered by this process

    def __repr__(self) -> str:
        return f"<Process {self.name!r} asid={self.aspace.asid}>"


class Thread(KernelObject):
    """A schedulable thread with per-thread XPC architectural state."""

    def __init__(self, process: Process, name: str = "") -> None:
        super().__init__(name or f"{process.name}.t{len(process.threads)}")
        self.process = process
        process.threads.append(self)
        self.sched = SchedState()
        home_caps = XCallCapBitmap()
        self.home_runtime = RuntimeState(process.aspace, home_caps)
        #: Architectural XPC state (link stack is per-thread, §4.1).
        self.xpc = XPCThreadState(
            cap_bitmap=home_caps,
            link_stack=LinkStack(),
            seg_list=process.seg_list,
        )
        self.alive = True

    @property
    def home_caps(self) -> XCallCapBitmap:
        return self.home_runtime.cap_bitmap
