"""Common OS substrate shared by the seL4, Zircon, and Binder models."""

from repro.kernel.objects import KernelObject, Right
from repro.kernel.process import Process, Thread
from repro.kernel.scheduler import Scheduler
from repro.kernel.kernel import BaseKernel, KernelError

__all__ = [
    "KernelObject", "Right", "Process", "Thread", "Scheduler",
    "BaseKernel", "KernelError",
]
