"""BaseKernel: the XPC control plane (paper §3, §4.1, §4.2, §4.4).

The kernel owns the four XPC object families —

  1. the global x-entry table,
  2. per-thread link stacks,
  3. per-thread xcall capability bitmaps,
  4. per-address-space relay-segment lists,

— and implements the software side of the design: x-entry registration,
grant-cap propagation, relay-segment creation (physically contiguous, and
*never* overlapping any page-table mapping, so no TLB shootdown is ever
needed), process termination (link-stack invalidation, lazy page-table
zap, segment revocation), and the exception repair path for returns into
dead processes.

Kernel personalities (seL4-like, Zircon-like, Linux/Binder-like) subclass
this with their own IPC data planes.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

import repro.obs as obs
import repro.san as san
from repro.hw.cpu import Core, TrapCause
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE
from repro.hw.paging import AddressSpace, PagePerm
from repro.kernel.process import Process, Thread
from repro.kernel.scheduler import Scheduler
from repro.xpc.engine import XPCEngine
from repro.xpc.entry import XEntry
from repro.xpc.relayseg import RelaySegment, SegReg, SEG_INVALID

#: Relay segments live in a reserved VA region that the kernel never hands
#: to mmap, guaranteeing the no-overlap invariant of §3.3.
RELAY_VA_BASE = 0x0000_7000_0000_0000

#: Control-plane costs live in repro.params so the fast core precomputes
#: its tables from the exact numbers the reference kernel charges.
from repro.params import (
    GRANT_LOGIC as _GRANT_LOGIC,
    KILL_ZAP_CYCLES as _KILL_ZAP_CYCLES,
    LINK_SCAN_PER_RECORD as _LINK_SCAN_PER_RECORD,
    LINK_SPILL_PER_RECORD as _LINK_SPILL_PER_RECORD,
    REGISTER_LOGIC as _REGISTER_LOGIC,
    SEG_CREATE_PER_PAGE as _SEG_CREATE_PER_PAGE,
)


class KernelError(Exception):
    """A kernel-level policy violation (not a hardware exception)."""


class BaseKernel:
    """Common control plane for every kernel personality."""

    def __init__(self, machine: Machine, name: str = "kernel") -> None:
        self.machine = machine
        self.params = machine.params
        self.name = name
        self.scheduler = Scheduler(self.params)
        self.processes: List[Process] = []
        self.threads: List[Thread] = []
        self.relay_segments: List[RelaySegment] = []
        self._relay_va_cursor = RELAY_VA_BASE
        # Segment IDs are scoped to this kernel: deterministic per
        # machine, never shared across simulator instances.
        self._seg_ids = itertools.count(1)
        self.ipc_stats: Dict[str, int] = {"calls": 0, "bytes": 0}
        #: Subsystems (e.g. the Binder driver) that want to know when a
        #: process dies — callables taking the dead Process.
        self.death_hooks: List[Callable] = []
        if obs.ACTIVE is not None:
            obs.ACTIVE.on_kernel(self)

    # ------------------------------------------------------------------
    # Processes & threads
    # ------------------------------------------------------------------
    def create_process(self, name: str = "") -> Process:
        aspace = AddressSpace(self.machine.memory, name)
        process = Process(aspace, name)
        self.processes.append(process)
        return process

    def create_thread(self, process: Process, name: str = "") -> Thread:
        """Create a thread and its per-thread XPC objects (§4.1)."""
        if not process.alive:
            raise KernelError(f"{process} is dead")
        thread = Thread(process, name)
        self.threads.append(thread)
        return thread

    def run_thread(self, core: Core, thread: Thread) -> None:
        """Dispatch *thread* onto *core*, installing its XPC registers."""
        if not thread.alive:
            raise KernelError(f"{thread} is dead")
        core.current_thread = thread
        core.set_address_space(thread.process.aspace, charge=False)
        engine = self._engine(core)
        if engine is not None:
            engine.bind(thread, thread.xpc)
        if san.ACTIVE is not None:
            # Scheduler dispatch synchronizes the thread's XPC state with
            # the new core: open fresh epochs on its link stack and seg.
            san.ACTIVE.handoff(thread.xpc.link_stack, "link-stack",
                               via="run_thread")
            if thread.xpc.seg_reg.valid:
                san.ACTIVE.handoff(thread.xpc.seg_reg.segment,
                                   "relay-seg", via="run_thread")

    def _engine(self, core: Core) -> Optional[XPCEngine]:
        return core.xpc_engine

    # ------------------------------------------------------------------
    # x-entry registration and capabilities (control plane, §4.2)
    # ------------------------------------------------------------------
    def register_xentry(self, core: Core, server_thread: Thread,
                        handler: Callable, max_contexts: int = 1) -> XEntry:
        """Syscall: register *handler* as an x-entry of the server.

        The registering process receives the grant-cap for the new entry.
        """
        table = self.machine.xentry_table
        if table is None:
            raise KernelError("machine has no XPC engine")
        core.trap(TrapCause.SYSCALL)
        core.tick(_REGISTER_LOGIC)
        process = server_thread.process
        entry = table.register(
            aspace=process.aspace,
            handler=handler,
            handler_thread=server_thread,
            max_contexts=max_contexts,
            owner_process=process,
            callee_state=server_thread.home_caps,
        )
        process.grant_caps.add(entry.entry_id)
        process.xentries.append(entry.entry_id)
        core.trap_return()
        return entry

    def grant_xcall_cap(self, core: Core, granter: Process,
                        grantee: Thread, entry_id: int,
                        with_grant: bool = False) -> None:
        """Syscall: grant ``xcall-cap`` for *entry_id* to *grantee*.

        Requires the granter to hold the grant-cap (§4.2); ``with_grant``
        additionally propagates the grant-cap itself.
        """
        core.trap(TrapCause.SYSCALL)
        core.tick(_GRANT_LOGIC)
        try:
            if entry_id not in granter.grant_caps:
                raise KernelError(
                    f"{granter} holds no grant-cap for x-entry {entry_id}"
                )
            grantee.home_caps.grant(entry_id)
            if with_grant:
                grantee.process.grant_caps.add(entry_id)
        finally:
            core.trap_return()

    def revoke_xcall_cap(self, thread: Thread, entry_id: int) -> None:
        thread.home_caps.revoke(entry_id)

    def remove_xentry(self, core: Core, process: Process,
                      entry_id: int) -> None:
        """Syscall: unregister an x-entry owned by *process*."""
        core.trap(TrapCause.SYSCALL)
        try:
            if entry_id not in process.xentries:
                raise KernelError(
                    f"{process} does not own x-entry {entry_id}"
                )
            self.machine.xentry_table.remove(entry_id)
            process.xentries.remove(entry_id)
            process.grant_caps.discard(entry_id)
            for engine in self.machine.engines:
                if engine.cache is not None:
                    engine.cache.evict(entry_id)
        finally:
            core.trap_return()

    # ------------------------------------------------------------------
    # Relay segments (§3.3, §4.4)
    # ------------------------------------------------------------------
    def create_relay_seg(self, core: Core, process: Process,
                         nbytes: int) -> Tuple[RelaySegment, int]:
        """Syscall: allocate a relay segment and park it in the seg-list.

        Returns ``(segment, seg_list_slot)``.  The VA range comes from the
        kernel-reserved relay region, so it can never collide with a
        page-table mapping in *any* address space.
        """
        if nbytes <= 0:
            raise KernelError("relay segment size must be positive")
        core.trap(TrapCause.SYSCALL)
        npages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        core.tick(npages * _SEG_CREATE_PER_PAGE)
        size = npages * PAGE_SIZE
        pa = self.machine.memory.alloc_contiguous(size)
        va = self._relay_va_cursor
        self._relay_va_cursor += size + PAGE_SIZE
        seg = RelaySegment(pa, va, size, PagePerm.RW, process,
                           seg_id=next(self._seg_ids))
        self.relay_segments.append(seg)
        slot = self._free_slot(process)
        process.seg_list.store(slot, SegReg.for_segment(seg))
        core.trap_return()
        return seg, slot

    def _free_slot(self, process: Process) -> int:
        used = {i for i, _ in process.seg_list.segments()}
        for i in range(process.seg_list.slots):
            if i not in used:
                return i
        raise KernelError("seg-list full")

    def activate_relay_seg(self, core: Core, thread: Thread,
                           slot: int) -> None:
        """Install the parked segment in *slot* as the thread's seg-reg.

        This is the user-mode ``swapseg`` path; the kernel only sets it up
        the first time (thereafter user code swaps without trapping).
        """
        engine = self._engine(core)
        engine.swapseg(slot)

    def install_relay_seg(self, thread, seg: RelaySegment) -> None:
        """Control plane: install *seg* directly as *thread*'s seg-reg.

        This is the first-time setup fast path glue layers use (Binder's
        relay-backed Parcels, the kernel-neutral transport): the kernel
        hands an owned segment straight to a thread without a ``swapseg``
        round trip.  The single-owner invariant of §3.3 is enforced here
        exactly as the engine enforces it on ``swapseg``.
        """
        if seg.active_owner not in (None, thread):
            raise KernelError(
                f"relay segment {seg.seg_id} is active on another thread")
        thread.xpc.seg_reg = SegReg.for_segment(seg)
        seg.active_owner = thread
        if san.ACTIVE is not None:
            san.ACTIVE.handoff(seg, "relay-seg", via="install_relay_seg")

    def deactivate_relay_seg(self, thread) -> Optional[RelaySegment]:
        """Control plane: invalidate *thread*'s seg-reg, releasing
        ownership of the segment it mapped (if any).  Returns the
        released segment so the caller can park or free it.
        """
        window = thread.xpc.seg_reg
        thread.xpc.seg_reg = SEG_INVALID
        if not window.valid:
            return None
        window.segment.active_owner = None
        if san.ACTIVE is not None:
            san.ACTIVE.handoff(window.segment, "relay-seg",
                               via="deactivate_relay_seg")
        return window.segment

    def free_relay_seg(self, core: Core, seg: RelaySegment) -> None:
        """Syscall: destroy a relay segment and reclaim its memory."""
        core.trap(TrapCause.SYSCALL)
        try:
            if seg.active_owner is not None:
                raise KernelError("cannot free an active relay segment")
            seg.revoked = True
            self.machine.memory.free_contiguous(seg.pa_base, seg.length)
            self.relay_segments.remove(seg)
        finally:
            core.trap_return()

    def revoke_relay_seg(self, seg: RelaySegment) -> None:
        """Control plane: revoke *seg* everywhere, immediately (§4.4).

        Marks the segment revoked, clears its active ownership, scrubs
        any seg-reg still windowing it, and drops it from every
        process's seg-list so it cannot be swapped back in.  Unlike
        :meth:`free_relay_seg` this is forced — it is the path for
        policy revocation and for reclaiming a dead process's segments;
        in-flight users observe the loss as a page fault.
        """
        seg.revoked = True
        seg.active_owner = None
        for thread in self.threads:
            window = thread.xpc.seg_reg
            if window.valid and window.segment is seg:
                thread.xpc.seg_reg = SEG_INVALID
        for process in self.processes:
            for slot, window in list(process.seg_list.segments()):
                if window.segment is seg:
                    process.seg_list.drop(slot)

    # ------------------------------------------------------------------
    # Recoverable XPC traps (§4.1 link-stack overflow, preemption)
    # ------------------------------------------------------------------
    def handle_link_overflow(self, core: Core, thread: Thread) -> int:
        """Trap handler for :class:`LinkStackOverflowError`.

        Spills the *bottom* half of the thread's link stack to kernel
        memory — the paper's §4.1 answer to the bounded 8 KB SRAM —
        freeing room so the faulting ``xcall`` can retry.  Returns the
        number of records spilled (0 means the stack is unspillable,
        e.g. capacity so small nothing is resident, and the caller must
        give up).
        """
        with obs.prof_frame(core, "kernel:link_spill"):
            core.trap(TrapCause.XPC_EXCEPTION)
            stack = thread.xpc.link_stack
            spilled = stack.spill(max(1, stack.capacity // 2))
            core.tick(spilled * _LINK_SPILL_PER_RECORD)
            core.trap_return()
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.counter("kernel.link_spills").inc(
                cycle=core.cycles)
            obs.ACTIVE.registry.counter("kernel.link_spilled_records").inc(
                spilled, cycle=core.cycles)
        return spilled

    def handle_link_underflow(self, core: Core, thread: Thread) -> int:
        """Trap handler for :class:`LinkStackUnderflowError`: refill the
        SRAM stack from the kernel spill area so the faulting ``xret``
        can retry.  Returns the number of records refilled."""
        with obs.prof_frame(core, "kernel:link_refill"):
            core.trap(TrapCause.XPC_EXCEPTION)
            stack = thread.xpc.link_stack
            refilled = stack.unspill()
            core.tick(refilled * _LINK_SPILL_PER_RECORD)
            core.trap_return()
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.counter("kernel.link_refills").inc(
                cycle=core.cycles)
        return refilled

    def preempt(self, core: Core) -> None:
        """A timer interrupt mid-call: trap, run a scheduler pass, and
        resume the same (migrated) thread.

        XPC's migrating-thread model means a preemption during a call
        is just a normal timer trap in the callee's context — nothing
        XPC-specific needs saving beyond what the trap already saves.
        """
        with obs.prof_frame(core, "kernel:preempt"):
            core.trap(TrapCause.TIMER)
            core.tick(self.params.sched_pick)
            core.trap_return()
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.counter("kernel.preemptions").inc(
                cycle=core.cycles)

    # ------------------------------------------------------------------
    # Process termination (§4.2, §4.4)
    # ------------------------------------------------------------------
    def kill_process(self, process: Process, lazy: bool = True,
                     core: Optional[Core] = None) -> None:
        """Terminate *process*.

        ``lazy=True`` is the paper's optimization: zero the top-level page
        table and let later returns fault into the kernel; ``lazy=False``
        eagerly scans every link stack and invalidates the process's
        linkage records.  Either way the process's relay segments are
        revoked, with caller-owned segments left to their callers.

        When *core* is given the termination work is charged to it: a
        constant page-zero for the lazy path, a per-resident-record scan
        for the eager path — the asymmetry §4.2 argues for.
        """
        process.alive = False
        for thread in process.threads:
            thread.alive = False
            thread.sched.runnable = False
        mode = "lazy" if lazy else "eager"
        if lazy:
            process.aspace.page_table.zap()
            if core is not None:
                with obs.prof_frame(core, f"kernel:kill_{mode}"):
                    core.tick(_KILL_ZAP_CYCLES)
        else:
            scanned = 0
            for thread in self.threads:
                scanned += thread.xpc.link_stack.depth
                thread.xpc.link_stack.invalidate_records_of(process.aspace)
            if core is not None:
                with obs.prof_frame(core, f"kernel:kill_{mode}"):
                    core.tick(_KILL_ZAP_CYCLES
                              + scanned * _LINK_SCAN_PER_RECORD)
        # Revoke the entries it served.
        for entry_id in list(process.xentries):
            entry = self.machine.xentry_table.peek(entry_id)
            if entry is not None:
                entry.valid = False
        # Segment revocation (§4.4): segments owned by the dead process
        # are revoked; a segment whose active owner is another (live)
        # thread stays with that caller.
        for _, window in list(process.seg_list.segments()):
            seg = window.segment
            owner = seg.active_owner
            if seg.owner_process is process and (
                    owner is None or getattr(owner, "process", None)
                    is process):
                self.revoke_relay_seg(seg)
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.counter(f"kernel.kills.{mode}").inc(
                cycle=core.cycles if core is not None else None)
        for hook in self.death_hooks:
            hook(process)

    def repair_return(self, core: Core, thread: Thread):
        """Handle an ``xret`` that faulted on a dead-process record.

        Pops invalidated/dead linkage records until a live caller is
        found, then restores it and reports a timeout error to it —
        exactly the A→B→C recovery of §4.2.  Returns the restored record,
        or None if the whole chain is gone.
        """
        with obs.prof_frame(core, "kernel:repair_return"):
            return self._repair_return_body(core, thread)

    def _repair_return_body(self, core: Core, thread: Thread):
        core.trap(TrapCause.XPC_EXCEPTION)
        stack = thread.xpc.link_stack
        restored = None
        while stack.depth:
            record = stack.peek()
            caller_dead = self._aspace_is_dead(record.caller_aspace)
            alive = (record.valid
                     and getattr(record.caller_thread, "alive", True)
                     and not caller_dead)
            if record.valid and caller_dead:
                # A lazily-killed caller: its record is intact, so the
                # return lands on the zapped page table and immediately
                # faults back into the kernel (§4.2's deferred cost).
                core.tick(self.params.trap_enter)
            # Pop the record regardless; hardware pop semantics.
            stack.force_pop()
            if obs.ACTIVE is not None and record.obs_span is not None:
                # Close the span the abandoned xcall opened: the frame
                # never xrets, so the repair path is its only closer.
                obs.ACTIVE.spans.end(core, record.obs_span,
                                     repaired=True, restored=alive)
                record.obs_span = None
            if alive:
                restored = record
                break
        if restored is not None:
            thread.xpc.seg_reg = restored.seg_reg
            thread.xpc.seg_mask = restored.seg_mask
            thread.xpc.cap_bitmap = restored.caller_state
            core.set_address_space(restored.caller_aspace)
        core.trap_return()
        if obs.ACTIVE is not None:
            obs.ACTIVE.registry.counter("kernel.repairs").inc(
                cycle=core.cycles)
        return restored

    def _aspace_is_dead(self, aspace: AddressSpace) -> bool:
        """Does *aspace* belong to a terminated process?"""
        for process in self.processes:
            if process.aspace is aspace:
                return not process.alive
        return False
