"""A round-robin scheduler with cycle-accounted queue operations.

Used by the Zircon model on every channel round trip (Zircon "does not
optimize the scheduling in the IPC path", paper §5.2) and by the seL4
slow path.  The fast paths — seL4 fastpath and XPC — bypass it entirely.

Blocking uses lazy removal: the queue holds ``[thread, live]`` cells and
``block`` merely tombstones the thread's cell (O(1)) instead of an O(n)
``deque.remove``; ``pick_next`` discards tombstones as it pops.  Costs
are charged per logical operation — ``sched_enqueue`` on enqueue,
``sched_block`` on block — so ablations can price them independently.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.hw.cpu import Core
from repro.kernel.process import Thread
from repro.params import CycleParams


class Scheduler:
    """Per-machine run queue (one logical queue keeps the model simple)."""

    __snap_state__ = ("params", "_queue", "_cell", "enqueues", "blocks",
                      "switches", "tombstones")

    def __init__(self, params: CycleParams) -> None:
        self.params = params
        # Each cell is [thread, live].  A thread has at most one live
        # cell; block() flips live to False and pick_next() garbage
        # collects dead cells when it reaches them.
        self._queue: Deque[List[object]] = deque()
        self._cell: Dict[Thread, List[object]] = {}
        self.enqueues = 0
        self.blocks = 0
        self.switches = 0
        self.tombstones = 0

    def enqueue(self, core: Core, thread: Thread) -> None:
        """Make *thread* runnable (charges run-queue manipulation)."""
        thread.sched.runnable = True
        cell = self._cell.get(thread)
        if cell is not None and cell[1]:
            # Already queued and live: round-robin position unchanged.
            core.tick(self.params.sched_enqueue)
            return
        cell = [thread, True]
        self._cell[thread] = cell
        self._queue.append(cell)
        self.enqueues += 1
        core.tick(self.params.sched_enqueue)

    def block(self, core: Core, thread: Thread) -> None:
        """Block *thread*: tombstone its queue cell in O(1)."""
        thread.sched.runnable = False
        cell = self._cell.get(thread)
        if cell is not None and cell[1]:
            cell[1] = False
            self.tombstones += 1
        self.blocks += 1
        core.tick(self.params.sched_block)

    def pick_next(self, core: Core) -> Optional[Thread]:
        """Pop the next runnable thread (charges the pick cost)."""
        core.tick(self.params.sched_pick)
        while self._queue:
            cell = self._queue.popleft()
            if not cell[1]:
                self.tombstones -= 1
                continue
            thread = cell[0]
            # A live cell is always the thread's current cell (block is
            # the only tombstoner; enqueue reuses a live cell in place).
            del self._cell[thread]
            if thread.sched.runnable and thread.alive:
                return thread
        return None

    def context_switch(self, core: Core, to_thread: Thread) -> None:
        """Full context switch to *to_thread* on *core*."""
        self.switches += 1
        core.tick(self.params.context_switch)
        core.current_thread = to_thread
        core.set_address_space(to_thread.process.aspace)

    @property
    def queued(self) -> int:
        """Number of live (non-tombstoned) queued threads."""
        return len(self._queue) - self.tombstones
