"""A round-robin scheduler with cycle-accounted queue operations.

Used by the Zircon model on every channel round trip (Zircon "does not
optimize the scheduling in the IPC path", paper §5.2) and by the seL4
slow path.  The fast paths — seL4 fastpath and XPC — bypass it entirely.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.hw.cpu import Core
from repro.kernel.process import Thread
from repro.params import CycleParams


class Scheduler:
    """Per-machine run queue (one logical queue keeps the model simple)."""

    def __init__(self, params: CycleParams) -> None:
        self.params = params
        self._queue: Deque[Thread] = deque()
        self.enqueues = 0
        self.switches = 0

    def enqueue(self, core: Core, thread: Thread) -> None:
        """Make *thread* runnable (charges run-queue manipulation)."""
        thread.sched.runnable = True
        self._queue.append(thread)
        self.enqueues += 1
        core.tick(self.params.sched_enqueue)

    def block(self, core: Core, thread: Thread) -> None:
        """Block *thread* (dequeue if queued)."""
        thread.sched.runnable = False
        try:
            self._queue.remove(thread)
        except ValueError:
            pass
        core.tick(self.params.sched_enqueue)

    def pick_next(self, core: Core) -> Optional[Thread]:
        """Pop the next runnable thread (charges the pick cost)."""
        core.tick(self.params.sched_pick)
        while self._queue:
            thread = self._queue.popleft()
            if thread.sched.runnable and thread.alive:
                return thread
        return None

    def context_switch(self, core: Core, to_thread: Thread) -> None:
        """Full context switch to *to_thread* on *core*."""
        self.switches += 1
        core.tick(self.params.context_switch)
        core.current_thread = to_thread
        core.set_address_space(to_thread.process.aspace)

    @property
    def queued(self) -> int:
        return len(self._queue)
