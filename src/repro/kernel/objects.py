"""Generic kernel objects and access rights."""

from __future__ import annotations

import enum


class Right(enum.IntFlag):
    """Access rights attached to capabilities/handles."""

    NONE = 0
    READ = 1
    WRITE = 2
    SEND = 4
    RECV = 8
    GRANT = 16
    ALL = READ | WRITE | SEND | RECV | GRANT


class KernelObject:
    """Base class for anything a capability or handle can point at.

    The koid counter is a plain class int (not ``itertools.count``) so
    :mod:`repro.snap` can read and restore it: replaying from a snapshot
    must mint the same koids (and thus the same default names) the
    original run did.
    """

    _next_koid = 1

    def __init__(self, name: str = "") -> None:
        self.koid = KernelObject._next_koid
        KernelObject._next_koid += 1
        self.name = name or f"{type(self).__name__}-{self.koid}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} koid={self.koid} {self.name!r}>"
