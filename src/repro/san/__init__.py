"""repro.san — XPCSan, the runtime ownership/race sanitizer.

The static analyses in :mod:`repro.verify.flow` prove flow properties
over the *source*; XPCSan watches the same properties at *runtime*: the
§3.3 single-owner discipline says every touch of shared XPC state — a
relay segment's bytes, an :class:`~repro.aio.ring.XPCRing`'s SQ/CQ
indices, a thread's link-stack entries — happens while exactly one
simulated core owns the resource, with ownership moving only at the
sanctioned handoff points (``xcall``/``xret``/``swapseg``, the kernel's
``install/deactivate_relay_seg`` control plane, and ``run_thread``
dispatch).

The model is an epoch-based access log:

* every **handoff** on a resource opens a new *epoch* (and forgets the
  accesses of the old one — they were synchronized by the handoff);
* every instrumented **access** records ``(core, site, kind, cycle)``
  in the resource's current epoch;
* two accesses in the *same epoch* from *different cores*, at least one
  of them a write, are a conflict — unsynchronized sharing the handoff
  protocol cannot explain — reported as a :class:`SanIssue` carrying
  both access sites (file:line precise).

Like :mod:`repro.obs`, the sanitizer is a pure observer behind one
global: instrumented sites do nothing but ``san.ACTIVE is not None``
when disarmed, and even armed it never calls ``tick`` or mutates
simulator state, so XPCSan-on runs are cycle-identical to XPCSan-off
(enforced in CI exactly like obs).  Arm it per scope::

    import repro.san as san
    with san.active(san.SanSession()) as session:
        run_workload()
    assert not session.issues, san.format_issues(session.issues)

or environment-wide with ``REPRO_XPCSAN=1`` (the chaos suite, the
benchmark fixtures, and the proptest harness all honour it).
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ACTIVE", "SanAccess", "SanIssue", "SanSession", "active",
    "format_issues", "from_env", "install", "uninstall",
]

#: The installed session, or None.  Instrumented hot paths check this
#: before doing anything, so the disarmed cost is one global load.
ACTIVE: Optional["SanSession"] = None


@dataclass(frozen=True)
class SanAccess:
    """One instrumented touch of a tracked resource."""

    core_id: int
    site: str           # logical site, e.g. "aio.ring.push_sqe"
    kind: str           # "read" | "write"
    cycle: int
    location: str       # source file:line of the instrumented caller
    epoch: int

    def __str__(self) -> str:
        return (f"core{self.core_id} {self.kind} @ {self.site} "
                f"({self.location}, cycle {self.cycle}, "
                f"epoch {self.epoch})")


@dataclass(frozen=True)
class SanIssue:
    """Two conflicting unsynchronized accesses to one resource."""

    resource: str
    first: SanAccess
    second: SanAccess

    def describe(self) -> str:
        return (f"XPCSan: conflicting unsynchronized access to "
                f"{self.resource}: {self.first} vs {self.second} — no "
                f"ownership handoff (xcall/xret/swapseg/install/"
                f"run_thread) between them")


def _caller_location(depth: int = 2) -> str:
    frame = sys._getframe(depth)
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


@dataclass
class _Epoch:
    """The access log of one resource since its last handoff."""

    number: int = 0
    #: core_id -> (has_write, representative access).  One entry per
    #: core keeps the log O(cores), not O(accesses).
    by_core: Dict[int, Tuple[bool, SanAccess]] = field(default_factory=dict)
    last_handoff: str = "created"


def _identity(obj: object):
    """Physical identity of a tracked resource.

    Resources that expose ``pa_base`` (relay segments, and every
    :class:`~repro.aio.ring.XPCRing` *view* of one) are identified by
    their physical base address: an ``XPCRing.attach`` on a worker core
    is a new Python object but the *same* ring memory, and §3.3
    ownership is a property of the segment, not of any particular view
    of it.  Everything else (link stacks, cap tables) is identified by
    object id."""
    pa = getattr(obj, "pa_base", None)
    if pa is not None:
        return ("pa", pa)
    return ("id", id(obj))


class SanSession:
    """One run's worth of XPCSan state: access logs and found issues."""

    __snap_state__ = ("issues", "max_issues", "accesses", "handoffs",
                     "_epochs", "_labels", "_identity_keys", "_reported")

    def __init__(self, max_issues: int = 256) -> None:
        self.issues: List[SanIssue] = []
        self.max_issues = max_issues
        self.accesses = 0
        self.handoffs = 0
        self._epochs: Dict[tuple, _Epoch] = {}
        self._labels: Dict[tuple, str] = {}
        #: identity -> every (label, identity) key seen at that identity,
        #: so a segment handoff reaches the ring labels inside it.
        self._identity_keys: Dict[tuple, List[tuple]] = {}
        self._reported: set = set()

    def __deepcopy__(self, memo: dict) -> "SanSession":
        """Snapshot copy: keep the findings and counters, drop the
        per-resource logs.  Resource keys embed ``id(obj)`` of live
        simulator objects, which a deepcopy invalidates; forgetting an
        epoch is always sound (it only forgets *potential* conflicts,
        exactly like a handoff does) so a restored run re-learns its
        resources from scratch."""
        dup = SanSession(self.max_issues)
        memo[id(self)] = dup
        dup.issues = list(self.issues)      # SanAccess/SanIssue: frozen
        dup.accesses = self.accesses
        dup.handoffs = self.handoffs
        return dup

    def __snap_fingerprint__(self):
        """Only the deterministic totals: the epoch logs are id-keyed
        bookkeeping a restore legitimately resets."""
        return ("SanSession", self.accesses, self.handoffs,
                len(self.issues))

    # -- resource identity --------------------------------------------
    def _key(self, obj: object, label: str) -> tuple:
        ident = _identity(obj)
        key = (label, ident)
        if key not in self._labels:
            self._labels[key] = f"{label}#{len(self._labels)}"
            self._identity_keys.setdefault(ident, []).append(key)
        return key

    def name_of(self, obj: object, label: str) -> str:
        """The session's stable display name for a tracked resource."""
        return self._labels[self._key(obj, label)]

    # -- the two instrumentation entry points --------------------------
    def handoff(self, obj: object, label: str, via: str) -> None:
        """An ownership transfer on *obj*: open a fresh epoch.

        Called at the protocol's sanctioned synchronization points; the
        old epoch's accesses are forgotten (they happened-before).  The
        new epoch opens for *every* label tracked at the resource's
        identity: handing a relay segment over synchronizes the ring
        indices laid out inside it too."""
        key = self._key(obj, label)
        for sibling in self._identity_keys[key[1]]:
            epoch = self._epochs.get(sibling)
            if epoch is None:
                epoch = self._epochs[sibling] = _Epoch()
            epoch.number += 1
            epoch.by_core.clear()
            epoch.last_handoff = via
        self.handoffs += 1

    def access(self, core, obj: object, label: str, site: str,
               kind: str = "write") -> None:
        """Record one touch of *obj* by *core* and check for conflicts."""
        key = self._key(obj, label)
        epoch = self._epochs.get(key)
        if epoch is None:
            epoch = self._epochs[key] = _Epoch()
        core_id = getattr(core, "core_id", -1)
        cycle = getattr(core, "cycles", 0)
        acc = SanAccess(core_id, site, kind, cycle,
                        _caller_location(), epoch.number)
        self.accesses += 1
        is_write = kind == "write"
        for other_id, (other_write, other_acc) in epoch.by_core.items():
            if other_id == core_id or not (is_write or other_write):
                continue
            tag = (key, epoch.number, frozenset((core_id, other_id)))
            if tag in self._reported:
                continue
            self._reported.add(tag)
            if len(self.issues) < self.max_issues:
                self.issues.append(
                    SanIssue(self._labels[key], other_acc, acc))
        prev = epoch.by_core.get(core_id)
        if prev is None or is_write or not prev[0]:
            epoch.by_core[core_id] = (is_write or
                                      (prev is not None and prev[0]), acc)

    # -- reporting ------------------------------------------------------
    def report(self) -> dict:
        """JSON-serializable summary (mirrors ``ObsSession.report``)."""
        return {
            "accesses": self.accesses,
            "handoffs": self.handoffs,
            "resources": len(self._epochs),
            "issues": [issue.describe() for issue in self.issues],
        }


def format_issues(issues: List[SanIssue]) -> str:
    if not issues:
        return "repro.san: no conflicting accesses observed"
    lines = [issue.describe() for issue in issues]
    lines.append(f"repro.san: {len(issues)} issue(s)")
    return "\n".join(lines)


def install(session: Optional[SanSession]) -> None:
    global ACTIVE
    ACTIVE = session


def uninstall() -> None:
    install(None)


@contextmanager
def active(session: SanSession):
    """Install *session* for the duration of the block (restoring the
    previous session, so nested scopes compose)."""
    global ACTIVE
    prev = ACTIVE
    install(session)
    try:
        yield session
    finally:
        ACTIVE = prev


def from_env() -> Optional[SanSession]:
    """A fresh session when ``REPRO_XPCSAN=1`` is set, else None."""
    if os.environ.get("REPRO_XPCSAN") == "1":
        return SanSession()
    return None
